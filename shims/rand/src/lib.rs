//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, fully deterministic implementation of the exact
//! API surface it uses: [`Rng`] (`gen`, `gen_bool`, `gen_range`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! `StdRng` here is SplitMix64 — a small, well-distributed 64-bit
//! generator. It is *not* the upstream ChaCha-based `StdRng`, so streams
//! differ from the real crate, but every consumer in this workspace only
//! requires determinism in the seed, which SplitMix64 provides.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `Rng` via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: f64 = Standard::sample(rng);
                self.start + (self.end - self.start) * unit as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: f64 = Standard::sample(rng);
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let unit: f64 = Standard::sample(self);
        unit < p
    }

    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(2.0f64..5.0);
            assert!((2.0..5.0).contains(&y));
            let z = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&z));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }
}
