//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serialization framework with the same surface the
//! code uses: `#[derive(Serialize, Deserialize)]` plus generic
//! serialization through `serde_json`.
//!
//! Unlike real serde's visitor architecture, this shim serializes
//! through an owned [`value::Value`] tree (the JSON data model). That is
//! slower but dramatically simpler, and every consumer in this workspace
//! only serializes reports and instance files where simplicity wins.
//! The JSON shapes match serde's defaults: structs are objects, newtype
//! structs are transparent, unit enum variants are strings, and data
//! variants are externally tagged one-key objects.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{DeError, Number, Value};

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::time::Duration;

/// Types convertible into the JSON data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the JSON data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::type_mismatch("bool", other)),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 as $t {
                    Value::Number(Number::U64(*self as u64))
                } else {
                    Value::Number(Number::I64(*self as i64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(Number::U64(n)) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::Number(Number::I64(n)) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::Number(Number::F64(f)) if f.fract() == 0.0 && f.is_finite() => {
                        Ok(*f as $t)
                    }
                    other => Err(DeError::type_mismatch(stringify!($t), other)),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(DeError::type_mismatch("f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::type_mismatch("string", other)),
        }
    }
}

/// Deserializes into a leaked `'static` string. The real serde only
/// borrows `&str` from borrowed input; this shim's data model is owned,
/// so the deserialized string is intentionally leaked — acceptable for
/// the workspace's use (small catalog/config structs read once).
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::type_mismatch("2-tuple", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::type_mismatch("3-tuple", other)),
        }
    }
}

/// Map keys must render as JSON object keys (strings).
pub trait SerializeKey {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, DeError>
    where
        Self: Sized;
}

impl SerializeKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! int_keys {
    ($($t:ty),*) => {$(
        impl SerializeKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| DeError::msg("bad integer map key"))
            }
        }
    )*};
}

int_keys!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: SerializeKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: SerializeKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::type_mismatch("object", other)),
        }
    }
}

impl<K: SerializeKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: SerializeKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::type_mismatch("object", other)),
        }
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        // serde's default shape for Duration.
        Value::Object(vec![
            ("secs".to_string(), self.as_secs().to_value()),
            ("nanos".to_string(), self.subsec_nanos().to_value()),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::type_mismatch("Duration object", v))?;
        let secs = u64::from_value(obj.field("secs")?)?;
        let nanos = u32::from_value(obj.field("nanos")?)?;
        Ok(Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
