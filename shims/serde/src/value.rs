//! The JSON data model shared by the `serde` and `serde_json` shims.

use std::fmt;

/// A JSON number, preserving integer exactness where possible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Negative integers.
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    /// Everything else.
    F64(f64),
}

impl Number {
    /// Lossy view as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I64(n) => n as f64,
            Number::U64(n) => n as f64,
            Number::F64(f) => f,
        }
    }
}

/// An owned JSON value. Objects preserve insertion order so serialized
/// structs keep their field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object view, if this is an object.
    pub fn as_object(&self) -> Option<ObjectRef<'_>> {
        match self {
            Value::Object(entries) => Some(ObjectRef { entries }),
            _ => None,
        }
    }

    /// String view, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Borrowed view of a JSON object with field lookup.
#[derive(Debug, Clone, Copy)]
pub struct ObjectRef<'a> {
    entries: &'a [(String, Value)],
}

impl<'a> ObjectRef<'a> {
    /// The field's value, or `Value::Null` when absent (so `Option`
    /// fields tolerate missing keys, matching serde's common usage).
    pub fn get(&self, key: &str) -> &'a Value {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or(&Value::Null)
    }

    /// The field's value, failing when absent.
    pub fn field(&self, key: &str) -> Result<&'a Value, DeError> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::msg_owned(format!("missing field `{key}`")))
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &'a [(String, Value)] {
        self.entries
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Error from a static message.
    pub fn msg(message: &str) -> Self {
        DeError {
            message: message.to_string(),
        }
    }

    /// Error from an owned message.
    pub fn msg_owned(message: String) -> Self {
        DeError { message }
    }

    /// "expected X, found Y" error.
    pub fn type_mismatch(expected: &str, found: &Value) -> Self {
        DeError {
            message: format!("expected {expected}, found {}", found.kind()),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}
