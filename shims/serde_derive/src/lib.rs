//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shimmed `serde` crate without `syn`/`quote` (unavailable offline): a
//! small hand-rolled token walker extracts the item's shape and the
//! impls are emitted as formatted source text.
//!
//! Supported shapes — exactly what this workspace derives on:
//! named-field structs, tuple structs (newtypes are transparent, like
//! serde), unit structs, and enums whose variants are unit, named-field,
//! or tuple (externally tagged, like serde's default). Generic items are
//! rejected with a clear compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Data {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Parsed {
    name: String,
    data: Data,
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

fn is_ident(tt: &TokenTree, word: &str) -> bool {
    matches!(tt, TokenTree::Ident(i) if i.to_string() == word)
}

/// Consumes leading attributes (`#[...]`) and visibility (`pub`,
/// `pub(...)`) from the token cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut pos: usize) -> usize {
    loop {
        if pos < tokens.len() && is_punct(&tokens[pos], '#') {
            pos += 1; // '#'
            if pos < tokens.len()
                && matches!(&tokens[pos], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
            {
                pos += 1; // [...]
                continue;
            }
            panic!("serde_derive shim: malformed attribute");
        }
        if pos < tokens.len() && is_ident(&tokens[pos], "pub") {
            pos += 1;
            if pos < tokens.len()
                && matches!(&tokens[pos], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis)
            {
                pos += 1; // pub(crate) etc.
            }
            continue;
        }
        return pos;
    }
}

/// Advances past one type (or expression) up to a top-level comma,
/// tracking `<...>` nesting. Returns the position of the comma or end.
fn skip_to_toplevel_comma(tokens: &[TokenTree], mut pos: usize) -> usize {
    let mut angle_depth = 0i32;
    while pos < tokens.len() {
        match &tokens[pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return pos,
            _ => {}
        }
        pos += 1;
    }
    pos
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        pos = skip_attrs_and_vis(&tokens, pos);
        if pos >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[pos] else {
            panic!(
                "serde_derive shim: expected field name, got {:?}",
                tokens[pos]
            );
        };
        fields.push(name.to_string());
        pos += 1;
        assert!(
            pos < tokens.len() && is_punct(&tokens[pos], ':'),
            "serde_derive shim: expected ':' after field name"
        );
        pos = skip_to_toplevel_comma(&tokens, pos + 1);
        pos += 1; // past the comma (or end)
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut pos = 0;
    while pos < tokens.len() {
        pos = skip_attrs_and_vis(&tokens, pos);
        if pos >= tokens.len() {
            break;
        }
        count += 1;
        pos = skip_to_toplevel_comma(&tokens, pos);
        pos += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        pos = skip_attrs_and_vis(&tokens, pos);
        if pos >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[pos] else {
            panic!(
                "serde_derive shim: expected variant name, got {:?}",
                tokens[pos]
            );
        };
        let name = name.to_string();
        pos += 1;
        let fields = if pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    pos += 1;
                    VariantFields::Named(parse_named_fields(g.stream()))
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    pos += 1;
                    VariantFields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => VariantFields::Unit,
            }
        } else {
            VariantFields::Unit
        };
        // Skip an explicit discriminant (`= expr`) and the separator.
        pos = skip_to_toplevel_comma(&tokens, pos);
        pos += 1;
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = skip_attrs_and_vis(&tokens, 0);
    let is_enum = if is_ident(&tokens[pos], "struct") {
        false
    } else if is_ident(&tokens[pos], "enum") {
        true
    } else {
        panic!(
            "serde_derive shim: expected `struct` or `enum`, got {:?}",
            tokens[pos]
        );
    };
    pos += 1;
    let TokenTree::Ident(name) = &tokens[pos] else {
        panic!("serde_derive shim: expected type name");
    };
    let name = name.to_string();
    pos += 1;
    if pos < tokens.len() && is_punct(&tokens[pos], '<') {
        panic!("serde_derive shim: generic types are not supported (derive on `{name}`)");
    }
    let data = if is_enum {
        let TokenTree::Group(g) = &tokens[pos] else {
            panic!("serde_derive shim: expected enum body");
        };
        Data::Enum(parse_variants(g.stream()))
    } else {
        match &tokens[pos] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(g.stream()))
            }
            tt if is_punct(tt, ';') => Data::UnitStruct,
            other => panic!("serde_derive shim: unexpected struct body {other:?}"),
        }
    };
    Parsed { name, data }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Parsed { name, data } = parse_item(input);
    let body = match &data {
        Data::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push((::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, \
                 ::serde::value::Value)> = ::std::vec::Vec::new();\n{pushes}\
                 ::serde::value::Value::Object(__fields)"
            )
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let pushes: String = (0..*n)
                .map(|i| format!("__items.push(::serde::Serialize::to_value(&self.{i}));\n"))
                .collect();
            format!(
                "let mut __items: ::std::vec::Vec<::serde::value::Value> = \
                 ::std::vec::Vec::new();\n{pushes}\
                 ::serde::value::Value::Array(__items)"
            )
        }
        Data::UnitStruct => "::serde::value::Value::Null".to_string(),
        Data::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => ::serde::value::Value::String(\
                             ::std::string::String::from(\"{vn}\")),\n"
                        ),
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "__inner.push((::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f})));\n"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{\n\
                                 let mut __inner: ::std::vec::Vec<(::std::string::String, \
                                 ::serde::value::Value)> = ::std::vec::Vec::new();\n{pushes}\
                                 ::serde::value::Value::Object(::std::vec::Vec::from([\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::value::Value::Object(__inner))]))\n}},\n"
                            )
                        }
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vn}(__x0) => ::serde::value::Value::Object(\
                             ::std::vec::Vec::from([(::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(__x0))])),\n"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                            let pushes: String = binds
                                .iter()
                                .map(|b| {
                                    format!("__inner.push(::serde::Serialize::to_value({b}));\n")
                                })
                                .collect();
                            format!(
                                "{name}::{vn}({}) => {{\n\
                                 let mut __inner: ::std::vec::Vec<::serde::value::Value> = \
                                 ::std::vec::Vec::new();\n{pushes}\
                                 ::serde::value::Value::Object(::std::vec::Vec::from([\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::value::Value::Array(__inner))]))\n}},\n",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("serde_derive shim: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Parsed { name, data } = parse_item(input);
    let body = match &data {
        Data::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(__obj.get(\"{f}\"))?,\n"))
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::value::DeError::type_mismatch(\"struct {name}\", __v))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Data::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Data::TupleStruct(n) => {
            let inits: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?,\n"))
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::value::Value::Array(__items) if __items.len() == {n} => \
                 ::std::result::Result::Ok({name}({inits})),\n\
                 __other => ::std::result::Result::Err(\
                 ::serde::value::DeError::type_mismatch(\"tuple struct {name}\", __other)),\n}}"
            )
        }
        Data::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Data::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n",
                        vn = v.name
                    )
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         __obj.get(\"{f}\"))?,\n"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\nlet __obj = __inner.as_object().ok_or_else(|| \
                                 ::serde::value::DeError::type_mismatch(\
                                 \"variant {name}::{vn}\", __inner))?;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n}},\n"
                            ))
                        }
                        VariantFields::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner)?)),\n"
                        )),
                        VariantFields::Tuple(n) => {
                            let inits: String = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?,\n")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match __inner {{\n\
                                 ::serde::value::Value::Array(__items) if __items.len() == {n} \
                                 => ::std::result::Result::Ok({name}::{vn}({inits})),\n\
                                 __other => ::std::result::Result::Err(\
                                 ::serde::value::DeError::type_mismatch(\
                                 \"variant {name}::{vn}\", __other)),\n}},\n"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::value::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::value::DeError::msg_owned(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::value::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 __other => ::std::result::Result::Err(::serde::value::DeError::msg_owned(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
                 __other => ::std::result::Result::Err(\
                 ::serde::value::DeError::type_mismatch(\"enum {name}\", __other)),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::value::Value) -> \
         ::std::result::Result<Self, ::serde::value::DeError> {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("serde_derive shim: generated Deserialize impl must parse")
}
