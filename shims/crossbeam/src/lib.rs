//! Offline stand-in for `crossbeam`.
//!
//! Provides the two pieces this workspace uses:
//!
//! * [`channel::unbounded`] — a multi-producer *multi-consumer* channel.
//!   Implemented as `std::sync::mpsc` with the receiver behind an
//!   `Arc<Mutex<..>>` so worker threads can share it as a work queue.
//! * [`thread::scope`] — scoped threads, re-exported from
//!   `std::thread` (available since Rust 1.63, with the same borrowing
//!   guarantees crossbeam pioneered). Note the `std` signature: `spawn`
//!   takes a zero-argument closure and `scope` returns the closure's
//!   value directly rather than a `Result`.

pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};

    /// Sending half; clone freely across producers.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    /// Error returned when sending on a channel with no receivers left.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when receiving on an empty, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Enqueues `value`, failing if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half; clone freely across consumers (work-queue style).
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking; fails once the channel is
        /// empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.recv().map_err(|_| RecvError)
        }

        /// Dequeues without blocking, `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            let guard = match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            guard.try_recv().ok()
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }
}

pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn work_queue_drains_across_consumers() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let total = &total;
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.into_inner(), (0..100).sum());
    }

    #[test]
    fn recv_fails_after_disconnect() {
        let (tx, rx) = channel::unbounded::<u8>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }
}
