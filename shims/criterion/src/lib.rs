//! Offline stand-in for `criterion`.
//!
//! Implements the API surface this workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with plain
//! wall-clock timing and median-of-samples reporting instead of the
//! real crate's statistical machinery.
//!
//! Mode selection follows upstream: when the binary is invoked without
//! a `--bench` argument (as `cargo test` does for `harness = false`
//! bench targets) every routine runs exactly once as a smoke test; with
//! `--bench` (as `cargo bench` passes) it samples and reports timings.

use std::fmt;
use std::time::{Duration, Instant};

/// Drives one benchmark routine.
pub struct Bencher {
    test_mode: bool,
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, keeping its output alive so the call is not
    /// optimized away.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    fn report(mut self, id: &str) {
        if self.test_mode {
            println!("test-mode {id}: ok (1 iteration)");
            return;
        }
        if self.samples.is_empty() {
            println!("bench {id}: no samples (iter never called)");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = *self.samples.last().unwrap();
        println!(
            "bench {id}: median {median:?} (min {min:?}, max {max:?}, {} samples)",
            self.samples.len()
        );
    }
}

/// Identifies a parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/name/parameter` style id.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Id carrying only the parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Benchmark manager: holds sampling configuration.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        Criterion {
            sample_size: 20,
            test_mode: !bench_mode,
        }
    }
}

impl Criterion {
    /// Sets how many timing samples each benchmark collects.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    fn bencher(&self) -> Bencher {
        Bencher {
            test_mode: self.test_mode,
            iters_per_sample: 1,
            samples: Vec::with_capacity(self.sample_size),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = self.bencher();
        f(&mut b);
        b.report(id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    fn bencher(&self) -> Bencher {
        Bencher {
            test_mode: self.criterion.test_mode,
            iters_per_sample: 1,
            samples: Vec::with_capacity(self.sample_size.unwrap_or(self.criterion.sample_size)),
        }
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = self.bencher();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = self.bencher();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Finishes the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions with a shared [`Criterion`] config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running the given [`criterion_group!`] bundles.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn force_bench_mode() -> Criterion {
        Criterion {
            sample_size: 3,
            test_mode: false,
        }
    }

    #[test]
    fn bench_function_collects_samples() {
        let mut c = force_bench_mode();
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert_eq!(calls, 3);
    }

    #[test]
    fn group_runs_parameterized_benches() {
        let mut c = force_bench_mode();
        let mut seen = Vec::new();
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(2);
            for n in [1u32, 5] {
                g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                    b.iter(|| {
                        seen.push(n);
                        n
                    })
                });
            }
            g.finish();
        }
        assert_eq!(seen, vec![1, 1, 5, 5]);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            sample_size: 50,
            test_mode: true,
        };
        let mut calls = 0u32;
        c.bench_function("once", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert_eq!(calls, 1);
    }
}
