//! Offline stand-in for `serde_json`: serialization to JSON text and a
//! recursive-descent parser, both over the `serde` shim's [`Value`]
//! tree.
//!
//! Floats print via Rust's shortest-round-trip `Display`, so values
//! survive a save/load cycle bit-identically (the property the real
//! crate's `float_roundtrip` feature guarantees).

pub use serde::value::{Number, Value};
use std::fmt;

/// JSON serialization/deserialization failure.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::value::DeError> for Error {
    fn from(e: serde::value::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_complete(text)?;
    Ok(T::from_value(&value)?)
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    use std::fmt::Write as _;
    match n {
        Number::I64(i) => write!(out, "{i}").expect("string write"),
        Number::U64(u) => write!(out, "{u}").expect("string write"),
        Number::F64(f) => {
            if f.is_finite() {
                // Shortest round-trip representation; keep a `.0` marker
                // on integral floats so the type survives re-parsing.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    write!(out, "{f:.1}").expect("string write");
                } else {
                    write!(out, "{f}").expect("string write");
                }
            } else {
                // JSON has no infinities; mirror serde_json's `null`.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                write!(out, "\\u{:04x}", c as u32).expect("string write");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Re-borrow as UTF-8: step back and take the full char.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty rest");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes[self.pos] == b'-' {
            self.pos += 1;
        }
        let mut is_float = false;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let n = if is_float {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| Error::new(format!("invalid number '{text}'")))?,
            )
        } else if text.starts_with('-') {
            // Integer lexically, but too wide for i64 (e.g. a float that
            // Display rendered without '.' or 'e'): fall back to f64.
            match text.parse::<i64>() {
                Ok(i) => Number::I64(i),
                Err(_) => Number::F64(
                    text.parse::<f64>()
                        .map_err(|_| Error::new(format!("invalid number '{text}'")))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Number::U64(u),
                Err(_) => Number::F64(
                    text.parse::<f64>()
                        .map_err(|_| Error::new(format!("invalid number '{text}'")))?,
                ),
            }
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let v: f64 = from_str("2.5").unwrap();
        assert_eq!(v, 2.5);
        let v: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(v, u64::MAX);
        let v: i64 = from_str("-42").unwrap();
        assert_eq!(v, -42);
        let v: bool = from_str("true").unwrap();
        assert!(v);
        let s: String = from_str("\"hi\\nthere\"").unwrap();
        assert_eq!(s, "hi\nthere");
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for f in [0.1, 1.0 / 3.0, 1e-12, 123456.789, f64::MAX] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(f, back, "{text}");
        }
    }

    #[test]
    fn nested_structures() {
        let v: Vec<Vec<u32>> = from_str("[[1,2],[3]]").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![3]]);
        let text = to_string_pretty(&v).unwrap();
        let back: Vec<Vec<u32>> = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn object_order_preserved() {
        let v = Value::Object(vec![
            ("z".into(), Value::Bool(true)),
            ("a".into(), Value::Null),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(text, "{\"z\":true,\"a\":null}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<u32>("1 2").is_err());
    }

    #[test]
    fn unicode_strings() {
        let s: String = from_str("\"caf\\u00e9 ↔\"").unwrap();
        assert_eq!(s, "café ↔");
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(s, back);
    }
}
