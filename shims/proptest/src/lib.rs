//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with `ident in strategy` bindings and a
//! `#![proptest_config(ProptestConfig::with_cases(N))]` header,
//! [`Strategy`] over integer/float ranges, tuples of strategies,
//! `prop::collection::vec`, `.prop_map`, and [`prop_oneof!`] unions of
//! same-typed strategies.
//!
//! Differences from the real crate, deliberate for an offline shim:
//! cases are sampled from a deterministic RNG seeded by the test's
//! module path and name (no persisted failure seeds), there is no
//! shrinking, and `prop_assert*` panics immediately (which the standard
//! test harness reports just like an assertion failure).

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one test case, derived from the test's identity and the
    /// case index so every run replays the identical sequence.
    pub fn for_case(test_id: &str, case: u64) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in test_id.bytes() {
            state ^= b as u64;
            state = state.wrapping_mul(0x100_0000_01b3);
        }
        state ^= case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng { state }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Failure raised from inside a property body (via `prop_assert!` in
/// the real crate, or `return Err(TestCaseError::fail(..))`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed test case carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u64,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: cases as u64,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy choosing uniformly among same-typed alternatives; built by
/// [`prop_oneof!`]. (The real crate supports per-arm weights; the shim
/// samples arms uniformly, which every workspace property tolerates.)
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union with no arms yet ([`prop_oneof!`] always adds at least
    /// one before the first sample).
    pub fn empty() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds one alternative.
    pub fn or(mut self, arm: impl Strategy<Value = T> + 'static) -> Self {
        self.arms.push(Box::new(arm));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Uniform choice among strategies producing the same value type, as in
/// the real crate's `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let union = $crate::Union::empty();
        $(let union = union.or($arm);)+
        union
    }};
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for variable-length vectors.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1);
            let n = self.len.start + (rng.next_u64() as usize % span);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, min..max)` — a vector with length in the range.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    pub use crate::{
        collection as _collection_reexport, prop_assert, prop_assert_eq, prop_assert_ne,
        prop_oneof, proptest, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };

    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)*
                    // Property bodies run inside a closure returning
                    // Result so `return Ok(())`/`Err(TestCaseError)`
                    // early-exits work as in the real crate.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(__e) = __outcome {
                        panic!("property case {__case} failed: {__e}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(a in 3usize..10, f in 0.5f64..2.0, t in (0u32..4, 1u8..=3)) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((0.5..2.0).contains(&f));
            prop_assert!(t.0 < 4 && (1..=3).contains(&t.1));
        }

        #[test]
        fn vec_strategy_lengths(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn mapped_strategy(x in arb_even()) {
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 1);
        }

        #[test]
        fn oneof_samples_every_arm(v in prop::collection::vec(
            prop_oneof![Just(1u32), Just(2u32), (10u32..20).prop_map(|x| x)],
            40..41,
        )) {
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2 || (10..20).contains(&x)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
