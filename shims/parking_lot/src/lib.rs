//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's non-poisoning API
//! (`lock()` returns the guard directly). Poisoning is handled by
//! propagating the inner value — matching parking_lot, a panicking
//! holder does not poison the lock for everyone else.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion with a non-poisoning `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader–writer lock with non-poisoning accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
