//! `dagsfc` — command-line front end for the DAG-SFC workspace.
//!
//! ```text
//! dagsfc generate  --nodes 100 --degree 6 --kinds 8 --seed 7 --out net.json [--dot net.dot]
//! dagsfc instance  --nodes 100 --sfc-size 5 --seed 7 --out inst.json
//! dagsfc embed     --instance inst.json --algo mbbe [--dot embedding.dot]
//! dagsfc embed     --nodes 100 --sfc-size 5 --seed 7 --algo bbe
//! dagsfc online    --nodes 60 --requests 100 --capacity 8 --algo mbbe,ranv
//! dagsfc figures   [fig6a|...|runtime|all] [--full]
//! dagsfc ilp       --nodes 8 --sfc-size 2 --seed 1 [--out model.lp]
//! dagsfc serve     --addr 127.0.0.1:4600 --workers 2 --queue 64 --algo mbbe
//! dagsfc client    ping|stats|embed|release|replay|shutdown --addr HOST:PORT
//! dagsfc trace     --out trace.json --arrivals 50 --mean-holding 8
//! dagsfc replay    --trace trace.json --workers 4 --verify
//! dagsfc audit     --trace trace.json [--network net.json] [--json]
//! dagsfc chaos     gen --out chaos.json --arrivals 50 --chaos-seed 7
//! dagsfc chaos     run --scenario chaos.json --workers 4 --verify
//! ```
//!
//! Everything is deterministic in `--seed`.

use dagsfc::core::solvers::{self, Solver};
use dagsfc::core::{validate, IlpModel};
use dagsfc::net::{to_dot, DotOptions};
use dagsfc::sim::online::{acceptance_sweep, acceptance_table};
use dagsfc::sim::runner::{instance_network, instance_request};
use dagsfc::sim::{io as sim_io, report, sweep, Algo, SimConfig, SweepResult};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest: Vec<String> = args.collect();
    // The serving subcommands share the serve crate's own CLI layer
    // (the same code behind the standalone `dagsfc-serve` binary).
    let served = match command.as_str() {
        "serve" => Some(dagsfc::serve::cli::daemon_main(&rest)),
        "client" => Some(dagsfc::serve::cli::client_main(&rest)),
        "trace" => Some(dagsfc::serve::cli::trace_main(&rest)),
        "replay" => Some(dagsfc::serve::cli::replay_main(&rest)),
        "chaos" => Some(dagsfc::chaos::chaos_main(&rest)),
        _ => None,
    };
    if let Some(result) = served {
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let opts = match Opts::parse(&rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    // `audit` distinguishes its failure modes via exit code: 0 clean,
    // 1 constraint violations, 2 usage, 3 unreadable/invalid input —
    // so CI and scripts can tell "the embeddings are bad" apart from
    // "the file is bad".
    if command == "audit" {
        return match cmd_audit(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(AuditCmdError::Usage(e)) => {
                eprintln!("error: {e}\n\n{USAGE}");
                ExitCode::from(2)
            }
            Err(AuditCmdError::Input(e)) => {
                eprintln!("error: {e}");
                ExitCode::from(3)
            }
            Err(AuditCmdError::Violations(e)) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let result = match command.as_str() {
        "generate" => cmd_generate(&opts),
        "instance" => cmd_instance(&opts),
        "embed" => cmd_embed(&opts),
        "online" => cmd_online(&opts),
        "figures" => cmd_figures(&opts),
        "topology" => cmd_topology(&opts),
        "quality" => cmd_quality(&opts),
        "ilp" => cmd_ilp(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "dagsfc — minimum-cost embedding of SFCs with parallel VNFs (ICPP 2018)

USAGE:
  dagsfc generate  --nodes N [--degree D] [--kinds K] [--seed S] --out FILE [--dot FILE]
  dagsfc instance  --nodes N [--sfc-size L] [--seed S] --out FILE
  dagsfc embed     (--instance FILE | --nodes N [--sfc-size L] [--seed S])
                   [--algo mbbe|mbbe-st|bbe|minv|ranv|exact|grasp]
                   [--dot FILE] [--save FILE] [--protect]
  dagsfc online    [--nodes N] [--requests R] [--capacity C] [--algo a,b,...]
  dagsfc figures   [fig6a|fig6b|fig6c|fig6d|fig6e|fig6f|runtime|all] [--full] [--out-dir DIR]
  dagsfc topology  [--nodes N] [--runs R] [--sfc-size L]
  dagsfc quality   [--nodes N] [--runs R] [--exact]
  dagsfc ilp       [--nodes N] [--sfc-size L] [--seed S] [--k K] [--out FILE]
  dagsfc serve     [--addr A] [--workers W] [--queue Q] [--algo NAME]
                   [--network FILE | --nodes N --seed S --capacity C]
  dagsfc client    ping|stats|embed|release|replay|shutdown --addr HOST:PORT [...]
  dagsfc trace     --out FILE [--arrivals R] [--mean-holding H] [--algo NAME]
                   [--link-delay US] [--delay-budget US]
                   [--affinity-rate P] [--anti-affinity-rate P]
  dagsfc replay    --trace FILE [--workers W] [--queue Q] [--verify]
  dagsfc audit     --trace FILE [--network FILE] [--json]
                   (exit codes: 0 clean, 1 violations, 2 usage, 3 bad input)
  dagsfc chaos     gen --out FILE [--arrivals R] [--chaos-seed C] [...]
  dagsfc chaos     run --scenario FILE [--workers W] [--verify]";

/// Minimal `--key value` / positional argument parser.
struct Opts {
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut flags = HashMap::new();
        let mut positional = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                match key {
                    // boolean flags
                    "full" | "exact" | "protect" | "json" => {
                        flags.insert(key.to_string(), "true".to_string());
                    }
                    _ => {
                        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                        flags.insert(key.to_string(), value.clone());
                    }
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Opts { flags, positional })
    }

    fn str(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.str(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad integer '{v}'")),
        }
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.str(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number '{v}'")),
        }
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.str(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad integer '{v}'")),
        }
    }

    fn path(&self, key: &str) -> Option<PathBuf> {
        self.str(key).map(PathBuf::from)
    }

    fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

fn sim_config(opts: &Opts) -> Result<SimConfig, String> {
    Ok(SimConfig {
        network_size: opts.usize_or("nodes", 100)?,
        connectivity: opts.f64_or("degree", 6.0)?,
        vnf_kinds: opts.usize_or("kinds", 12)?,
        sfc_size: opts.usize_or("sfc-size", 5)?,
        seed: opts.u64_or("seed", SimConfig::default().seed)?,
        vnf_capacity: opts.f64_or("capacity", 1e6)?,
        link_capacity: opts.f64_or("capacity", 1e6)?,
        ..SimConfig::default()
    })
}

fn make_solver(name: &str, seed: u64) -> Result<Box<dyn Solver>, String> {
    solvers::by_name(name, seed).ok_or_else(|| format!("unknown algorithm '{name}'"))
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let cfg = sim_config(opts)?;
    let out = opts
        .path("out")
        .ok_or("generate requires --out FILE".to_string())?;
    let net = instance_network(&cfg);
    sim_io::save_network(&out, &net).map_err(|e| e.to_string())?;
    let s = net.stats();
    println!(
        "generated {} nodes / {} links (avg degree {:.1}, {} VNF instances) -> {}",
        s.nodes,
        s.links,
        s.avg_degree,
        s.vnf_instances,
        out.display()
    );
    if let Some(dot) = opts.path("dot") {
        write_dot(&dot, &to_dot(&net, &DotOptions::default()))?;
    }
    Ok(())
}

fn cmd_instance(opts: &Opts) -> Result<(), String> {
    let cfg = sim_config(opts)?;
    let out = opts
        .path("out")
        .ok_or("instance requires --out FILE".to_string())?;
    let network = instance_network(&cfg);
    let (sfc, flow) = instance_request(&cfg, &network, 0);
    let instance = sim_io::SavedInstance {
        format_version: sim_io::FORMAT_VERSION,
        config: cfg,
        network,
        sfc,
        flow,
    };
    sim_io::save_instance(&out, &instance).map_err(|e| e.to_string())?;
    println!(
        "instance: chain {} from {} to {} -> {}",
        instance.sfc,
        instance.flow.src,
        instance.flow.dst,
        out.display()
    );
    Ok(())
}

fn cmd_embed(opts: &Opts) -> Result<(), String> {
    let (network, sfc, flow) = if let Some(path) = opts.path("instance") {
        let inst = sim_io::load_instance(&path).map_err(|e| e.to_string())?;
        (inst.network, inst.sfc, inst.flow)
    } else {
        let cfg = sim_config(opts)?;
        let network = instance_network(&cfg);
        let (sfc, flow) = instance_request(&cfg, &network, 0);
        (network, sfc, flow)
    };
    let algo = opts.str("algo").unwrap_or("mbbe");
    let seed = opts.u64_or("seed", 0)?;
    let solver = make_solver(algo, seed)?;
    let out = solver
        .solve(&network, &sfc, &flow)
        .map_err(|e| e.to_string())?;
    validate(&network, &sfc, &flow, &out.embedding)
        .map_err(|v| format!("solver returned an invalid embedding: {v:?}"))?;
    println!("chain:  {sfc}");
    println!("flow:   {} -> {}", flow.src, flow.dst);
    println!(
        "{}: {} ({} candidates explored, {:.1}µs)",
        solver.name(),
        out.cost,
        out.stats.explored,
        out.stats.elapsed.as_secs_f64() * 1e6
    );
    println!(
        "stats:  {} nodes expanded, {} candidates generated ({} pruned), \
         path cache {:.0}% hit ({}h/{}m)",
        out.stats.nodes_expanded,
        out.stats.candidates_generated,
        out.stats.candidates_pruned,
        out.stats.cache_hit_rate() * 100.0,
        out.stats.cache_hits,
        out.stats.cache_misses
    );
    for (l, slots) in out.embedding.assignments().iter().enumerate() {
        let layer = sfc.layer(l);
        for (s, node) in slots.iter().enumerate() {
            let kind = layer.slot_kind(s, sfc.catalog());
            println!("  L{l}[{s}] {kind} -> {node}");
        }
    }
    if opts.has("protect") {
        match dagsfc::core::protect(&network, &sfc, &flow, &out.embedding) {
            Ok(p) => println!(
                "protection: {} meta-paths backed up, +{:.3} backup link cost; \
                 survives every single-link failure",
                p.protected_count(),
                p.backup_cost.link
            ),
            Err(e) => println!("protection unavailable: {e}"),
        }
    }
    if let Some(path) = opts.path("save") {
        sim_io::save_solution(
            &path,
            &sim_io::SavedSolution {
                format_version: sim_io::FORMAT_VERSION,
                solver: solver.name().to_string(),
                embedding: out.embedding.clone(),
                cost: out.cost,
            },
        )
        .map_err(|e| e.to_string())?;
        println!("solution written to {}", path.display());
    }
    if let Some(dot) = opts.path("dot") {
        let mut nodes: Vec<_> = out
            .embedding
            .assignments()
            .iter()
            .flatten()
            .copied()
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        let links: Vec<_> = out
            .embedding
            .paths()
            .iter()
            .flat_map(|p| p.links().iter().copied())
            .collect();
        let dot_opts = DotOptions {
            name: "embedding".to_string(),
            highlight_nodes: nodes,
            highlight_links: links,
            ..DotOptions::default()
        };
        write_dot(&dot, &to_dot(&network, &dot_opts))?;
    }
    Ok(())
}

fn cmd_online(opts: &Opts) -> Result<(), String> {
    let mut cfg = sim_config(opts)?;
    if !opts.has("capacity") {
        // Online runs need finite capacities to be interesting.
        cfg.vnf_capacity = 8.0;
        cfg.link_capacity = 8.0;
    }
    let requests = opts.usize_or("requests", 100)?;
    let algo_list = opts.str("algo").unwrap_or("mbbe,minv,ranv");
    let algos: Vec<Algo> = algo_list
        .split(',')
        .map(|a| match a.trim() {
            "mbbe" => Ok(Algo::Mbbe),
            "mbbe-st" => Ok(Algo::MbbeSt),
            "bbe" => Ok(Algo::Bbe),
            "minv" => Ok(Algo::Minv),
            "ranv" => Ok(Algo::Ranv),
            other => Err(format!("unknown algorithm '{other}'")),
        })
        .collect::<Result<_, _>>()?;
    let quarter = (requests / 4).max(1);
    let levels: Vec<usize> = (1..=4).map(|i| i * quarter).collect();
    let rows = acceptance_sweep(&cfg, &algos, &levels);
    println!(
        "online embedding on {} nodes, capacities {}/{} rate units:",
        cfg.network_size, cfg.vnf_capacity, cfg.link_capacity
    );
    println!("{}", acceptance_table(&rows));
    Ok(())
}

fn cmd_figures(opts: &Opts) -> Result<(), String> {
    let which = opts.positional.first().map(String::as_str).unwrap_or("all");
    let base = if opts.has("full") {
        SimConfig::default()
    } else {
        SimConfig {
            network_size: 60,
            runs: 10,
            ..SimConfig::default()
        }
    };
    let out_dir = opts
        .path("out-dir")
        .unwrap_or_else(|| PathBuf::from("target/figures"));
    std::fs::create_dir_all(&out_dir).map_err(|e| e.to_string())?;
    type FigureFn = fn(&SimConfig) -> SweepResult;
    let figures: Vec<(&str, FigureFn)> = vec![
        ("fig6a", sweep::fig6a),
        ("fig6b", sweep::fig6b),
        ("fig6c", sweep::fig6c),
        ("fig6d", sweep::fig6d),
        ("fig6e", sweep::fig6e),
        ("fig6f", sweep::fig6f),
        ("runtime", sweep::runtime_sweep),
    ];
    let mut ran = false;
    for (id, run) in figures {
        if which != "all" && which != id {
            continue;
        }
        ran = true;
        let result = run(&base);
        if id == "runtime" {
            println!("{}", report::runtime_table(&result));
        }
        println!("{}", report::ascii_table(&result));
        println!("{}", report::instrumentation_table(&result));
        std::fs::write(out_dir.join(format!("{id}.csv")), report::csv(&result))
            .map_err(|e| e.to_string())?;
        sim_io::save_sweep(&out_dir.join(format!("{id}.json")), &result)
            .map_err(|e| e.to_string())?;
    }
    if !ran {
        return Err(format!("unknown figure '{which}'"));
    }
    println!("series written to {}", out_dir.display());
    Ok(())
}

fn cmd_topology(opts: &Opts) -> Result<(), String> {
    use dagsfc::sim::sweep::topology::{default_battery, topology_sweep, topology_table};
    let mut cfg = sim_config(opts)?;
    cfg.network_size = opts.usize_or("nodes", 36)?;
    cfg.runs = opts.usize_or("runs", 10)?;
    let points = topology_sweep(
        &cfg,
        &[Algo::Mbbe, Algo::Minv, Algo::Ranv],
        &default_battery(cfg.network_size),
    );
    println!("{}", topology_table(&points));
    Ok(())
}

fn cmd_quality(opts: &Opts) -> Result<(), String> {
    use dagsfc::sim::sweep::quality::{quality_experiment, quality_table};
    let with_exact = opts.has("exact");
    let mut cfg = sim_config(opts)?;
    if with_exact {
        // Exact solver territory: tiny instances only.
        cfg.network_size = opts.usize_or("nodes", 9)?;
        cfg.vnf_kinds = 4;
        cfg.sfc_size = opts.usize_or("sfc-size", 2)?;
    } else {
        cfg.network_size = opts.usize_or("nodes", 60)?;
    }
    cfg.runs = opts.usize_or("runs", 10)?;
    let rows = quality_experiment(
        &cfg,
        &[Algo::Mbbe, Algo::Bbe, Algo::Grasp, Algo::Minv, Algo::Ranv],
        with_exact,
    );
    println!("{}", quality_table(&rows));
    Ok(())
}

fn cmd_ilp(opts: &Opts) -> Result<(), String> {
    let cfg = SimConfig {
        network_size: opts.usize_or("nodes", 8)?,
        sfc_size: opts.usize_or("sfc-size", 2)?,
        vnf_kinds: opts.usize_or("kinds", 4)?,
        seed: opts.u64_or("seed", 1)?,
        ..SimConfig::default()
    };
    let k = opts.usize_or("k", 4)?;
    let network = instance_network(&cfg);
    let (sfc, flow) = instance_request(&cfg, &network, 0);
    let model = IlpModel::build(&network, &sfc, &flow, k);
    println!(
        "model: {} assignment vars, {} path vars, {} constraints",
        model.stats.assignment_vars, model.stats.path_vars, model.stats.constraints
    );
    match opts.path("out") {
        Some(path) => {
            std::fs::write(&path, model.to_lp_string()).map_err(|e| e.to_string())?;
            println!("LP written to {}", path.display());
        }
        None => print!("{}", model.to_lp_string()),
    }
    Ok(())
}

/// Why `dagsfc audit` failed — each variant maps to a distinct exit
/// code so callers can react differently to "bad embeddings" (1),
/// "bad invocation" (2), and "bad input file" (3).
enum AuditCmdError {
    Usage(String),
    Input(String),
    Violations(String),
}

fn cmd_audit(opts: &Opts) -> Result<(), AuditCmdError> {
    let trace_path = opts
        .path("trace")
        .ok_or_else(|| AuditCmdError::Usage("audit requires --trace FILE".to_string()))?;
    let trace = sim_io::load_trace(&trace_path).map_err(|e| AuditCmdError::Input(e.to_string()))?;
    // The trace's base config regenerates the exact network the replay
    // ran against; --network overrides it for externally saved nets.
    let net = match opts.path("network") {
        Some(p) => sim_io::load_network(&p).map_err(|e| AuditCmdError::Input(e.to_string()))?,
        None => instance_network(&trace.base),
    };
    let outcome = dagsfc::sim::audit_trace(&net, &trace);
    if opts.has("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&outcome)
                .map_err(|e| AuditCmdError::Input(e.to_string()))?
        );
    } else {
        println!(
            "audited {} ({} arrivals): {} accepted, {} rejected",
            trace_path.display(),
            outcome.arrivals,
            outcome.accepted,
            outcome.rejected
        );
        println!(
            "constraint audit: {}/{} clean, max cost drift {:.3e}",
            outcome.clean, outcome.accepted, outcome.max_cost_drift
        );
        for finding in &outcome.findings {
            println!(
                "  arrival {} (reported cost {:.6}):",
                finding.arrival, finding.reported_cost
            );
            for v in &finding.violations {
                println!("    {v}");
            }
        }
    }
    if outcome.is_clean() {
        Ok(())
    } else {
        Err(AuditCmdError::Violations(format!(
            "{} of {} accepted embeddings violated paper constraints",
            outcome.findings.len(),
            outcome.accepted
        )))
    }
}

fn write_dot(path: &Path, dot: &str) -> Result<(), String> {
    std::fs::write(path, dot).map_err(|e| e.to_string())?;
    println!("DOT written to {}", path.display());
    Ok(())
}
