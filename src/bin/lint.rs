//! `dagsfc-lint` — lightweight source-level static analysis for the
//! workspace.
//!
//! Enforces the invariants the codebase otherwise keeps only by
//! convention (see `docs/VERIFICATION.md` for the full catalog):
//!
//! * `unwrap` / `expect` — production code must not panic on `Option`/
//!   `Result`; convert to `Err` paths or justify with an allow.
//! * `retired-accounting` — the panicking accounting entry points were
//!   replaced by `try_account`/`try_cost`; the old names must not come
//!   back.
//! * `wallclock` — solver and simulation decisions must be functions of
//!   the seed, never of the wall clock (`Instant` for *measuring* is
//!   fine; `SystemTime` is not).
//! * `unseeded-rng` — all randomness flows from an explicit seed.
//! * `raw-routing` — single-path routing goes through the shared
//!   `PathOracle`; direct Dijkstra calls bypass its cache and its
//!   invalidation discipline.
//! * `raw-commit` — embeddings reach the `CommitLedger` only through
//!   the auditing `embed_and_commit` wrapper, never by calling the
//!   ledger directly.
//! * `float-eq` — objective costs are `f64`; compare with a tolerance,
//!   not `==`.
//! * `raw-hop-delay` — turning hop counts into delays is the delay
//!   model's job (`crates/core/src/delay.rs`); everywhere else consumes
//!   per-link delays through `DelayModel::path_us`, so an ad-hoc
//!   `hops × per-hop` product silently disagrees with the substrate's
//!   real delay table.
//! * `shard-ledger` — a region shard's `CommitLedger` is reached only
//!   through the shard gateway API (`ShardedEngine`'s two-phase
//!   commit/release/reclaim); touching a shard's ledger directly from
//!   outside `crates/shard` bypasses the 2PC rollback discipline and
//!   the unpartitioned constraint audit.
//!
//! Escape hatch: a `lint:allow(rule)` marker in a comment on the same
//! line or the line immediately above suppresses the finding. Test
//! modules (`#[cfg(test)]`), `tests/`, `benches/`, `examples/`, and the
//! vendored `shims/` are exempt.
//!
//! Usage: `cargo run --bin dagsfc-lint [-- --format json] [--root DIR]`
//! Exits 1 when any unallowed violation is found.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint rule: a name, the patterns that trigger it, and a scope.
struct Rule {
    name: &'static str,
    rationale: &'static str,
    /// Substrings that fire the rule (built at runtime so this file
    /// does not match its own definitions).
    patterns: Vec<String>,
    scope: Scope,
}

/// Where a rule applies.
#[derive(PartialEq)]
enum Scope {
    /// Every non-test source file.
    Workspace,
    /// Every non-test source file outside `crates/net/src/`.
    OutsideNet,
    /// Only the routing/solver hot paths (`crates/net/src/routing/`,
    /// `solvers/bbe/`).
    HotPaths,
    /// Every non-test source file except the canonical delay model
    /// (`crates/core/src/delay.rs`).
    OutsideDelayModel,
    /// Every non-test source file outside `crates/shard/src/`.
    OutsideShard,
}

/// Pattern fragments are concatenated at runtime; a literal pattern in
/// this source would flag the linter itself.
fn glue(parts: &[&str]) -> String {
    parts.concat()
}

fn rules() -> Vec<Rule> {
    vec![
        Rule {
            name: "unwrap",
            rationale: "production code must not panic; return Err or justify with an allow",
            patterns: vec![glue(&[".unw", "rap()"])],
            scope: Scope::Workspace,
        },
        Rule {
            name: "expect",
            rationale: "production code must not panic; return Err or justify with an allow",
            patterns: vec![glue(&[".exp", "ect("])],
            scope: Scope::Workspace,
        },
        Rule {
            name: "retired-accounting",
            rationale: "the panicking accounting API was retired; use try_account/try_cost",
            patterns: vec![glue(&[".acc", "ount("]), glue(&[".co", "st("])],
            scope: Scope::Workspace,
        },
        Rule {
            name: "wallclock",
            rationale: "solver/sim behavior must be a function of the seed, not the wall clock",
            patterns: vec![glue(&["SystemTime", "::now"])],
            scope: Scope::Workspace,
        },
        Rule {
            name: "unseeded-rng",
            rationale: "all randomness must flow from an explicit seed for reproducibility",
            patterns: vec![
                glue(&["thread_", "rng("]),
                glue(&["from_", "entropy("]),
                glue(&["rand::", "random"]),
            ],
            scope: Scope::Workspace,
        },
        Rule {
            name: "raw-routing",
            rationale: "single-path routing must go through the shared PathOracle cache",
            patterns: vec![
                glue(&["routing::", "min_cost_path"]),
                glue(&["routing::", "dijkstra"]),
                glue(&["ShortestPathTree", "::build"]),
            ],
            scope: Scope::OutsideNet,
        },
        Rule {
            name: "std-hashmap",
            rationale: "hot paths must use the seeded FxHashMap/FxHashSet or index vectors; \
                        std's SipHash tables dominate probe-heavy inner loops",
            // Matched structurally (bare identifier) so `FxHashMap`
            // does not fire; see scan_file.
            patterns: vec![],
            scope: Scope::HotPaths,
        },
        Rule {
            name: "raw-commit",
            rationale: "embeddings are committed through the auditing embed_and_commit \
                        wrapper, never by calling the ledger directly",
            patterns: vec![glue(&[".com", "mit("])],
            scope: Scope::OutsideNet,
        },
        Rule {
            name: "raw-hop-delay",
            rationale: "hop-count → delay conversion lives only in the delay model \
                        (crates/core/src/delay.rs); use DelayModel::path_us",
            patterns: vec![
                glue(&["per_hop", "_us *"]),
                glue(&["* per_", "hop_us"]),
                glue(&["hops() ", "as f64"]),
                glue(&["len() as f64 ", "* per_hop"]),
            ],
            scope: Scope::OutsideDelayModel,
        },
        Rule {
            name: "shard-ledger",
            rationale: "a shard's CommitLedger is private to the shard gateway API; go \
                        through ShardedEngine's two-phase commit/release/reclaim",
            patterns: vec![glue(&["raw_led", "ger("]), glue(&[".led", "gers["])],
            scope: Scope::OutsideShard,
        },
        Rule {
            name: "float-eq",
            rationale: "objective costs are f64; compare with a tolerance, never == / !=",
            patterns: vec![
                glue(&["cost ", "== "]),
                glue(&["cost ", "!= "]),
                glue(&["total() ", "== "]),
                glue(&["total() ", "!= "]),
            ],
            scope: Scope::Workspace,
        },
    ]
}

/// The bare-call form of the raw-routing rule needs lookbehind (it must
/// not match `oracle_min_cost_path(` or `.min_cost_path(`), so it is
/// matched structurally rather than by substring.
fn bare_routing_call(line: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(needle) {
        let abs = start + pos;
        let before = line[..abs].chars().next_back();
        let ok_before = !matches!(before, Some(c) if c == '.' || c == '_' || c.is_alphanumeric());
        // A `fn min_cost_path(` *definition* is not a call (the oracle
        // itself, and oracle-backed wrappers, define this name).
        let is_definition = line[..abs].trim_end().ends_with("fn");
        if ok_before && !is_definition {
            return true;
        }
        start = abs + needle.len();
    }
    false
}

/// A single finding.
struct Violation {
    rule: &'static str,
    file: PathBuf,
    line: usize,
    text: String,
}

/// Directories never scanned (vendored, generated, or exempt-by-class).
const SKIP_DIRS: &[&str] = &[
    "target", "shims", ".git", "tests", "benches", "examples", ".github",
];

fn collect_files(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_files(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Whether `line` (or `prev`) carries an allow marker for `rule`.
fn allowed(rule: &str, line: &str, prev: Option<&str>) -> bool {
    let marker_on = |s: &str| {
        s.find("lint:allow(").is_some_and(|pos| {
            let rest = &s[pos + "lint:allow(".len()..];
            rest.split(')')
                .next()
                .is_some_and(|inner| inner.split(',').any(|r| r.trim() == rule))
        })
    };
    marker_on(line) || prev.is_some_and(marker_on)
}

/// Strips a trailing line comment so rule patterns never fire on prose
/// (the allow marker is read from the raw line before stripping).
fn code_portion(line: &str) -> &str {
    // Naive: the first `//` outside any obvious string context. A `//`
    // inside a string literal is rare enough in this codebase that the
    // allow marker covers it.
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn scan_file(
    path: &Path,
    rules: &[Rule],
    in_net: bool,
    in_hot: bool,
    in_delay_model: bool,
    in_shard: bool,
    out: &mut Vec<Violation>,
) {
    let Ok(src) = std::fs::read_to_string(path) else {
        return;
    };
    let lines: Vec<&str> = src.lines().collect();

    // Track `#[cfg(test)]` blocks by brace depth: everything inside a
    // test module is exempt from every rule.
    let mut in_test = false;
    let mut saw_open = false;
    let mut depth: i64 = 0;

    let bare_min_cost = glue(&["min_cost_path", "("]);
    let bare_hashmap = glue(&["Hash", "Map"]);
    let bare_hashset = glue(&["Hash", "Set"]);

    for (idx, raw) in lines.iter().enumerate() {
        if !in_test && raw.trim_start().starts_with("#[cfg(test)]") {
            in_test = true;
            saw_open = false;
            depth = 0;
        }
        if in_test {
            for c in raw.chars() {
                match c {
                    '{' => {
                        saw_open = true;
                        depth += 1;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if saw_open && depth <= 0 {
                in_test = false;
            }
            continue;
        }

        let code = code_portion(raw);
        if code.trim().is_empty() {
            continue;
        }
        let prev = idx.checked_sub(1).map(|i| lines[i]);
        for rule in rules {
            let applies = match rule.scope {
                Scope::Workspace => true,
                Scope::OutsideNet => !in_net,
                Scope::HotPaths => in_hot,
                Scope::OutsideDelayModel => !in_delay_model,
                Scope::OutsideShard => !in_shard,
            };
            if !applies {
                continue;
            }
            let mut hit = rule.patterns.iter().any(|p| code.contains(p.as_str()));
            if !hit && rule.name == "raw-routing" {
                hit = bare_routing_call(code, &bare_min_cost);
            }
            if !hit && rule.name == "std-hashmap" {
                // Bare `HashMap`/`HashSet` identifiers: `FxHashMap` (the
                // sanctioned replacement) never fires because its `x`
                // blocks the lookbehind.
                hit = bare_routing_call(code, &bare_hashmap)
                    || bare_routing_call(code, &bare_hashset);
            }
            if hit && !allowed(rule.name, raw, prev) {
                out.push(Violation {
                    rule: rule.name,
                    file: path.to_path_buf(),
                    line: idx + 1,
                    text: raw.trim().to_string(),
                });
            }
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format_json = false;
    let mut root = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => {
                format_json = it.next().map(String::as_str) == Some("json");
            }
            "--root" => {
                if let Some(dir) = it.next() {
                    root = PathBuf::from(dir);
                }
            }
            other => {
                eprintln!("unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }

    let rules = rules();
    let mut files = Vec::new();
    collect_files(&root, &mut files);
    let mut violations = Vec::new();
    for file in &files {
        let in_net = file
            .components()
            .collect::<Vec<_>>()
            .windows(2)
            .any(|w| w[0].as_os_str() == "crates" && w[1].as_os_str() == "net");
        // Hot paths: the routing kernels and the BBE engine, where the
        // std-hashmap rule bites.
        let normalized = file.to_string_lossy().replace('\\', "/");
        let in_hot =
            normalized.contains("crates/net/src/routing/") || normalized.contains("solvers/bbe/");
        let in_delay_model = normalized.ends_with("crates/core/src/delay.rs");
        let in_shard = normalized.contains("crates/shard/src/");
        scan_file(
            file,
            &rules,
            in_net,
            in_hot,
            in_delay_model,
            in_shard,
            &mut violations,
        );
    }

    if format_json {
        let mut out = String::from("[");
        for (i, v) in violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"text\":\"{}\"}}",
                v.rule,
                json_escape(&v.file.display().to_string()),
                v.line,
                json_escape(&v.text)
            );
        }
        out.push(']');
        println!("{out}");
    } else {
        for v in &violations {
            println!("{}:{}: [{}] {}", v.file.display(), v.line, v.rule, v.text);
        }
        println!(
            "dagsfc-lint: {} files scanned, {} violation(s)",
            files.len(),
            violations.len()
        );
        if !violations.is_empty() {
            for rule in &rules {
                if violations.iter().any(|v| v.rule == rule.name) {
                    println!("  {}: {}", rule.name, rule.rationale);
                }
            }
        }
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
