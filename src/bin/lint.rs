//! `dagsfc-lint` — thin shim over the `dagsfc-lint` crate
//! (`crates/lint`), which hosts the actual engine: a hand-rolled
//! lexer, the token-based rule catalog, and the determinism /
//! lock-ordering / audit-coverage semantic passes.
//!
//! Usage (unchanged from the old substring engine, plus baselines and
//! SARIF):
//!
//! ```text
//! cargo run --bin dagsfc-lint [-- --root DIR]
//!                             [--format text|json|sarif]
//!                             [--baseline FILE | --no-baseline]
//!                             [--update-baseline]
//! ```
//!
//! See `docs/VERIFICATION.md` for the rule catalog and the baseline
//! workflow. Exits 1 when any unbaselined violation is found.

use std::process::ExitCode;

fn main() -> ExitCode {
    dagsfc_lint::cli::run_cli(std::env::args().skip(1).collect())
}
