//! # dagsfc — DAG-SFC: minimum-cost embedding of hybrid service chains
//!
//! Facade crate re-exporting the whole workspace, a reproduction of
//! *DAG-SFC: Minimize the Embedding Cost of SFC with Parallel VNFs*
//! (ICPP 2018):
//!
//! * [`net`] — the priced cloud-network substrate (graph, residual
//!   capacities, routing, random generator);
//! * [`nfp`] — network-function parallelism analysis (action profiles,
//!   dependency rules, sequential→hybrid transformation);
//! * [`core`] — the DAG-SFC abstraction, cost model, validator, and the
//!   BBE/MBBE/RANV/MINV/exact solvers;
//! * [`audit`] — the solver-independent constraint auditor re-deriving
//!   every paper constraint from first principles (see
//!   `docs/VERIFICATION.md`);
//! * [`sim`] — the evaluation harness regenerating every figure of the
//!   paper;
//! * [`serve`] — the `dagsfc-serve` daemon: a long-lived embedding
//!   service with admission control, a lease ledger, and trace replay
//!   that reproduces the simulation bit for bit over TCP (see
//!   `docs/SERVICE.md`);
//! * [`chaos`] — the deterministic fault-injection harness: seeded
//!   fault plans (link/node failures, capacity churn, misbehaving
//!   clients) replayed in-process or through the daemon with
//!   bit-for-bit reproducible outcomes (see `docs/TESTING.md`).
//!
//! ## Quickstart
//!
//! ```
//! use dagsfc::core::{solvers::{MbbeSolver, Solver}, DagSfc, Flow, Layer, VnfCatalog};
//! use dagsfc::net::{generator, NetGenConfig, NodeId, VnfTypeId};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // A 50-node priced cloud with 5 regular VNF kinds plus the merger kind.
//! let cfg = NetGenConfig { nodes: 50, vnf_kinds: 6, ..NetGenConfig::default() };
//! let network = generator::generate(&cfg, &mut StdRng::seed_from_u64(7)).unwrap();
//!
//! // A hybrid chain: f0 then {f1 ∥ f2} merged.
//! let catalog = VnfCatalog::new(5);
//! let sfc = DagSfc::new(
//!     vec![Layer::new(vec![VnfTypeId(0)]),
//!          Layer::new(vec![VnfTypeId(1), VnfTypeId(2)])],
//!     catalog,
//! ).unwrap();
//!
//! let flow = Flow::unit(NodeId(0), NodeId(49));
//! let outcome = MbbeSolver::new().solve(&network, &sfc, &flow).unwrap();
//! assert!(outcome.cost.total() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use dagsfc_audit as audit;
pub use dagsfc_chaos as chaos;
pub use dagsfc_core as core;
pub use dagsfc_net as net;
pub use dagsfc_nfp as nfp;
pub use dagsfc_serve as serve;
pub use dagsfc_sim as sim;
