//! # dagsfc-audit — solver-independent constraint auditor
//!
//! Re-checks any [`Embedding`] against the paper's integer program
//! (§3.2–3.3) *without trusting the solver that produced it*: every
//! constraint is re-derived from the network, the chain, and the flow
//! alone, and the objective of eq. (1) is recomputed from first
//! principles. A solver (or the production accounting in
//! `dagsfc-core`) that drifts from the formulation shows up as a
//! structured [`Violation`] naming the constraint by its paper number:
//!
//! * **(2)** — VNF processing capability: `Σ α_{v,i}·R ≤ p_{v,i}`;
//! * **(3)** — link bandwidth: `Σ α_{g,h}·R ≤ b_e`;
//! * **(4)** — placement: every slot sits on exactly one node that
//!   actually deploys the required VNF kind;
//! * **(5)/(6)** — chain enabling: every meta-path is implemented by a
//!   contiguous real-path whose endpoints match the assignment;
//! * **(7)/(8)** — VNF reuse accounting: an instance serving `k` slots
//!   is rented `k` times;
//! * **(9)** — inter-layer meta-paths of one layer are a multicast: a
//!   shared link is charged at most once per layer (`min{·, 1}`);
//! * **(10)** — inner-layer (parallel VNF → merger) paths carry
//!   distinct traffic versions: every link occurrence is charged.
//! * **(D)** — end-to-end delay (QoS extension): when the flow carries
//!   a `delay_budget_us`, the embedding's delay under the canonical
//!   substrate model ([`DelayModel::for_network`]) must stay within it.
//!
//! The auditor deliberately re-implements the charging rules instead of
//! calling [`Embedding::try_account`], then *compares* its figures with
//! the production accounting — so an accounting bug in `dagsfc-core`
//! surfaces as a [`Violation::VnfChargeMismatch`] /
//! [`Violation::LinkChargeMismatch`] rather than silently corrupting
//! every benchmark and every committed lease.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use dagsfc_core::{
    meta_paths, CostBreakdown, DagSfc, DelayModel, Embedding, Endpoint, Flow, MetaPathKind,
    SolveOutcome,
};
use dagsfc_net::{LinkId, Network, NodeId, VnfTypeId, CAP_EPS};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Cost-comparison tolerance of the auditor: the independently
/// recomputed objective must match the production accounting (and any
/// solver-reported cost) to within this absolute error.
pub const COST_TOLERANCE: f64 = 1e-9;

/// A paper constraint, by its number in §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Constraint {
    /// Eq. (2): VNF processing capability.
    C2,
    /// Eq. (3): link bandwidth.
    C3,
    /// Eq. (4): slot placement on a hosting node.
    C4,
    /// Eqs. (5)/(6): meta-path connectivity (chain enabling).
    C5C6,
    /// Eqs. (7)/(8): VNF reuse / rental accounting.
    C7C8,
    /// Eq. (9): multicast inter-layer link charging.
    C9,
    /// Eq. (10): per-path inner-layer link charging.
    C10,
    /// Objective (1): solver-reported cost vs the recomputation.
    Objective,
    /// End-to-end delay budget (QoS extension, not a numbered paper
    /// constraint): delay under the canonical model ≤ `delay_budget_us`.
    Delay,
    /// Precedence order (partial-order extension): every declared edge
    /// of the chain's partial order crosses strictly forward between
    /// embedded layers.
    Order,
    /// Affinity (placement-rule extension): a declared affinity pair
    /// co-locates on one substrate node.
    Affinity,
    /// Anti-affinity (placement-rule extension): a declared
    /// anti-affinity pair never shares a substrate node.
    AntiAffinity,
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::C2 => write!(f, "(2)"),
            Constraint::C3 => write!(f, "(3)"),
            Constraint::C4 => write!(f, "(4)"),
            Constraint::C5C6 => write!(f, "(5)/(6)"),
            Constraint::C7C8 => write!(f, "(7)/(8)"),
            Constraint::C9 => write!(f, "(9)"),
            Constraint::C10 => write!(f, "(10)"),
            Constraint::Objective => write!(f, "(1)"),
            Constraint::Delay => write!(f, "(D)"),
            Constraint::Order => write!(f, "(O)"),
            Constraint::Affinity => write!(f, "(A)"),
            Constraint::AntiAffinity => write!(f, "(AA)"),
        }
    }
}

/// One violated constraint: which paper equation, which entity, and the
/// expected-vs-actual figures.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum Violation {
    /// The embedding's layer/slot/path shape does not match the chain —
    /// nothing else can be checked reliably (constraint (4) structural
    /// precondition).
    ShapeMismatch {
        /// What differs.
        detail: String,
    },
    /// (4): a slot is assigned to a node that does not deploy its kind
    /// (or to a node outside the network).
    SlotUnhosted {
        /// Layer index.
        layer: usize,
        /// Slot index (merger slot included).
        slot: usize,
        /// Offending node.
        node: NodeId,
        /// Required VNF kind.
        kind: VnfTypeId,
    },
    /// (5)/(6): a real-path's endpoints disagree with the assignment.
    PathEndpointMismatch {
        /// Canonical meta-path index.
        index: usize,
        /// Expected (from, to) under the assignment.
        expected: (NodeId, NodeId),
        /// Actual (source, target) of the real-path.
        actual: (NodeId, NodeId),
    },
    /// (5)/(6): a real-path hops over a link that does not exist or does
    /// not join its adjacent path nodes.
    PathDiscontiguous {
        /// Canonical meta-path index.
        index: usize,
        /// Hop position within the path.
        hop: usize,
        /// The offending link.
        link: LinkId,
    },
    /// (2): a VNF instance is loaded beyond its processing capability.
    VnfCapacityExceeded {
        /// Hosting node.
        node: NodeId,
        /// Overloaded kind.
        kind: VnfTypeId,
        /// Imposed load `α·R`.
        load: f64,
        /// Declared capability.
        capacity: f64,
    },
    /// (3): a link is loaded beyond its bandwidth.
    LinkBandwidthExceeded {
        /// Overloaded link.
        link: LinkId,
        /// Imposed load under multicast-aware charging.
        load: f64,
        /// Declared bandwidth.
        capacity: f64,
    },
    /// (7)/(8): the production VNF-rental figure disagrees with the
    /// auditor's independent α-count recomputation.
    VnfChargeMismatch {
        /// Auditor's figure.
        expected: f64,
        /// Production accounting's figure.
        actual: f64,
    },
    /// (9)/(10): the production link-charging figure disagrees with the
    /// auditor's independent multicast-aware recomputation.
    LinkChargeMismatch {
        /// Auditor's figure.
        expected: f64,
        /// Production accounting's figure.
        actual: f64,
    },
    /// Objective (1): the cost the producer reported for this embedding
    /// disagrees with the auditor's recomputation.
    CostMismatch {
        /// Auditor's recomputed objective.
        expected: f64,
        /// Reported objective.
        actual: f64,
    },
    /// The production accounting refused the embedding outright (e.g. a
    /// missing VNF instance) — reported alongside the per-slot (4)
    /// violations for context.
    AccountingRejected {
        /// The accounting error, rendered.
        detail: String,
    },
    /// (D): the embedding's end-to-end delay under the canonical
    /// substrate model exceeds the flow's delay budget.
    DelayBudgetExceeded {
        /// Recomputed end-to-end delay (µs).
        delay_us: f64,
        /// The flow's budget (µs).
        budget_us: f64,
    },
    /// (O): a declared precedence edge of the chain's partial order is
    /// not honored by the embedded layering (or names a position the
    /// chain does not have). Re-derived from the chain's own
    /// position→layer flattening, independent of the solver's.
    PrecedenceViolated {
        /// The offending edge, in flattened regular-slot positions.
        edge: (u32, u32),
        /// What went wrong, rendered.
        detail: String,
    },
    /// (A): a declared affinity pair is split across substrate nodes
    /// instead of co-locating on one.
    AffinitySplit {
        /// The kind pair.
        pair: (VnfTypeId, VnfTypeId),
        /// The distinct hosting nodes observed (sorted).
        nodes: Vec<NodeId>,
    },
    /// (AA): a declared anti-affinity pair shares a substrate node.
    AntiAffinityColocated {
        /// The kind pair.
        pair: (VnfTypeId, VnfTypeId),
        /// The shared node.
        node: NodeId,
    },
}

impl Violation {
    /// The paper constraint this violation falls under.
    pub fn constraint(&self) -> Constraint {
        match self {
            Violation::ShapeMismatch { .. } | Violation::SlotUnhosted { .. } => Constraint::C4,
            Violation::PathEndpointMismatch { .. } | Violation::PathDiscontiguous { .. } => {
                Constraint::C5C6
            }
            Violation::VnfCapacityExceeded { .. } => Constraint::C2,
            Violation::LinkBandwidthExceeded { .. } => Constraint::C3,
            Violation::VnfChargeMismatch { .. } | Violation::AccountingRejected { .. } => {
                Constraint::C7C8
            }
            Violation::LinkChargeMismatch { .. } => Constraint::C9,
            Violation::CostMismatch { .. } => Constraint::Objective,
            Violation::DelayBudgetExceeded { .. } => Constraint::Delay,
            Violation::PrecedenceViolated { .. } => Constraint::Order,
            Violation::AffinitySplit { .. } => Constraint::Affinity,
            Violation::AntiAffinityColocated { .. } => Constraint::AntiAffinity,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ", self.constraint())?;
        match self {
            Violation::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            Violation::SlotUnhosted {
                layer,
                slot,
                node,
                kind,
            } => write!(f, "L{layer}[{slot}]: {node} does not deploy {kind}"),
            Violation::PathEndpointMismatch {
                index,
                expected,
                actual,
            } => write!(
                f,
                "meta-path #{index}: expected {} → {}, real-path runs {} → {}",
                expected.0, expected.1, actual.0, actual.1
            ),
            Violation::PathDiscontiguous { index, hop, link } => {
                write!(f, "meta-path #{index}: hop {hop} ({link}) breaks the path")
            }
            Violation::VnfCapacityExceeded {
                node,
                kind,
                load,
                capacity,
            } => write!(
                f,
                "{kind}@{node}: load {load} exceeds capability {capacity}"
            ),
            Violation::LinkBandwidthExceeded {
                link,
                load,
                capacity,
            } => write!(f, "{link}: load {load} exceeds bandwidth {capacity}"),
            Violation::VnfChargeMismatch { expected, actual } => write!(
                f,
                "VNF rental: auditor recomputed {expected}, production accounting says {actual}"
            ),
            Violation::LinkChargeMismatch { expected, actual } => write!(
                f,
                "link charging: auditor recomputed {expected}, production accounting says {actual}"
            ),
            Violation::CostMismatch { expected, actual } => write!(
                f,
                "objective: auditor recomputed {expected}, producer reported {actual}"
            ),
            Violation::AccountingRejected { detail } => {
                write!(f, "production accounting rejected the embedding: {detail}")
            }
            Violation::DelayBudgetExceeded {
                delay_us,
                budget_us,
            } => write!(
                f,
                "end-to-end delay {delay_us} us exceeds the flow budget {budget_us} us"
            ),
            Violation::PrecedenceViolated { edge, detail } => {
                write!(f, "precedence edge ({}, {}): {detail}", edge.0, edge.1)
            }
            Violation::AffinitySplit { pair, nodes } => {
                let hosts = nodes
                    .iter()
                    .map(|n| n.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                write!(
                    f,
                    "affinity ({}, {}) split across nodes {{{hosts}}}",
                    pair.0, pair.1
                )
            }
            Violation::AntiAffinityColocated { pair, node } => {
                write!(
                    f,
                    "anti-affinity ({}, {}) co-located on {node}",
                    pair.0, pair.1
                )
            }
        }
    }
}

/// Outcome of one audit: the violations found (empty ⇒ the embedding
/// satisfies the integer program) plus the independently recomputed
/// objective.
#[derive(Debug, Clone, Serialize)]
pub struct AuditReport {
    /// Violations, in constraint-check order.
    pub violations: Vec<Violation>,
    /// The objective of eq. (1), recomputed from first principles.
    pub recomputed: CostBreakdown,
    /// The cost the producer reported, when one was supplied.
    pub reported: Option<CostBreakdown>,
}

impl AuditReport {
    /// Whether every constraint held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// All violations rendered, one per line.
    pub fn summary(&self) -> String {
        self.violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// The solver-independent constraint auditor (see the crate docs).
///
/// Stateless and `Sync`; one instance can audit any number of
/// embeddings against any number of networks.
#[derive(Debug, Clone, Copy)]
pub struct ConstraintAuditor {
    /// Absolute tolerance for all cost comparisons.
    pub cost_tolerance: f64,
}

impl Default for ConstraintAuditor {
    fn default() -> Self {
        ConstraintAuditor {
            cost_tolerance: COST_TOLERANCE,
        }
    }
}

impl ConstraintAuditor {
    /// An auditor with the default [`COST_TOLERANCE`].
    pub fn new() -> Self {
        ConstraintAuditor::default()
    }

    /// Audits `emb` against constraints (2)–(10) and cross-checks the
    /// production accounting ([`Embedding::try_cost`]) against the
    /// independent recomputation.
    pub fn audit(&self, net: &Network, sfc: &DagSfc, flow: &Flow, emb: &Embedding) -> AuditReport {
        self.audit_with_reported(net, sfc, flow, emb, None)
    }

    /// Like [`ConstraintAuditor::audit`], additionally checking the
    /// producer's reported cost against the recomputed objective
    /// (constraint-(1) cross-check) — the form every solver/serving hook
    /// uses.
    pub fn audit_outcome(
        &self,
        net: &Network,
        sfc: &DagSfc,
        flow: &Flow,
        out: &SolveOutcome,
    ) -> AuditReport {
        self.audit_with_reported(net, sfc, flow, &out.embedding, Some(out.cost))
    }

    fn audit_with_reported(
        &self,
        net: &Network,
        sfc: &DagSfc,
        flow: &Flow,
        emb: &Embedding,
        reported: Option<CostBreakdown>,
    ) -> AuditReport {
        let mut violations = Vec::new();

        // --- Shape preconditions. A deserialized embedding can carry an
        // arbitrary shape; bail out of the per-slot walks early if so.
        if let Some(detail) = shape_mismatch(sfc, emb) {
            violations.push(Violation::ShapeMismatch { detail });
            return AuditReport {
                violations,
                recomputed: CostBreakdown::ZERO,
                reported,
            };
        }

        let catalog = sfc.catalog();

        // --- Constraint (4) + eq. (7) α-counts: walk every slot once.
        let mut alpha: BTreeMap<(NodeId, VnfTypeId), u32> = BTreeMap::new();
        for (l, slots) in emb.assignments().iter().enumerate() {
            let layer = sfc.layer(l);
            for (slot, &node) in slots.iter().enumerate() {
                let kind = layer.slot_kind(slot, catalog);
                if node.index() >= net.node_count() || !net.hosts(node, kind) {
                    violations.push(Violation::SlotUnhosted {
                        layer: l,
                        slot,
                        node,
                        kind,
                    });
                    continue;
                }
                *alpha.entry((node, kind)).or_insert(0) += 1;
            }
        }

        // --- Constraints (5)/(6): meta-path connectivity.
        let mps = meta_paths(sfc);
        for (index, (mp, path)) in mps.iter().zip(emb.paths()).enumerate() {
            let expected = (endpoint(emb, flow, mp.from), endpoint(emb, flow, mp.to));
            let actual = (path.source(), path.target());
            if expected != actual {
                violations.push(Violation::PathEndpointMismatch {
                    index,
                    expected,
                    actual,
                });
            }
            let nodes = path.nodes();
            for (hop, &link) in path.links().iter().enumerate() {
                let joins = net
                    .try_link(link)
                    .map(|l| {
                        (l.a == nodes[hop] && l.b == nodes[hop + 1])
                            || (l.b == nodes[hop] && l.a == nodes[hop + 1])
                    })
                    .unwrap_or(false);
                if !joins {
                    violations.push(Violation::PathDiscontiguous { index, hop, link });
                    break;
                }
            }
        }

        // --- Eqs. (9)/(10): independent link-charge derivation.
        // Inter-layer paths of one multicast group charge a shared link
        // once; inner-layer paths charge every occurrence.
        let mut charges: BTreeMap<LinkId, u32> = BTreeMap::new();
        let mut group_seen: BTreeMap<usize, BTreeSet<LinkId>> = BTreeMap::new();
        for (mp, path) in mps.iter().zip(emb.paths()) {
            for &link in path.links() {
                let charge = match mp.kind {
                    MetaPathKind::InterLayer => {
                        group_seen.entry(mp.group).or_default().insert(link)
                    }
                    MetaPathKind::InnerLayer => true,
                };
                if charge {
                    *charges.entry(link).or_insert(0) += 1;
                }
            }
        }

        // --- Objective (1), recomputed from first principles.
        let mut vnf_cost = 0.0;
        for (&(node, kind), &uses) in &alpha {
            if let Some(inst) = net.instance(node, kind) {
                vnf_cost += uses as f64 * inst.price * flow.size;
            }
        }
        let mut link_cost = 0.0;
        for (&link, &uses) in &charges {
            if let Ok(l) = net.try_link(link) {
                link_cost += uses as f64 * l.price * flow.size;
            }
        }
        let recomputed = CostBreakdown {
            vnf: vnf_cost,
            link: link_cost,
        };

        // --- Constraint (2): instance capability under α-loads.
        for (&(node, kind), &uses) in &alpha {
            if let Some(inst) = net.instance(node, kind) {
                let load = uses as f64 * flow.rate;
                if load > inst.capacity + CAP_EPS {
                    violations.push(Violation::VnfCapacityExceeded {
                        node,
                        kind,
                        load,
                        capacity: inst.capacity,
                    });
                }
            }
        }

        // --- Constraint (3): bandwidth under multicast-aware loads.
        for (&link, &uses) in &charges {
            if let Ok(l) = net.try_link(link) {
                let load = uses as f64 * flow.rate;
                if load > l.capacity + CAP_EPS {
                    violations.push(Violation::LinkBandwidthExceeded {
                        link,
                        load,
                        capacity: l.capacity,
                    });
                }
            }
        }

        // --- Eqs. (7)–(10) cross-check: the production accounting must
        // agree with the independent recomputation term by term. Only
        // meaningful when the embedding is structurally sound: with a
        // hosting violation the production path prices the slot at
        // infinity while the auditor skips it.
        let structurally_sound = violations
            .iter()
            .all(|v| !matches!(v, Violation::SlotUnhosted { .. }));
        match emb.try_cost(net, sfc, flow) {
            Ok(prod) if structurally_sound => {
                if (prod.vnf - recomputed.vnf).abs() > self.cost_tolerance {
                    violations.push(Violation::VnfChargeMismatch {
                        expected: recomputed.vnf,
                        actual: prod.vnf,
                    });
                }
                if (prod.link - recomputed.link).abs() > self.cost_tolerance {
                    violations.push(Violation::LinkChargeMismatch {
                        expected: recomputed.link,
                        actual: prod.link,
                    });
                }
            }
            Ok(_) => {}
            Err(e) if structurally_sound => {
                violations.push(Violation::AccountingRejected {
                    detail: e.to_string(),
                });
            }
            Err(_) => {} // already reported per-slot under (4)
        }

        // --- Constraint (D): end-to-end delay within the flow budget,
        // recomputed under the canonical substrate model — independent
        // of whatever model (or delay logic) the solver used.
        if let Some(budget_us) = flow.delay_budget_us {
            let delay_us = DelayModel::for_network(net).embedding_delay(sfc, emb, flow);
            if delay_us > budget_us + COST_TOLERANCE {
                violations.push(Violation::DelayBudgetExceeded {
                    delay_us,
                    budget_us,
                });
            }
        }

        // --- Constraint (O): the chain's declared partial order vs its
        // embedded layering, re-derived from the chain's own
        // position→layer flattening (independent of the solvers' seam).
        if let Some(order) = sfc.order() {
            let pos_layers = position_layers(sfc);
            for &(i, j) in &order.edges {
                let (iu, ju) = (i as usize, j as usize);
                if iu >= pos_layers.len() || ju >= pos_layers.len() {
                    violations.push(Violation::PrecedenceViolated {
                        edge: (i, j),
                        detail: format!(
                            "names a position outside the chain's {} regular slots",
                            pos_layers.len()
                        ),
                    });
                } else if pos_layers[iu] >= pos_layers[ju] {
                    violations.push(Violation::PrecedenceViolated {
                        edge: (i, j),
                        detail: format!(
                            "layer {} does not precede layer {}",
                            pos_layers[iu], pos_layers[ju]
                        ),
                    });
                }
            }
        }

        // --- Constraints (A)/(AA): placement rules, from an independent
        // per-kind host-set derivation over every slot (mergers
        // included).
        if let Some(rules) = sfc.rules() {
            let mut hosts: BTreeMap<VnfTypeId, BTreeSet<NodeId>> = BTreeMap::new();
            for (l, slots) in emb.assignments().iter().enumerate() {
                let layer = sfc.layer(l);
                for (slot, &node) in slots.iter().enumerate() {
                    hosts
                        .entry(layer.slot_kind(slot, catalog))
                        .or_default()
                        .insert(node);
                }
            }
            for &(a, b) in &rules.affinity {
                // Vacuous unless both kinds are actually embedded.
                let (Some(na), Some(nb)) = (hosts.get(&a), hosts.get(&b)) else {
                    continue;
                };
                let union: BTreeSet<NodeId> = na.union(nb).copied().collect();
                if union.len() > 1 {
                    violations.push(Violation::AffinitySplit {
                        pair: (a, b),
                        nodes: union.into_iter().collect(),
                    });
                }
            }
            for &(a, b) in &rules.anti_affinity {
                let (Some(na), Some(nb)) = (hosts.get(&a), hosts.get(&b)) else {
                    continue;
                };
                if let Some(&shared) = na.intersection(nb).next() {
                    violations.push(Violation::AntiAffinityColocated {
                        pair: (a, b),
                        node: shared,
                    });
                }
            }
        }

        // --- Objective (1) vs the producer's claim.
        if let Some(rep) = reported {
            if (rep.total() - recomputed.total()).abs() > self.cost_tolerance {
                violations.push(Violation::CostMismatch {
                    expected: recomputed.total(),
                    actual: rep.total(),
                });
            }
        }

        AuditReport {
            violations,
            recomputed,
            reported,
        }
    }
}

/// Resolves a logical endpoint to its assigned node (shape already
/// verified by the caller).
fn endpoint(emb: &Embedding, flow: &Flow, ep: Endpoint) -> NodeId {
    match ep {
        Endpoint::Source => flow.src,
        Endpoint::Destination => flow.dst,
        Endpoint::Slot { layer, slot } => emb.node_of(layer, slot),
    }
}

/// The layer index of every flattened regular-slot position — the
/// coordinate system precedence edges are expressed in. Deliberately
/// re-derived here rather than imported, so the auditor's reading of
/// the order cannot inherit a solver-side flattening bug.
fn position_layers(sfc: &DagSfc) -> Vec<usize> {
    let mut out = Vec::new();
    for l in 0..sfc.depth() {
        out.extend(std::iter::repeat(l).take(sfc.layer(l).width()));
    }
    out
}

/// Checks the embedding's shape against the chain; `Some(detail)` on
/// mismatch.
fn shape_mismatch(sfc: &DagSfc, emb: &Embedding) -> Option<String> {
    if emb.assignments().len() != sfc.depth() {
        return Some(format!(
            "expected {} layers, embedding carries {}",
            sfc.depth(),
            emb.assignments().len()
        ));
    }
    for (l, slots) in emb.assignments().iter().enumerate() {
        let want = sfc.layer(l).slot_count();
        if slots.len() != want {
            return Some(format!(
                "layer {l}: expected {want} slots, embedding carries {}",
                slots.len()
            ));
        }
    }
    let want = dagsfc_core::meta_path_count(sfc);
    if emb.paths().len() != want {
        return Some(format!(
            "expected {want} real-paths, embedding carries {}",
            emb.paths().len()
        ));
    }
    None
}

/// Stitched-embedding scope check (the sharded serving path).
///
/// A cross-shard embedding is only valid if every resource it touches
/// was actually *exposed* by the stitched view it was solved over: VNF
/// slots in the home or destination shard, path links inside those
/// shards, on their shared boundary, or on the precomputed gateway
/// corridor. The numbered-constraint audit cannot see this — a solver
/// bug that leaks onto an unexposed (zero-capacity-in-view) resource
/// still produces an embedding that is feasible against the
/// unpartitioned residual. This walks the embedding against the
/// caller's exposure predicates and returns one human-readable line per
/// out-of-scope resource (empty = in scope everywhere).
pub fn stitched_scope_violations(
    emb: &Embedding,
    node_in_scope: &dyn Fn(NodeId) -> bool,
    link_in_scope: &dyn Fn(LinkId) -> bool,
) -> Vec<String> {
    let mut violations = Vec::new();
    for (layer, slots) in emb.assignments().iter().enumerate() {
        for (slot, &node) in slots.iter().enumerate() {
            if !node_in_scope(node) {
                violations.push(format!(
                    "stitch scope: slot ({layer},{slot}) assigned to unexposed node {node}"
                ));
            }
        }
    }
    for (index, path) in emb.paths().iter().enumerate() {
        for &link in path.links() {
            if !link_in_scope(link) {
                violations.push(format!(
                    "stitch scope: meta-path {index} routed over unexposed link {link}"
                ));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsfc_core::{Layer, VnfCatalog};
    use dagsfc_net::Path;

    fn catalog() -> VnfCatalog {
        VnfCatalog::new(4)
    }

    /// Line v0-v1-v2-v3 (link prices 1, bandwidth 100); f0@v1,
    /// f1/f2/merger@v2, merger@v3.
    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(4);
        for i in 0..3u32 {
            g.add_link(NodeId(i), NodeId(i + 1), 1.0, 100.0).unwrap();
        }
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 2.0, 100.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(1), 3.0, 100.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(2), 4.0, 100.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(4), 1.0, 100.0).unwrap();
        g.deploy_vnf(NodeId(3), VnfTypeId(4), 1.0, 100.0).unwrap();
        g
    }

    fn sfc() -> DagSfc {
        DagSfc::new(
            vec![
                Layer::new(vec![VnfTypeId(0)]),
                Layer::new(vec![VnfTypeId(1), VnfTypeId(2)]),
            ],
            catalog(),
        )
        .unwrap()
    }

    fn path(net: &Network, nodes: &[u32]) -> Path {
        Path::from_nodes(net, nodes.iter().map(|&n| NodeId(n)).collect()).unwrap()
    }

    fn good(g: &Network) -> Embedding {
        Embedding::new(
            &sfc(),
            vec![vec![NodeId(1)], vec![NodeId(2), NodeId(2), NodeId(2)]],
            vec![
                path(g, &[0, 1]),
                path(g, &[1, 2]),
                path(g, &[1, 2]),
                Path::trivial(NodeId(2)),
                Path::trivial(NodeId(2)),
                path(g, &[2, 3]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn clean_embedding_audits_clean_with_exact_cost() {
        let g = net();
        let flow = Flow::unit(NodeId(0), NodeId(3));
        let report = ConstraintAuditor::new().audit(&g, &sfc(), &flow, &good(&g));
        assert!(report.is_clean(), "{}", report.summary());
        // VNF 2+3+4+1 = 10, links e01 + e12 (multicast once) + e23 = 3.
        assert!((report.recomputed.vnf - 10.0).abs() < 1e-12);
        assert!((report.recomputed.link - 3.0).abs() < 1e-12);
        // Matches the production accounting exactly.
        let prod = good(&g).try_cost(&g, &sfc(), &flow).unwrap();
        assert!((report.recomputed.total() - prod.total()).abs() < 1e-12);
    }

    #[test]
    fn inner_layer_links_charged_per_path() {
        // Merger on v3: both inner paths traverse e23 — charged twice.
        let g = net();
        let s = sfc();
        let emb = Embedding::new(
            &s,
            vec![vec![NodeId(1)], vec![NodeId(2), NodeId(2), NodeId(3)]],
            vec![
                path(&g, &[0, 1]),
                path(&g, &[1, 2]),
                path(&g, &[1, 2]),
                path(&g, &[2, 3]),
                path(&g, &[2, 3]),
                Path::trivial(NodeId(3)),
            ],
        )
        .unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(3));
        let report = ConstraintAuditor::new().audit(&g, &s, &flow, &emb);
        assert!(report.is_clean(), "{}", report.summary());
        assert!((report.recomputed.link - 4.0).abs() < 1e-12);
    }

    #[test]
    fn reported_cost_mismatch_is_flagged_as_objective() {
        let g = net();
        let flow = Flow::unit(NodeId(0), NodeId(3));
        let emb = good(&g);
        let true_cost = emb.try_cost(&g, &sfc(), &flow).unwrap();
        let lying = CostBreakdown {
            vnf: true_cost.vnf,
            link: true_cost.link + 1.0, // e.g. a double-charged multicast link
        };
        let report =
            ConstraintAuditor::new().audit_with_reported(&g, &sfc(), &flow, &emb, Some(lying));
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(
            report.violations[0],
            Violation::CostMismatch { .. }
        ));
        assert_eq!(report.violations[0].constraint(), Constraint::Objective);
    }

    #[test]
    fn tolerance_admits_sub_nano_drift() {
        let g = net();
        let flow = Flow::unit(NodeId(0), NodeId(3));
        let emb = good(&g);
        let cost = emb.try_cost(&g, &sfc(), &flow).unwrap();
        let nudged = CostBreakdown {
            vnf: cost.vnf + 1e-13,
            link: cost.link,
        };
        let report =
            ConstraintAuditor::new().audit_with_reported(&g, &sfc(), &flow, &emb, Some(nudged));
        assert!(report.is_clean(), "{}", report.summary());
    }

    /// The delay check only arms when the flow carries a budget, and
    /// recomputes the delay from the substrate's own link-delay table.
    #[test]
    fn delay_budget_is_audited_against_substrate_delays() {
        let mut g = net();
        for l in 0..3u32 {
            g.set_link_delay(LinkId(l), 10.0).unwrap();
        }
        // good(): e01 (L0) + max(e12, e12) (L1, multicast dedup does not
        // apply to delay: both branches ride e12) + final e23 = 30 µs.
        let s = sfc();
        let emb = good(&g);
        let auditor = ConstraintAuditor::new();
        // No budget: not armed, clean.
        let free = Flow::unit(NodeId(0), NodeId(3));
        assert!(auditor.audit(&g, &s, &free, &emb).is_clean());
        // Loose budget: clean.
        let loose = free.with_delay_budget(30.0);
        let report = auditor.audit(&g, &s, &loose, &emb);
        assert!(report.is_clean(), "{}", report.summary());
        // Tight budget: exactly one (D) violation with the right figures.
        let tight = free.with_delay_budget(25.0);
        let report = auditor.audit(&g, &s, &tight, &emb);
        assert_eq!(report.violations.len(), 1, "{}", report.summary());
        match &report.violations[0] {
            Violation::DelayBudgetExceeded {
                delay_us,
                budget_us,
            } => {
                assert!((delay_us - 30.0).abs() < 1e-9);
                assert!((budget_us - 25.0).abs() < 1e-9);
            }
            v => panic!("expected a delay violation, got {v}"),
        }
        assert_eq!(report.violations[0].constraint(), Constraint::Delay);
        assert!(report.violations[0].to_string().starts_with("(D) "));
    }

    #[test]
    fn constraint_labels_render_paper_numbers() {
        assert_eq!(Constraint::C2.to_string(), "(2)");
        assert_eq!(Constraint::C5C6.to_string(), "(5)/(6)");
        assert_eq!(Constraint::C10.to_string(), "(10)");
        let v = Violation::SlotUnhosted {
            layer: 1,
            slot: 0,
            node: NodeId(7),
            kind: VnfTypeId(2),
        };
        assert!(v.to_string().starts_with("(4) "));
    }
}
