//! Mutation-style tests: corrupt a known-good embedding one way at a
//! time and assert the auditor reports exactly the violation the
//! corresponding paper constraint prescribes — proof that every check
//! can actually fire.

use dagsfc_audit::{Constraint, ConstraintAuditor, Violation};
use dagsfc_core::{
    CostBreakdown, DagSfc, Embedding, Flow, Layer, PlacementRules, PrecedenceOrder, VnfCatalog,
};
use dagsfc_net::{Network, NodeId, Path, VnfTypeId};

fn catalog() -> VnfCatalog {
    VnfCatalog::new(4)
}

/// Line v0-v1-v2-v3 with link prices 1; f0@v1 (price 2, cap 1.5),
/// f1/f2/merger@v2, merger@v3; link bandwidth 2.0.
fn net() -> Network {
    let mut g = Network::new();
    g.add_nodes(4);
    for i in 0..3u32 {
        g.add_link(NodeId(i), NodeId(i + 1), 1.0, 2.0).unwrap();
    }
    g.deploy_vnf(NodeId(1), VnfTypeId(0), 2.0, 1.5).unwrap();
    g.deploy_vnf(NodeId(2), VnfTypeId(1), 3.0, 10.0).unwrap();
    g.deploy_vnf(NodeId(2), VnfTypeId(2), 4.0, 10.0).unwrap();
    g.deploy_vnf(NodeId(2), VnfTypeId(4), 1.0, 10.0).unwrap();
    g.deploy_vnf(NodeId(3), VnfTypeId(4), 1.0, 10.0).unwrap();
    g
}

fn sfc() -> DagSfc {
    DagSfc::new(
        vec![
            Layer::new(vec![VnfTypeId(0)]),
            Layer::new(vec![VnfTypeId(1), VnfTypeId(2)]),
        ],
        catalog(),
    )
    .unwrap()
}

fn path(net: &Network, nodes: &[u32]) -> Path {
    Path::from_nodes(net, nodes.iter().map(|&n| NodeId(n)).collect()).unwrap()
}

/// The known-good embedding: src=v0, f0@v1, f1/f2/merger@v2, dst=v3;
/// the two inter-layer paths of layer 1 share link v1-v2 (multicast).
fn good_paths(g: &Network) -> Vec<Path> {
    vec![
        path(g, &[0, 1]),
        path(g, &[1, 2]),
        path(g, &[1, 2]),
        Path::trivial(NodeId(2)),
        Path::trivial(NodeId(2)),
        path(g, &[2, 3]),
    ]
}

fn good_assignments() -> Vec<Vec<NodeId>> {
    vec![vec![NodeId(1)], vec![NodeId(2), NodeId(2), NodeId(2)]]
}

fn good(g: &Network) -> Embedding {
    Embedding::new(&sfc(), good_assignments(), good_paths(g)).unwrap()
}

fn flow() -> Flow {
    Flow::unit(NodeId(0), NodeId(3))
}

fn audit(g: &Network, emb: &Embedding, f: &Flow) -> Vec<Violation> {
    ConstraintAuditor::new().audit(g, &sfc(), f, emb).violations
}

#[test]
fn baseline_is_clean() {
    let g = net();
    assert!(audit(&g, &good(&g), &flow()).is_empty());
}

#[test]
fn dropped_meta_path_hop_fires_5_6() {
    // Mutation: the src → f0 real-path loses its hop and collapses to a
    // trivial path at v1 — its source no longer matches the flow source.
    let g = net();
    let mut paths = good_paths(&g);
    paths[0] = Path::trivial(NodeId(1));
    let emb = Embedding::new(&sfc(), good_assignments(), paths).unwrap();
    let vs = audit(&g, &emb, &flow());
    assert_eq!(vs.len(), 1, "{vs:?}");
    match &vs[0] {
        Violation::PathEndpointMismatch {
            index,
            expected,
            actual,
        } => {
            assert_eq!(*index, 0);
            assert_eq!(*expected, (NodeId(0), NodeId(1)));
            assert_eq!(*actual, (NodeId(1), NodeId(1)));
        }
        other => panic!("expected (5)/(6) endpoint mismatch, got {other}"),
    }
    assert_eq!(vs[0].constraint(), Constraint::C5C6);
}

#[test]
fn discontiguous_path_fires_5_6() {
    // Mutation: splice a real-path whose recorded link does not join its
    // adjacent nodes. `Path` validates on construction, so smuggle the
    // corruption in the same way a hostile wire client would: via serde.
    let g = net();
    // e0 joins v0-v1, not v0-v2.
    let broken: Path = serde_json::from_str(r#"{"nodes": [0, 2], "links": [0]}"#)
        .expect("Path deserializes unchecked");
    let mut paths = good_paths(&g);
    // Replace src → f0 (v0 → v1) with the corrupt one; also mismatched
    // endpoint, so expect both (5)/(6) findings on index 0.
    paths[0] = broken;
    let emb = Embedding::new(&sfc(), good_assignments(), paths).unwrap();
    let vs = audit(&g, &emb, &flow());
    assert!(
        vs.iter().any(|v| matches!(
            v,
            Violation::PathDiscontiguous {
                index: 0,
                hop: 0,
                ..
            }
        )),
        "{vs:?}"
    );
    assert!(vs.iter().all(|v| v.constraint() == Constraint::C5C6));
}

#[test]
fn overbooked_link_fires_3() {
    // Mutation: push the flow rate past the 2.0 link bandwidth. The two
    // inner-layer paths are trivial here, so every link carries exactly
    // one charge; rate 2.5 overbooks all three used links.
    let g = net();
    let f = Flow {
        src: NodeId(0),
        dst: NodeId(3),
        rate: 2.5,
        size: 1.0,
        delay_budget_us: None,
    };
    let vs = audit(&g, &good(&g), &f);
    let overbooked: Vec<_> = vs
        .iter()
        .filter(|v| matches!(v, Violation::LinkBandwidthExceeded { .. }))
        .collect();
    assert_eq!(overbooked.len(), 3, "{vs:?}");
    for v in &overbooked {
        assert_eq!(v.constraint(), Constraint::C3);
        if let Violation::LinkBandwidthExceeded { load, capacity, .. } = v {
            assert!((*load - 2.5).abs() < 1e-12);
            assert!((*capacity - 2.0).abs() < 1e-12);
        }
    }
    // The VNF term also overloads f0 (cap 1.5) — but no other class.
    assert!(vs.iter().all(|v| matches!(
        v,
        Violation::LinkBandwidthExceeded { .. } | Violation::VnfCapacityExceeded { .. }
    )));
}

#[test]
fn multicast_sharing_loads_once_where_unicast_would_overbook() {
    // Rate 1.5 on bandwidth 2.0: the two inter-layer paths share link
    // v1-v2. Charged per-path that would be 3.0 > 2.0 and constraint (3)
    // would fire; the paper's eq. (9) multicast rule charges the layer
    // once, so the audit must be clean.
    let g = net();
    let f = Flow {
        src: NodeId(0),
        dst: NodeId(3),
        rate: 1.5,
        size: 1.0,
        delay_budget_us: None,
    };
    let vs = audit(&g, &good(&g), &f);
    assert!(vs.is_empty(), "{vs:?}");
}

#[test]
fn double_charged_multicast_link_fires_cost_check() {
    // Mutation: a producer that charges the shared inter-layer link per
    // path (the classic eq. (9) accounting bug) reports one extra unit
    // of link cost. The auditor's independent recomputation catches the
    // claim.
    let g = net();
    let f = flow();
    let emb = good(&g);
    let honest = emb.try_cost(&g, &sfc(), &f).unwrap();
    let double_charged = CostBreakdown {
        vnf: honest.vnf,
        link: honest.link + g.link(g.link_between(NodeId(1), NodeId(2)).unwrap()).price * f.size,
    };
    let report = ConstraintAuditor::new().audit_outcome(
        &g,
        &sfc(),
        &f,
        &dagsfc_core::SolveOutcome {
            embedding: emb,
            cost: double_charged,
            stats: Default::default(),
        },
    );
    assert_eq!(report.violations.len(), 1, "{}", report.summary());
    assert!(matches!(
        report.violations[0],
        Violation::CostMismatch { .. }
    ));
    assert_eq!(report.violations[0].constraint(), Constraint::Objective);
}

#[test]
fn vnf_past_capacity_fires_2() {
    // Mutation: sequential chain f1 → f1 on one instance doubles its
    // α-load; rate 6 → load 12 > capability 10.
    let g = net();
    let s = DagSfc::sequential(&[VnfTypeId(1), VnfTypeId(1)], catalog()).unwrap();
    let emb = Embedding::new(
        &s,
        vec![vec![NodeId(2)], vec![NodeId(2)]],
        vec![
            path(&g, &[0, 1, 2]),
            Path::trivial(NodeId(2)),
            path(&g, &[2, 3]),
        ],
    )
    .unwrap();
    let f = Flow {
        src: NodeId(0),
        dst: NodeId(3),
        rate: 6.0,
        size: 0.0, // zero size: isolate the load checks from cost terms
        delay_budget_us: None,
    };
    let vs = ConstraintAuditor::new().audit(&g, &s, &f, &emb).violations;
    let vnf: Vec<_> = vs
        .iter()
        .filter(|v| matches!(v, Violation::VnfCapacityExceeded { .. }))
        .collect();
    assert_eq!(vnf.len(), 1, "{vs:?}");
    if let Violation::VnfCapacityExceeded {
        node,
        kind,
        load,
        capacity,
    } = vnf[0]
    {
        assert_eq!(*node, NodeId(2));
        assert_eq!(*kind, VnfTypeId(1));
        assert!((*load - 12.0).abs() < 1e-12, "α=2 × rate 6");
        assert!((*capacity - 10.0).abs() < 1e-12);
    }
    assert_eq!(vnf[0].constraint(), Constraint::C2);
}

#[test]
fn unhosted_slot_fires_4() {
    // Mutation: f0 assigned to v0, which deploys nothing.
    let g = net();
    let mut assignments = good_assignments();
    assignments[0][0] = NodeId(0);
    let mut paths = good_paths(&g);
    paths[0] = Path::trivial(NodeId(0));
    paths[1] = path(&g, &[0, 1, 2]);
    paths[2] = path(&g, &[0, 1, 2]);
    let emb = Embedding::new(&sfc(), assignments, paths).unwrap();
    let vs = audit(&g, &emb, &flow());
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert!(matches!(
        vs[0],
        Violation::SlotUnhosted {
            layer: 0,
            slot: 0,
            node: NodeId(0),
            kind: VnfTypeId(0),
        }
    ));
    assert_eq!(vs[0].constraint(), Constraint::C4);
}

#[test]
fn wire_supplied_shape_mismatch_is_caught() {
    // An `Embedding` arriving over the wire can carry any shape; the
    // auditor must refuse it instead of indexing out of bounds.
    let g = net();
    let emb: Embedding = serde_json::from_str(r#"{"assignments": [[1]], "paths": []}"#)
        .expect("Embedding deserializes unchecked");
    let vs = audit(&g, &emb, &flow());
    assert_eq!(vs.len(), 1, "{vs:?}");
    assert!(matches!(vs[0], Violation::ShapeMismatch { .. }));
}

#[test]
fn violations_serialize_for_machine_reports() {
    let v = Violation::LinkBandwidthExceeded {
        link: dagsfc_net::LinkId(3),
        load: 4.0,
        capacity: 2.0,
    };
    let json = serde_json::to_string(&v).unwrap();
    assert!(json.contains("LinkBandwidthExceeded"), "{json}");
}

/// The good() embedding against a chain carrying extra metadata —
/// rules or an order — audited against that chain. Rate 0.5 keeps the
/// rule mutations' detour paths clear of the 2.0 link bandwidth, so
/// only the rule checks can fire.
fn audit_ruled(g: &Network, s: &DagSfc, emb: &Embedding) -> Vec<Violation> {
    let f = Flow {
        rate: 0.5,
        ..flow()
    };
    ConstraintAuditor::new().audit(g, s, &f, emb).violations
}

#[test]
fn dishonored_precedence_edge_fires_o() {
    // Positions: 0 (f0, layer 0) | 1, 2 (f1/f2, layer 1). The honored
    // order (0→1, 0→2) audits clean; a same-layer edge (1→2) and a
    // backward edge (2→0) are corruptions of the declared partial order
    // and must each fire exactly one (O) violation.
    let g = net();
    let emb = good(&g);
    let honored = sfc().with_order(PrecedenceOrder {
        edges: vec![(0, 1), (0, 2)],
    });
    assert!(audit_ruled(&g, &honored, &emb).is_empty());

    for bad_edge in [(1u32, 2u32), (2, 0)] {
        let s = sfc().with_order(PrecedenceOrder {
            edges: vec![(0, 1), bad_edge],
        });
        let vs = audit_ruled(&g, &s, &emb);
        assert_eq!(vs.len(), 1, "{vs:?}");
        match &vs[0] {
            Violation::PrecedenceViolated { edge, detail } => {
                assert_eq!(*edge, bad_edge);
                assert!(detail.contains("does not precede"), "{detail}");
            }
            other => panic!("expected an (O) violation, got {other}"),
        }
        assert_eq!(vs[0].constraint(), Constraint::Order);
        assert!(vs[0].to_string().starts_with("(O) "));
    }

    // An edge naming a position the chain does not have is also (O).
    let s = sfc().with_order(PrecedenceOrder {
        edges: vec![(0, 9)],
    });
    let vs = audit_ruled(&g, &s, &emb);
    assert_eq!(vs.len(), 1, "{vs:?}");
    match &vs[0] {
        Violation::PrecedenceViolated { edge, detail } => {
            assert_eq!(*edge, (0, 9));
            assert!(detail.contains("outside the chain"), "{detail}");
        }
        other => panic!("expected an (O) violation, got {other}"),
    }
}

#[test]
fn split_affinity_pair_fires_a() {
    // good() hosts f1 and f2 together on v2, so affinity (f1, f2)
    // audits clean. Mutation: also deploy f2 on v3 and move its slot
    // there (re-routing the touched paths) — the pair splits across
    // {v2, v3} and exactly one (A) violation fires.
    let mut g = net();
    g.deploy_vnf(NodeId(3), VnfTypeId(2), 1.0, 10.0).unwrap();
    let s = sfc().with_rules(PlacementRules {
        affinity: vec![(VnfTypeId(1), VnfTypeId(2))],
        anti_affinity: vec![],
    });
    assert!(audit_ruled(&g, &s, &good(&g)).is_empty());

    let mut assignments = good_assignments();
    assignments[1][1] = NodeId(3); // f2 slot
    let mut paths = good_paths(&g);
    paths[2] = path(&g, &[1, 2, 3]); // f0 → f2 inter-layer
    paths[4] = path(&g, &[3, 2]); // f2 → merger inner-layer
    let split = Embedding::new(&s, assignments, paths).unwrap();
    let vs = audit_ruled(&g, &s, &split);
    assert_eq!(vs.len(), 1, "{vs:?}");
    match &vs[0] {
        Violation::AffinitySplit { pair, nodes } => {
            assert_eq!(*pair, (VnfTypeId(1), VnfTypeId(2)));
            assert_eq!(nodes.as_slice(), &[NodeId(2), NodeId(3)]);
        }
        other => panic!("expected an (A) violation, got {other}"),
    }
    assert_eq!(vs[0].constraint(), Constraint::Affinity);
    assert!(vs[0].to_string().starts_with("(A) "));
}

#[test]
fn colocated_anti_affinity_pair_fires_aa() {
    // Same mutation geometry, inverted rule: with anti-affinity
    // (f1, f2) the *split* embedding is the clean one, and good() —
    // which co-locates both kinds on v2 — must fire exactly one (AA)
    // violation naming the shared node.
    let mut g = net();
    g.deploy_vnf(NodeId(3), VnfTypeId(2), 1.0, 10.0).unwrap();
    let s = sfc().with_rules(PlacementRules {
        affinity: vec![],
        anti_affinity: vec![(VnfTypeId(1), VnfTypeId(2))],
    });
    let mut assignments = good_assignments();
    assignments[1][1] = NodeId(3);
    let mut paths = good_paths(&g);
    paths[2] = path(&g, &[1, 2, 3]);
    paths[4] = path(&g, &[3, 2]);
    let split = Embedding::new(&s, assignments, paths).unwrap();
    assert!(audit_ruled(&g, &s, &split).is_empty());

    let vs = audit_ruled(&g, &s, &good(&g));
    assert_eq!(vs.len(), 1, "{vs:?}");
    match &vs[0] {
        Violation::AntiAffinityColocated { pair, node } => {
            assert_eq!(*pair, (VnfTypeId(1), VnfTypeId(2)));
            assert_eq!(*node, NodeId(2));
        }
        other => panic!("expected an (AA) violation, got {other}"),
    }
    assert_eq!(vs[0].constraint(), Constraint::AntiAffinity);
    assert!(vs[0].to_string().starts_with("(AA) "));
}

#[test]
fn blown_delay_budget_fires_d() {
    // Mutation: the substrate's link delays push the (otherwise clean)
    // embedding past the flow's deadline — the delay check must fire,
    // and relaxing the budget must disarm it.
    let mut g = net();
    for l in 0..3u32 {
        g.set_link_delay(dagsfc_net::LinkId(l), 10.0).unwrap();
    }
    // good(): e01 + e12 (slowest branch) + e23 = 30 µs end to end.
    let f = flow().with_delay_budget(29.0);
    let vs = audit(&g, &good(&g), &f);
    assert_eq!(vs.len(), 1, "{vs:?}");
    match &vs[0] {
        Violation::DelayBudgetExceeded {
            delay_us,
            budget_us,
        } => {
            assert!((delay_us - 30.0).abs() < 1e-9);
            assert!((budget_us - 29.0).abs() < 1e-9);
        }
        other => panic!("expected a (D) violation, got {other}"),
    }
    assert_eq!(vs[0].constraint(), Constraint::Delay);
    // Same embedding, loose budget: clean again.
    assert!(audit(&g, &good(&g), &flow().with_delay_budget(30.0)).is_empty());
}
