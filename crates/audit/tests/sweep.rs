//! Solver sweep: every solver, over a set of standard generated
//! topologies and chain shapes, must produce embeddings the
//! solver-independent auditor certifies clean — with the recomputed
//! objective matching the solver-reported cost to within 1e-9.

use dagsfc_audit::ConstraintAuditor;
use dagsfc_core::solvers::{by_name, SolveCtx};
use dagsfc_core::{DagSfc, Flow, Layer, VnfCatalog};
use dagsfc_net::{generator, NetGenConfig, Network, NodeId, VnfTypeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

const KINDS: usize = 6;
const KINDS_U16: u16 = KINDS as u16;

fn network(nodes: usize, seed: u64) -> Network {
    let cfg = NetGenConfig {
        nodes,
        avg_degree: 5.0,
        // The generator's kind count includes the merger kind (id KINDS).
        vnf_kinds: KINDS + 1,
        deploy_ratio: 0.6,
        vnf_price_fluctuation: 0.3,
        ensure_full_coverage: true,
        ..NetGenConfig::default()
    };
    generator::generate(&cfg, &mut StdRng::seed_from_u64(seed)).expect("valid generator config")
}

/// The standard chain shapes of the sweep: sequential, one parallel
/// layer, and the paper's hybrid sandwich.
fn chains() -> Vec<DagSfc> {
    let c = VnfCatalog::new(KINDS_U16);
    vec![
        DagSfc::sequential(&[VnfTypeId(0), VnfTypeId(1), VnfTypeId(2)], c).unwrap(),
        DagSfc::new(
            vec![
                Layer::new(vec![VnfTypeId(0)]),
                Layer::new(vec![VnfTypeId(1), VnfTypeId(2), VnfTypeId(3)]),
            ],
            c,
        )
        .unwrap(),
        DagSfc::new(
            vec![
                Layer::new(vec![VnfTypeId(4)]),
                Layer::new(vec![VnfTypeId(0), VnfTypeId(5)]),
                Layer::new(vec![VnfTypeId(2)]),
            ],
            c,
        )
        .unwrap(),
    ]
}

#[test]
fn every_solver_survives_the_auditor_on_standard_topologies() {
    let auditor = ConstraintAuditor::new();
    let solvers = ["bbe", "mbbe", "mbbe-st", "minv", "ranv", "grasp"];
    let mut audited = 0usize;
    for (nodes, seed) in [(24usize, 11u64), (40, 12), (60, 13)] {
        let net = network(nodes, seed);
        // Audit through solve_in's own gate too: force it on regardless
        // of build profile.
        let ctx = SolveCtx::new(&net).with_audit(true);
        let flow = Flow {
            src: NodeId(0),
            dst: NodeId((nodes - 1) as u32),
            rate: 1.0,
            size: 1.0,
            delay_budget_us: None,
        };
        for sfc in chains() {
            for name in solvers {
                let solver = by_name(name, seed).expect("known solver name");
                let out = match solver.solve_in(&ctx, &sfc, &flow) {
                    Ok(out) => out,
                    // A saturated/unlucky instance may genuinely be
                    // infeasible for a baseline; that is not an audit
                    // failure.
                    Err(e) => {
                        assert!(
                            !matches!(e, dagsfc_core::SolveError::AuditFailed { .. }),
                            "{name} failed its own audit gate: {e}"
                        );
                        continue;
                    }
                };
                let report = auditor.audit_outcome(&net, &sfc, &flow, &out);
                assert!(
                    report.is_clean(),
                    "{name} on {nodes}-node net (seed {seed}): {}",
                    report.summary()
                );
                assert!(
                    (report.recomputed.total() - out.cost.total()).abs() <= 1e-9,
                    "{name}: recomputed {} vs reported {}",
                    report.recomputed.total(),
                    out.cost.total()
                );
                audited += 1;
            }
        }
    }
    assert!(audited >= 30, "sweep too thin: only {audited} audits ran");
}

#[test]
fn exact_solver_survives_the_auditor_on_small_instances() {
    // The exact branch-and-bound is exponential; audit it on small nets.
    let auditor = ConstraintAuditor::new();
    let net = network(10, 21);
    let ctx = SolveCtx::new(&net).with_audit(true);
    let flow = Flow::unit(NodeId(0), NodeId(9));
    let c = VnfCatalog::new(KINDS_U16);
    let sfc = DagSfc::new(
        vec![
            Layer::new(vec![VnfTypeId(0)]),
            Layer::new(vec![VnfTypeId(1), VnfTypeId(2)]),
        ],
        c,
    )
    .unwrap();
    let solver = by_name("exact", 0).expect("known solver name");
    if let Ok(out) = solver.solve_in(&ctx, &sfc, &flow) {
        let report = auditor.audit_outcome(&net, &sfc, &flow, &out);
        assert!(report.is_clean(), "{}", report.summary());
    }
}
