//! End-to-end chaos equivalence: a scenario replayed through a live
//! daemon — faults, dropped releases, slow clients, disconnect probes
//! and all — must match the in-process chaos runner bit for bit, at any
//! worker-pool size, and must never serve an uncertified embedding.

use dagsfc_chaos::{replay_chaos, run_chaos, ChaosIntensity, ChaosScenario};
use dagsfc_serve::{serve, Client, ServeConfig};
use dagsfc_sim::{Algo, LifecycleConfig, SimConfig};

fn scenario() -> ChaosScenario {
    ChaosScenario::generate(
        &LifecycleConfig {
            base: SimConfig {
                network_size: 30,
                sfc_size: 4,
                vnf_capacity: 6.0,
                link_capacity: 6.0,
                seed: 0xBEEF,
                ..SimConfig::default()
            },
            arrivals: 40,
            mean_holding: 6.0,
            algo: Algo::Mbbe,
        },
        0xFA11,
        &ChaosIntensity::default(),
    )
}

#[test]
fn daemon_chaos_replay_matches_runner_for_any_worker_count() {
    let s = scenario();
    let net = s.network();
    let truth = run_chaos(&net, &s);
    assert!(truth.accepted > 0, "scenario must accept something");
    assert!(truth.rejected > 0, "scenario must reject something");
    assert!(truth.faults_applied > 0, "the plan must fire");
    assert!(truth.dropped_releases > 0, "misbehavior must occur");
    assert_eq!(truth.audits_failed, 0);

    for workers in [1usize, 4] {
        let handle = serve::spawn(
            net.clone(),
            ServeConfig {
                workers,
                ..ServeConfig::default()
            },
            "127.0.0.1:0",
        )
        .expect("bind");
        let addr = handle.addr();
        let mut client = Client::connect(addr).expect("connect");
        let report = replay_chaos(&mut client, addr, &s).expect("chaos replay");
        drop(client);
        let stats = handle.join();

        assert_eq!(
            report.per_arrival, truth.per_arrival,
            "per-arrival fates diverged at workers={workers}"
        );
        assert_eq!(
            report.departure_order, truth.departure_order,
            "departure order diverged at workers={workers}"
        );
        assert_eq!(report.total_cost(), truth.total_cost());
        assert_eq!(report.dropped_releases, truth.dropped_releases);
        assert_eq!(report.reclaimed as usize, truth.orphans_reclaimed);
        assert_eq!(stats.faults_applied, truth.faults_applied);
        assert_eq!(stats.orphans_reclaimed, truth.orphans_reclaimed as u64);
        // Every accepted embedding was audited; none failed.
        assert_eq!(stats.audits_run, stats.accepted + stats.audits_failed);
        assert_eq!(stats.audits_failed, 0, "uncertified embedding served");
        // The ledger balances: drain + reclaim leaves nothing behind.
        assert_eq!(stats.active_leases, 0);
        assert!(
            stats.outstanding_load.abs() < 1e-9,
            "leaked {} at workers={workers}",
            stats.outstanding_load
        );
    }
}

#[test]
fn two_daemon_runs_print_identical_final_state() {
    // The CI chaos-smoke determinism check, in miniature: run the same
    // scenario twice at different worker counts and require the
    // deterministic slice of the final stats to be identical.
    let s = scenario();
    let net = s.network();
    let mut finals = Vec::new();
    for workers in [1usize, 3] {
        let handle = serve::spawn(
            net.clone(),
            ServeConfig {
                workers,
                ..ServeConfig::default()
            },
            "127.0.0.1:0",
        )
        .expect("bind");
        let addr = handle.addr();
        let mut client = Client::connect(addr).expect("connect");
        let report = replay_chaos(&mut client, addr, &s).expect("chaos replay");
        drop(client);
        let stats = handle.join();
        finals.push((
            stats.accepted,
            stats.rejected,
            stats.released,
            stats.epoch,
            stats.faults_applied,
            stats.orphans_reclaimed,
            stats.outstanding_load.to_bits(),
            report.total_cost().to_bits(),
        ));
    }
    assert_eq!(finals[0], finals[1], "final state depends on worker count");
}
