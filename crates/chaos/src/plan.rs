//! Seeded fault plans: *what* goes wrong and *when*, frozen up front so
//! a chaos run is a pure function of the scenario file.
//!
//! A [`FaultPlan`] is generated once from a seed against a concrete
//! network and arrival schedule, then serialized into the scenario.
//! Replaying it — in-process or through a daemon — involves no further
//! randomness: every failure, recovery, capacity wobble, and client
//! misbehavior is already decided.

use dagsfc_net::{FaultEvent, LinkId, Network, NodeId};
use dagsfc_sim::lifecycle::to_fixed;
use dagsfc_sim::ReplayTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One fault event pinned to the lifecycle's fixed-point clock.
///
/// At each arrival boundary, every scheduled fault with `at ≤ now` fires
/// after due departures and before the arrival is offered; ties break on
/// ascending `seq` (the generation order), so the event sequence is
/// total-ordered and identical in every run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// Absolute fire time in fixed-point µ-intervals (see `to_fixed`).
    pub at: u64,
    /// Tie-breaker: generation order.
    pub seq: u32,
    /// The substrate event itself.
    pub event: FaultEvent,
}

/// Knobs for [`FaultPlan::generate`]. The defaults produce a lively but
/// survivable scenario: every failure recovers before the trace ends.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosIntensity {
    /// Link down/up pairs to schedule.
    pub link_failures: usize,
    /// Node down/up pairs to schedule.
    pub node_failures: usize,
    /// Link-capacity churn events (factor drawn from `churn_range`).
    pub churn_events: usize,
    /// Inclusive bounds for churn factors.
    pub churn_min: f64,
    /// Upper bound for churn factors.
    pub churn_max: f64,
    /// Every n-th accepted arrival "forgets" to release on departure
    /// (orphaned lease, swept by reclaim at end of run). `0` disables.
    pub drop_release_every: usize,
    /// Every n-th arrival is submitted by a "slow client" in tiny
    /// chunks (wire-level misbehavior; no effect in-process). `0`
    /// disables.
    pub slow_request_every: usize,
    /// Connections that open, send half a request, and vanish —
    /// scheduled before these arrival indices. Daemon-side only.
    pub disconnect_probes: usize,
}

impl Default for ChaosIntensity {
    fn default() -> Self {
        ChaosIntensity {
            link_failures: 4,
            node_failures: 2,
            churn_events: 6,
            churn_min: 0.5,
            churn_max: 1.5,
            drop_release_every: 5,
            slow_request_every: 7,
            disconnect_probes: 2,
        }
    }
}

/// The frozen misfortune schedule of one chaos run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed the plan was drawn with (provenance).
    pub seed: u64,
    /// Substrate events, sorted by `(at, seq)`.
    pub faults: Vec<ScheduledFault>,
    /// Arrival indices whose departure release is deliberately dropped.
    pub drop_release: Vec<usize>,
    /// Arrival indices submitted via chunked "slow client" writes.
    pub slow_request: Vec<usize>,
    /// Arrival indices before which a half-request disconnect probe
    /// fires.
    pub disconnect_before: Vec<usize>,
}

impl FaultPlan {
    /// Draws a plan for `trace`'s schedule against `net`.
    ///
    /// Every `Down` event is paired with a later `Up` on the same
    /// resource, and recoveries land strictly inside the trace, so the
    /// substrate ends the run fully healed. Deterministic: same
    /// `(net, trace, seed, intensity)` → same plan, bit for bit.
    pub fn generate(
        net: &Network,
        trace: &ReplayTrace,
        seed: u64,
        intensity: &ChaosIntensity,
    ) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A0_5F17);
        let arrivals = trace.arrivals.max(2);
        let mut faults = Vec::new();
        let mut seq = 0u32;
        let mut push = |faults: &mut Vec<ScheduledFault>, at: u64, event: FaultEvent| {
            faults.push(ScheduledFault { at, seq, event });
            seq += 1;
        };

        // Down/up windows: fail in the first two thirds, recover before
        // the end, so late arrivals exercise the healed substrate too.
        let window = |rng: &mut StdRng| {
            let down = rng.gen_range(0..arrivals * 2 / 3);
            let up = rng.gen_range(down + 1..arrivals);
            (to_fixed(down as f64), to_fixed(up as f64))
        };

        if net.link_count() > 0 {
            for _ in 0..intensity.link_failures {
                let link = LinkId(rng.gen_range(0..net.link_count()) as u32);
                let (down, up) = window(&mut rng);
                push(&mut faults, down, FaultEvent::LinkDown { link });
                push(&mut faults, up, FaultEvent::LinkUp { link });
            }
        }
        if net.node_count() > 0 {
            for _ in 0..intensity.node_failures {
                let node = NodeId(rng.gen_range(0..net.node_count()) as u32);
                let (down, up) = window(&mut rng);
                push(&mut faults, down, FaultEvent::NodeDown { node });
                push(&mut faults, up, FaultEvent::NodeUp { node });
            }
        }
        if net.link_count() > 0 {
            for _ in 0..intensity.churn_events {
                let link = LinkId(rng.gen_range(0..net.link_count()) as u32);
                let at = to_fixed(rng.gen_range(0..arrivals) as f64);
                let factor = rng.gen_range(intensity.churn_min..intensity.churn_max);
                push(&mut faults, at, FaultEvent::LinkCapacity { link, factor });
                // Heal the wobble before the trace ends: restore the
                // base capacity so the run finishes on a clean slate.
                let heal = to_fixed(rng.gen_range(1..arrivals.max(2)) as f64).max(at);
                push(
                    &mut faults,
                    heal,
                    FaultEvent::LinkCapacity { link, factor: 1.0 },
                );
            }
        }
        faults.sort_by_key(|f| (f.at, f.seq));

        let every = |n: usize| -> Vec<usize> {
            if n == 0 {
                Vec::new()
            } else {
                (0..trace.arrivals).filter(|i| i % n == n - 1).collect()
            }
        };
        let drop_release = every(intensity.drop_release_every);
        let slow_request = every(intensity.slow_request_every);
        let disconnect_before = (0..intensity.disconnect_probes)
            .map(|_| rng.gen_range(0..trace.arrivals.max(1)))
            .collect();

        FaultPlan {
            seed,
            faults,
            drop_release,
            slow_request,
            disconnect_before,
        }
    }

    /// Whether arrival `i`'s departure release is dropped.
    pub fn drops_release(&self, arrival: usize) -> bool {
        self.drop_release.contains(&arrival)
    }

    /// Whether arrival `i` is submitted by the slow client.
    pub fn is_slow(&self, arrival: usize) -> bool {
        self.slow_request.contains(&arrival)
    }

    /// How many disconnect probes fire before arrival `i`.
    pub fn probes_before(&self, arrival: usize) -> usize {
        self.disconnect_before
            .iter()
            .filter(|&&p| p == arrival)
            .count()
    }

    /// Events due at or before `now` starting from cursor position
    /// `next` (the caller advances the cursor).
    pub fn due(&self, next: usize, now: u64) -> &[ScheduledFault] {
        let mut end = next;
        while end < self.faults.len() && self.faults[end].at <= now {
            end += 1;
        }
        &self.faults[next..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsfc_sim::runner::instance_network;
    use dagsfc_sim::{export_trace, Algo, LifecycleConfig, SimConfig};

    fn trace() -> (Network, ReplayTrace) {
        let cfg = LifecycleConfig {
            base: SimConfig {
                network_size: 20,
                seed: 0xC0C0A,
                ..SimConfig::default()
            },
            arrivals: 30,
            mean_holding: 6.0,
            algo: Algo::Mbbe,
        };
        (instance_network(&cfg.base), export_trace(&cfg))
    }

    #[test]
    fn generation_is_deterministic() {
        let (net, trace) = trace();
        let a = FaultPlan::generate(&net, &trace, 7, &ChaosIntensity::default());
        let b = FaultPlan::generate(&net, &trace, 7, &ChaosIntensity::default());
        assert_eq!(a, b);
        let c = FaultPlan::generate(&net, &trace, 8, &ChaosIntensity::default());
        assert_ne!(a, c, "different seeds draw different plans");
    }

    #[test]
    fn every_down_recovers_inside_the_trace() {
        let (net, trace) = trace();
        let plan = FaultPlan::generate(&net, &trace, 42, &ChaosIntensity::default());
        let end = to_fixed(trace.arrivals as f64);
        // Replay the down/up toggles; everything must be up at the end.
        let mut link_down = vec![false; net.link_count()];
        let mut node_down = vec![false; net.node_count()];
        for f in &plan.faults {
            assert!(f.at < end, "fault fires after the last arrival");
            match f.event {
                FaultEvent::LinkDown { link } => link_down[link.index()] = true,
                FaultEvent::LinkUp { link } => link_down[link.index()] = false,
                FaultEvent::NodeDown { node } => node_down[node.index()] = true,
                FaultEvent::NodeUp { node } => node_down[node.index()] = false,
                _ => {}
            }
        }
        assert!(link_down.iter().all(|d| !d), "a link never recovered");
        assert!(node_down.iter().all(|d| !d), "a node never recovered");
    }

    #[test]
    fn schedule_is_sorted_and_due_cursor_walks_it() {
        let (net, trace) = trace();
        let plan = FaultPlan::generate(&net, &trace, 3, &ChaosIntensity::default());
        assert!(plan
            .faults
            .windows(2)
            .all(|w| (w[0].at, w[0].seq) <= (w[1].at, w[1].seq)));
        // Walking the cursor over arrival boundaries visits every event
        // exactly once.
        let mut cursor = 0usize;
        let mut seen = 0usize;
        for arrival in 0..trace.arrivals {
            let due = plan.due(cursor, to_fixed(arrival as f64));
            seen += due.len();
            cursor += due.len();
        }
        // Everything fires strictly before `arrivals`, so the final
        // boundary flushes the rest.
        let rest = plan.due(cursor, u64::MAX);
        assert_eq!(seen + rest.len(), plan.faults.len());
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let (net, trace) = trace();
        let plan = FaultPlan::generate(&net, &trace, 11, &ChaosIntensity::default());
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
