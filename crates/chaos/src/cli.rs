//! `dagsfc chaos`: freeze and run deterministic fault-injection
//! scenarios.
//!
//! ```text
//! dagsfc chaos gen --out FILE [--arrivals 50] [--mean-holding 8] [--algo mbbe]
//!                  [--seed S] [--chaos-seed C] [--nodes N --capacity C ...]
//!                  [--link-failures 4] [--node-failures 2] [--churn 6]
//!                  [--drop-every 5] [--slow-every 7] [--probes 2]
//! dagsfc chaos run --scenario FILE [--workers 2] [--queue 64] [--verify]
//! ```
//!
//! `run` spawns an in-process daemon, replays the scenario through a
//! real socket, and prints a one-line JSON summary as its **last**
//! stdout line. The summary contains only deterministic fields, so two
//! runs of the same scenario — at any worker counts — must print
//! byte-identical summaries; CI diffs them.

use crate::plan::ChaosIntensity;
use crate::replay::replay_chaos;
use crate::runner::run_chaos;
use crate::scenario::{load_scenario, save_scenario, ChaosScenario};
use dagsfc_serve::{serve, Client, ServeConfig};
use dagsfc_sim::{Algo, LifecycleConfig, SimConfig};
use std::collections::HashMap;
use std::path::PathBuf;

/// Minimal `--key value` flag parser (mirrors the serve CLI's).
struct Flags {
    map: HashMap<String, String>,
    positional: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut map = HashMap::new();
        let mut positional = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                match key {
                    // boolean flags
                    "verify" => {
                        map.insert(key.to_string(), "true".to_string());
                    }
                    _ => {
                        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                        map.insert(key.to_string(), value.clone());
                    }
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Flags { map, positional })
    }

    fn str(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.str(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad integer '{v}'")),
        }
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.str(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad integer '{v}'")),
        }
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.str(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number '{v}'")),
        }
    }

    fn has(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }
}

/// The deterministic end-of-run summary `chaos run` prints as its last
/// stdout line. Wall-clock metrics are deliberately excluded: two runs
/// of one scenario must print byte-identical summaries.
#[derive(Debug, serde::Serialize)]
struct ChaosSummary {
    accepted: u64,
    rejected: u64,
    rejected_deadline: u64,
    rejected_capacity: u64,
    acceptance_ratio: f64,
    total_cost: f64,
    audits_run: u64,
    audits_failed: u64,
    faults_applied: u64,
    orphans_reclaimed: u64,
    dropped_releases: u64,
    released: u64,
    active_leases: u64,
    outstanding_load: f64,
    epoch: u64,
}

/// Entry point for `dagsfc chaos` / the chaos harness.
pub fn chaos_main(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    match flags.positional.first().map(String::as_str) {
        Some("gen") => gen_main(&flags),
        Some("run") => run_main(&flags),
        other => Err(format!(
            "chaos requires an operation (gen|run), got {other:?}"
        )),
    }
}

fn gen_main(flags: &Flags) -> Result<(), String> {
    let out = flags
        .str("out")
        .ok_or("chaos gen requires --out FILE".to_string())?;
    let algo = match flags.str("algo") {
        None => Algo::Mbbe,
        Some(v) => {
            dagsfc_serve::parse_algo(v).ok_or_else(|| format!("--algo: unknown algorithm '{v}'"))?
        }
    };
    let cfg = LifecycleConfig {
        base: SimConfig {
            network_size: flags.usize_or("nodes", 30)?,
            vnf_kinds: flags.usize_or("kinds", 12)?,
            sfc_size: flags.usize_or("sfc-size", 4)?,
            seed: flags.u64_or("seed", SimConfig::default().seed)?,
            vnf_capacity: flags.f64_or("capacity", 6.0)?,
            link_capacity: flags.f64_or("capacity", 6.0)?,
            ..SimConfig::default()
        },
        arrivals: flags.usize_or("arrivals", 50)?,
        mean_holding: flags.f64_or("mean-holding", 8.0)?,
        algo,
    };
    let intensity = ChaosIntensity {
        link_failures: flags.usize_or("link-failures", 4)?,
        node_failures: flags.usize_or("node-failures", 2)?,
        churn_events: flags.usize_or("churn", 6)?,
        churn_min: flags.f64_or("churn-min", 0.5)?,
        churn_max: flags.f64_or("churn-max", 1.5)?,
        drop_release_every: flags.usize_or("drop-every", 5)?,
        slow_request_every: flags.usize_or("slow-every", 7)?,
        disconnect_probes: flags.usize_or("probes", 2)?,
    };
    let chaos_seed = flags.u64_or("chaos-seed", 0xC4A05)?;
    let scenario = ChaosScenario::generate(&cfg, chaos_seed, &intensity);
    save_scenario(&PathBuf::from(out), &scenario).map_err(|e| e.to_string())?;
    println!(
        "chaos scenario: {} arrivals, {} fault events, {} dropped releases, \
         {} slow requests, {} probes -> {out}",
        scenario.trace.arrivals,
        scenario.plan.faults.len(),
        scenario.plan.drop_release.len(),
        scenario.plan.slow_request.len(),
        scenario.plan.disconnect_before.len(),
    );
    Ok(())
}

fn run_main(flags: &Flags) -> Result<(), String> {
    let path = flags
        .str("scenario")
        .ok_or("chaos run requires --scenario FILE".to_string())?;
    let scenario = load_scenario(&PathBuf::from(path)).map_err(|e| e.to_string())?;
    let cfg = ServeConfig {
        workers: flags.usize_or("workers", 2)?.max(1),
        queue_capacity: flags.usize_or("queue", 64)?,
        algo: scenario.trace.algo,
        reclaim_on_disconnect: false,
    };
    let net = scenario.network();
    let handle =
        serve::spawn(net.clone(), cfg, "127.0.0.1:0").map_err(|e| format!("spawn server: {e}"))?;
    let addr = handle.addr();
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let report = replay_chaos(&mut client, addr, &scenario).map_err(|e| e.to_string())?;
    drop(client);
    let stats = handle.join();

    println!(
        "chaos replayed {} arrivals over TCP: {} accepted, {} rejected (ratio {:.3}); \
         {} faults applied, {} releases dropped, {} orphans reclaimed",
        scenario.trace.arrivals,
        report.accepted,
        report.rejected,
        report.acceptance_ratio(),
        stats.faults_applied,
        report.dropped_releases,
        report.reclaimed,
    );
    if stats.audits_failed != 0 {
        return Err(format!(
            "{} accepted embeddings FAILED their constraint audit",
            stats.audits_failed
        ));
    }

    if flags.has("verify") {
        let truth = run_chaos(&net, &scenario);
        let diverged = truth.per_arrival != report.per_arrival
            || truth.departure_order != report.departure_order
            || truth.faults_applied != stats.faults_applied
            || truth.orphans_reclaimed as u64 != report.reclaimed
            || truth.dropped_releases != report.dropped_releases
            || truth.audits_failed != 0;
        if diverged {
            return Err(format!(
                "chaos replay DIVERGED from the in-process runner: \
                 in-process accepted {} (cost {:.6}), replay accepted {} (cost {:.6})",
                truth.accepted,
                truth.total_cost(),
                report.accepted,
                report.total_cost()
            ));
        }
        println!(
            "verified: bit-for-bit equal to the in-process chaos runner \
             ({} accepted, total cost {:.6})",
            truth.accepted,
            truth.total_cost()
        );
    }

    let summary = ChaosSummary {
        accepted: stats.accepted,
        rejected: stats.rejected,
        rejected_deadline: stats.rejected_deadline,
        rejected_capacity: stats.rejected_capacity,
        acceptance_ratio: report.acceptance_ratio(),
        total_cost: report.total_cost(),
        audits_run: stats.audits_run,
        audits_failed: stats.audits_failed,
        faults_applied: stats.faults_applied,
        orphans_reclaimed: stats.orphans_reclaimed,
        dropped_releases: report.dropped_releases as u64,
        released: stats.released,
        active_leases: stats.active_leases,
        outstanding_load: stats.outstanding_load,
        epoch: stats.epoch,
    };
    // The machine-readable line CI greps and diffs: keep it last.
    println!(
        "{}",
        serde_json::to_string(&summary).map_err(|e| e.to_string())?
    );
    Ok(())
}
