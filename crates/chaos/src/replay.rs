//! Daemon-driven chaos replay: the scenario's arrivals, departures,
//! faults, and client misbehavior fired at a live `dagsfc-serve`
//! daemon over real sockets, lock-step, so the outcome is comparable
//! bit-for-bit with the in-process [`crate::runner::run_chaos`].
//!
//! Misbehavior is replayed deterministically:
//!
//! * **dropped releases** — flagged departures are simply never sent;
//!   the leases stay live until the end-of-trace `reclaim` command
//!   sweeps them (the daemon-side orphan path);
//! * **slow client** — flagged arrivals are submitted in 7-byte chunks
//!   with a flush after each, exercising the server's partial-line
//!   reads without changing what is requested;
//! * **disconnect probes** — before flagged arrivals, a throwaway
//!   connection sends half a request and vanishes; the daemon must
//!   shrug it off without wedging a worker or leaking a lease.

use crate::scenario::ChaosScenario;
use dagsfc_serve::{algo_wire_name, Client, ClientError, WireRequest};
use dagsfc_sim::lifecycle::to_fixed;
use dagsfc_sim::runner::{instance_network, instance_request};
use dagsfc_sim::DepartureQueue;
use dagsfc_sim::{arrival_seed, ArrivalOutcome};
use std::net::ToSocketAddrs;

/// Wire chunk size of the "slow client" (small enough to split every
/// request into many partial reads, deterministic by construction).
pub const SLOW_CHUNK_BYTES: usize = 7;

/// What a daemon-driven chaos replay observed.
#[derive(Debug, Clone)]
pub struct ChaosReplayReport {
    /// Per-arrival fate, in arrival order.
    pub per_arrival: Vec<ArrivalOutcome>,
    /// Arrival indices in release order (dropped releases excluded).
    pub departure_order: Vec<usize>,
    /// Requests the daemon accepted.
    pub accepted: usize,
    /// Requests the daemon rejected.
    pub rejected: usize,
    /// Departures the plan dropped.
    pub dropped_releases: usize,
    /// Fault commands that changed daemon state.
    pub faults_changed: u64,
    /// Leases the end-of-trace reclaim swept.
    pub reclaimed: u64,
}

impl ChaosReplayReport {
    /// Sum of accepted costs, in arrival order.
    pub fn total_cost(&self) -> f64 {
        self.per_arrival.iter().map(|a| a.cost).sum()
    }

    /// Accepted / offered.
    pub fn acceptance_ratio(&self) -> f64 {
        let total = self.accepted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.accepted as f64 / total as f64
        }
    }
}

/// Replays `scenario` through the daemon behind `client`.
///
/// `addr` is the daemon's address, used to open the throwaway
/// disconnect-probe connections. The daemon must be serving
/// `instance_network(&scenario.trace.base)`.
pub fn replay_chaos(
    client: &mut Client,
    addr: impl ToSocketAddrs + Copy,
    scenario: &ChaosScenario,
) -> Result<ChaosReplayReport, ClientError> {
    let trace = &scenario.trace;
    let plan = &scenario.plan;
    let net = instance_network(&trace.base);

    let mut departures = DepartureQueue::new();
    let mut leases: Vec<Option<dagsfc_net::LeaseId>> = vec![None; trace.arrivals];
    let mut per_arrival = Vec::with_capacity(trace.arrivals);
    let mut departure_order = Vec::new();
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut dropped_releases = 0usize;
    let mut faults_changed = 0u64;
    let mut fault_cursor = 0usize;

    for arrival in 0..trace.arrivals {
        let now = to_fixed(arrival as f64);

        // 1. Departures (same boundary order as the in-process runner).
        while let Some(id) = departures.pop_due(now) {
            // lint:allow(expect) — invariant: departs once
            let lease = leases[id].take().expect("departs once");
            if plan.drops_release(id) {
                dropped_releases += 1;
            } else {
                client.release(lease)?;
                departure_order.push(id);
            }
        }

        // 2. Faults, over the wire.
        let due = plan.due(fault_cursor, now);
        for f in due {
            if client.fault(&f.event)? {
                faults_changed += 1;
            }
        }
        fault_cursor += due.len();

        // 3. Client misbehavior probes: half a request, then gone.
        for _ in 0..plan.probes_before(arrival) {
            let probe = Client::connect(addr)?;
            probe.abandon_mid_request(
                &WireRequest {
                    cmd: "embed".into(),
                    ..WireRequest::default()
                },
                9,
            )?;
        }

        // 4. The arrival itself — dribbled in chunks when flagged slow.
        let (sfc, flow) = instance_request(&trace.base, &net, arrival);
        let req = WireRequest {
            cmd: "embed".into(),
            sfc: Some(sfc),
            flow: Some(flow),
            seed: Some(arrival_seed(trace.base.seed, arrival)),
            algo: Some(algo_wire_name(trace.algo).to_string()),
            ..WireRequest::default()
        };
        let resp = if plan.is_slow(arrival) {
            client.request_chunked(&req, SLOW_CHUNK_BYTES)?
        } else {
            client.request(&req)?
        };
        match resp.status.as_str() {
            "accepted" => {
                let lease = resp
                    .lease
                    .ok_or_else(|| ClientError::Server("accepted without lease".into()))?;
                let cost = resp
                    .cost
                    .ok_or_else(|| ClientError::Server("accepted without cost".into()))?;
                leases[arrival] = Some(dagsfc_net::LeaseId(lease));
                departures.schedule(trace.depart_at[arrival], arrival);
                accepted += 1;
                per_arrival.push(ArrivalOutcome {
                    accepted: true,
                    cost: cost.total(),
                });
            }
            "rejected" => {
                rejected += 1;
                per_arrival.push(ArrivalOutcome {
                    accepted: false,
                    cost: 0.0,
                });
            }
            other => {
                return Err(ClientError::Server(
                    resp.reason.unwrap_or_else(|| other.to_string()),
                ))
            }
        }
    }

    // Drain the remaining departures (dropped ones stay orphaned) …
    while let Some((_, id)) = departures.pop() {
        // lint:allow(expect) — invariant: departs once
        let lease = leases[id].take().expect("departs once");
        if plan.drops_release(id) {
            dropped_releases += 1;
        } else {
            client.release(lease)?;
            departure_order.push(id);
        }
    }

    // … then sweep the orphans exactly like a recovery job would.
    let reclaimed = client.reclaim(None)?;

    Ok(ChaosReplayReport {
        per_arrival,
        departure_order,
        accepted,
        rejected,
        dropped_releases,
        faults_changed,
        reclaimed,
    })
}
