//! A chaos scenario: one frozen arrival/departure schedule plus one
//! frozen fault plan — everything a bit-for-bit reproducible chaos run
//! needs, in one JSON file.

use crate::plan::{ChaosIntensity, FaultPlan};
use dagsfc_net::Network;
use dagsfc_sim::runner::instance_network;
use dagsfc_sim::{export_trace, LifecycleConfig, ReplayTrace};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Current scenario file format version.
pub const SCENARIO_FORMAT_VERSION: u32 = 1;

/// Everything one chaos run needs, frozen. The network and per-arrival
/// requests are regenerated from `trace.base` (pure functions of the
/// seed), exactly like plain trace replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosScenario {
    /// Version tag for forward compatibility.
    pub format_version: u32,
    /// The offered load: arrivals, departures, algorithm, substrate.
    pub trace: ReplayTrace,
    /// The misfortune: faults and client misbehavior.
    pub plan: FaultPlan,
}

impl ChaosScenario {
    /// Freezes a scenario: export the lifecycle trace, then draw the
    /// fault plan against it.
    pub fn generate(cfg: &LifecycleConfig, chaos_seed: u64, intensity: &ChaosIntensity) -> Self {
        let trace = export_trace(cfg);
        let net = instance_network(&trace.base);
        let plan = FaultPlan::generate(&net, &trace, chaos_seed, intensity);
        ChaosScenario {
            format_version: SCENARIO_FORMAT_VERSION,
            trace,
            plan,
        }
    }

    /// The substrate network this scenario runs against.
    pub fn network(&self) -> Network {
        instance_network(&self.trace.base)
    }
}

/// Scenario file IO failures.
#[derive(Debug)]
pub enum ScenarioError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not a valid scenario.
    Json(serde_json::Error),
    /// The file is from a newer format.
    UnsupportedVersion(u32),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Io(e) => write!(f, "scenario io: {e}"),
            ScenarioError::Json(e) => write!(f, "scenario parse: {e}"),
            ScenarioError::UnsupportedVersion(v) => {
                write!(f, "unsupported scenario format version {v}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Writes `scenario` as pretty JSON (stable field order, committable).
pub fn save_scenario(path: &Path, scenario: &ChaosScenario) -> Result<(), ScenarioError> {
    let json = serde_json::to_string_pretty(scenario).map_err(ScenarioError::Json)?;
    std::fs::write(path, json + "\n").map_err(ScenarioError::Io)
}

/// Loads and version-checks a scenario file.
pub fn load_scenario(path: &Path) -> Result<ChaosScenario, ScenarioError> {
    let raw = std::fs::read_to_string(path).map_err(ScenarioError::Io)?;
    let scenario: ChaosScenario = serde_json::from_str(&raw).map_err(ScenarioError::Json)?;
    if scenario.format_version > SCENARIO_FORMAT_VERSION {
        return Err(ScenarioError::UnsupportedVersion(scenario.format_version));
    }
    Ok(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsfc_sim::{Algo, SimConfig};

    fn cfg() -> LifecycleConfig {
        LifecycleConfig {
            base: SimConfig {
                network_size: 20,
                seed: 0x5CEA,
                ..SimConfig::default()
            },
            arrivals: 24,
            mean_holding: 5.0,
            algo: Algo::Mbbe,
        }
    }

    #[test]
    fn scenario_roundtrips_through_disk() {
        let scenario = ChaosScenario::generate(&cfg(), 9, &ChaosIntensity::default());
        let dir = std::env::temp_dir().join("dagsfc-chaos-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scenario.json");
        save_scenario(&path, &scenario).unwrap();
        let back = load_scenario(&path).unwrap();
        assert_eq!(back.format_version, SCENARIO_FORMAT_VERSION);
        assert_eq!(back.plan, scenario.plan);
        assert_eq!(back.trace.depart_at, scenario.trace.depart_at);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_gate_rejects_future_files() {
        let mut scenario = ChaosScenario::generate(&cfg(), 9, &ChaosIntensity::default());
        scenario.format_version = SCENARIO_FORMAT_VERSION + 1;
        let dir = std::env::temp_dir().join("dagsfc-chaos-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("future.json");
        save_scenario(&path, &scenario).unwrap();
        assert!(matches!(
            load_scenario(&path),
            Err(ScenarioError::UnsupportedVersion(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
