//! # dagsfc-chaos — deterministic fault injection
//!
//! A chaos harness for the DAG-SFC serving stack that is **bit-for-bit
//! reproducible from one seed**. A scenario freezes an offered-load
//! trace (arrivals, departures, algorithm) together with a fault plan
//! (link/node failures with paired recoveries, capacity churn, dropped
//! releases, slow clients, mid-request disconnects). Running it —
//! in-process via [`run_chaos`] or through a live daemon via
//! [`replay_chaos`] — involves no further randomness, so any two runs
//! of one scenario, at any worker count, observe the same per-arrival
//! fates, the same costs, and the same final ledger state.
//!
//! The harness's invariant mirrors the daemon's: **no uncertified
//! embedding is ever served.** Every accepted commit is re-derived by
//! the solver-independent constraint auditor against the faulted
//! residual the solver saw; a violation rolls the commit back. A chaos
//! run that ends with `audits_failed != 0` is a solver or accounting
//! bug, full stop.
//!
//! ```no_run
//! use dagsfc_chaos::{run_chaos, ChaosIntensity, ChaosScenario};
//! use dagsfc_sim::{Algo, LifecycleConfig, SimConfig};
//!
//! let cfg = LifecycleConfig {
//!     base: SimConfig::default(),
//!     arrivals: 50,
//!     mean_holding: 8.0,
//!     algo: Algo::Mbbe,
//! };
//! let scenario = ChaosScenario::generate(&cfg, 7, &ChaosIntensity::default());
//! let outcome = run_chaos(&scenario.network(), &scenario);
//! assert_eq!(outcome.audits_failed, 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;
pub mod plan;
pub mod replay;
pub mod runner;
pub mod scenario;

pub use cli::chaos_main;
pub use plan::{ChaosIntensity, FaultPlan, ScheduledFault};
pub use replay::{replay_chaos, ChaosReplayReport, SLOW_CHUNK_BYTES};
pub use runner::{run_chaos, ChaosOutcome, CHAOS_OWNER};
pub use scenario::{load_scenario, save_scenario, ChaosScenario, ScenarioError};
