//! The in-process chaos lifecycle: the `sim::lifecycle` event loop with
//! the scenario's fault plan interleaved — the ground truth a
//! daemon-driven chaos replay is verified against.
//!
//! Event order at each arrival boundary `i` (time `now = to_fixed(i)`):
//!
//! 1. every due departure (`t ≤ now`, ascending `(t, id)`) releases —
//!    unless the plan drops it, in which case the lease is orphaned;
//! 2. every due fault (`at ≤ now`, ascending `(at, seq)`) is applied to
//!    the ledger;
//! 3. arrival `i` is offered over the faulted residual, and every
//!    accepted embedding is immediately re-checked by the
//!    solver-independent constraint auditor — a violation rolls the
//!    commit back (mirroring the daemon's audit-on-commit gate).
//!
//! After the last arrival the remaining departures drain, then an
//! orphan reclaim sweeps the dropped leases. The run must end with zero
//! outstanding load and zero audit failures, no matter what the plan
//! threw at it.

use crate::scenario::ChaosScenario;
use dagsfc_audit::ConstraintAuditor;
use dagsfc_net::{CommitLedger, LeaseId, Network};
use dagsfc_sim::lifecycle::to_fixed;
use dagsfc_sim::runner::instance_request;
use dagsfc_sim::DepartureQueue;
use dagsfc_sim::{arrival_seed, embed_and_commit, ArrivalOutcome};
use serde::Serialize;

/// Owner tag the in-process runner stamps on every commit — mirrors a
/// daemon serving one connection, whose first client gets owner 1.
pub const CHAOS_OWNER: u64 = 1;

/// Everything a chaos run observed. `per_arrival` and
/// `departure_order` are comparable bit-for-bit with a daemon-driven
/// replay of the same scenario.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosOutcome {
    /// Per-arrival fate, in arrival order.
    pub per_arrival: Vec<ArrivalOutcome>,
    /// Arrival indices in release order (dropped releases excluded).
    pub departure_order: Vec<usize>,
    /// Requests embedded (and certified) successfully.
    pub accepted: usize,
    /// Requests rejected (solver, fault, or audit rollback).
    pub rejected: usize,
    /// Accepted embeddings re-derived by the constraint auditor (all of
    /// them — chaos audits every commit, not a sample).
    pub audits_run: usize,
    /// Audits that found a violation. Must be 0: an uncertified
    /// embedding is never served, fault storm or not.
    pub audits_failed: usize,
    /// State-changing fault events applied.
    pub faults_applied: u64,
    /// Departures the plan dropped (orphaned leases).
    pub dropped_releases: usize,
    /// Orphans swept by the end-of-run reclaim.
    pub orphans_reclaimed: usize,
    /// Outstanding load after drain + reclaim — the leak detector;
    /// must be ~0.
    pub final_leak: f64,
}

impl ChaosOutcome {
    /// Sum of accepted costs, in arrival order.
    pub fn total_cost(&self) -> f64 {
        self.per_arrival.iter().map(|a| a.cost).sum()
    }

    /// Accepted / offered.
    pub fn acceptance_ratio(&self) -> f64 {
        let total = self.accepted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.accepted as f64 / total as f64
        }
    }
}

/// Runs `scenario` in-process against `net`.
pub fn run_chaos(net: &Network, scenario: &ChaosScenario) -> ChaosOutcome {
    let trace = &scenario.trace;
    let plan = &scenario.plan;
    let mut ledger = CommitLedger::new(net);
    ledger.set_default_owner(Some(CHAOS_OWNER));
    let auditor = ConstraintAuditor::new();

    let mut departures = DepartureQueue::new();
    let mut leases: Vec<Option<LeaseId>> = vec![None; trace.arrivals];
    let mut per_arrival = Vec::with_capacity(trace.arrivals);
    let mut departure_order = Vec::new();
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut audits_run = 0usize;
    let mut audits_failed = 0usize;
    let mut dropped_releases = 0usize;
    let mut fault_cursor = 0usize;

    for arrival in 0..trace.arrivals {
        let now = to_fixed(arrival as f64);

        // 1. Departures first — a flow that ended frees its resources
        // before anything else happens at this boundary.
        while let Some(id) = departures.pop_due(now) {
            // lint:allow(expect) — invariant: departs once
            let lease = leases[id].take().expect("departs once");
            if plan.drops_release(id) {
                // The misbehaving client forgot: the lease stays live
                // until the end-of-run reclaim.
                dropped_releases += 1;
            } else {
                // lint:allow(expect) — invariant: lease is active
                ledger.release(lease).expect("lease is active");
                departure_order.push(id);
            }
        }

        // 2. Faults next: the arrival is offered the post-fault world.
        let due = plan.due(fault_cursor, now);
        for f in due {
            // lint:allow(expect) — plan targets are drawn from this net
            ledger.apply_fault(&f.event).expect("plan event is valid");
        }
        fault_cursor += due.len();

        // 3. The arrival itself, over the faulted residual.
        let (sfc, flow) = instance_request(&trace.base, net, arrival);
        let residual = ledger.residual();
        match embed_and_commit(
            &mut ledger,
            &residual,
            &sfc,
            &flow,
            trace.algo,
            arrival_seed(trace.base.seed, arrival),
        ) {
            Ok(s) => {
                // Audit-on-commit, same gate as the daemon: every
                // accepted embedding is certified or rolled back.
                audits_run += 1;
                let report = auditor.audit_outcome(&residual, &sfc, &flow, &s.outcome);
                if !report.is_clean() {
                    audits_failed += 1;
                    // lint:allow(expect) — invariant: fresh lease is active
                    ledger.release(s.lease).expect("fresh lease is active");
                    rejected += 1;
                    per_arrival.push(ArrivalOutcome {
                        accepted: false,
                        cost: 0.0,
                    });
                    continue;
                }
                leases[arrival] = Some(s.lease);
                departures.schedule(trace.depart_at[arrival], arrival);
                accepted += 1;
                per_arrival.push(ArrivalOutcome {
                    accepted: true,
                    cost: s.cost.total(),
                });
            }
            Err(_) => {
                rejected += 1;
                per_arrival.push(ArrivalOutcome {
                    accepted: false,
                    cost: 0.0,
                });
            }
        }
    }

    // Drain the remaining departures (dropped ones stay orphaned).
    while let Some((_, id)) = departures.pop() {
        // lint:allow(expect) — invariant: departs once
        let lease = leases[id].take().expect("departs once");
        if plan.drops_release(id) {
            dropped_releases += 1;
        } else {
            // lint:allow(expect) — invariant: lease is active
            ledger.release(lease).expect("lease is active");
            departure_order.push(id);
        }
    }

    // Orphan sweep: exactly what the daemon's `reclaim` does for a
    // vanished client.
    let orphans_reclaimed = ledger.reclaim_owner(CHAOS_OWNER).len();

    ChaosOutcome {
        per_arrival,
        departure_order,
        accepted,
        rejected,
        audits_run,
        audits_failed,
        faults_applied: ledger.faults_applied(),
        dropped_releases,
        orphans_reclaimed,
        final_leak: ledger.outstanding_load(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ChaosIntensity;
    use dagsfc_sim::{Algo, LifecycleConfig, SimConfig};

    fn scenario(chaos_seed: u64) -> ChaosScenario {
        ChaosScenario::generate(
            &LifecycleConfig {
                base: SimConfig {
                    network_size: 30,
                    sfc_size: 4,
                    vnf_capacity: 6.0,
                    link_capacity: 6.0,
                    seed: 0xBEEF,
                    ..SimConfig::default()
                },
                arrivals: 50,
                mean_holding: 6.0,
                algo: Algo::Mbbe,
            },
            chaos_seed,
            &ChaosIntensity::default(),
        )
    }

    #[test]
    fn chaos_run_is_deterministic_and_certified() {
        let s = scenario(0xFA11);
        let net = s.network();
        let a = run_chaos(&net, &s);
        let b = run_chaos(&net, &s);
        // Bit-for-bit: exact f64 equality, not tolerance.
        assert_eq!(a.per_arrival, b.per_arrival);
        assert_eq!(a.departure_order, b.departure_order);
        assert_eq!(a.total_cost(), b.total_cost());
        assert_eq!(a.faults_applied, b.faults_applied);

        assert_eq!(a.accepted + a.rejected, s.trace.arrivals);
        assert!(a.accepted > 0, "chaos must not kill every request");
        assert!(a.faults_applied > 0, "the plan must actually fire");
        assert_eq!(a.audits_run, a.accepted + a.audits_failed);
        assert_eq!(a.audits_failed, 0, "never certify a violating embed");
        assert!(a.dropped_releases > 0, "misbehavior must occur");
        assert_eq!(a.orphans_reclaimed, a.dropped_releases);
        assert!(a.final_leak.abs() < 1e-6, "leaked {}", a.final_leak);
    }

    #[test]
    fn faults_change_outcomes_but_never_correctness() {
        let s = scenario(0xFA11);
        let net = s.network();
        let chaotic = run_chaos(&net, &s);
        // The same offered load without faults (empty plan).
        let mut calm = s.clone();
        calm.plan.faults.clear();
        calm.plan.drop_release.clear();
        let base = run_chaos(&net, &calm);
        assert_eq!(base.faults_applied, 0);
        assert_eq!(base.audits_failed, 0);
        assert!(base.final_leak.abs() < 1e-6);
        // Chaos must actually perturb the run (else the plan is inert).
        // Note upward churn can make a faulted run accept MORE, so the
        // only safe claim is "different", not "worse".
        assert_ne!(
            chaotic.per_arrival, base.per_arrival,
            "fault plan changed nothing"
        );
    }

    #[test]
    fn delay_constrained_chaos_routes_around_down_links_within_budget() {
        // Every flow carries a delay budget; the fault plan takes links
        // and nodes down mid-run. Accepted embeddings must route around
        // the outages AND stay within budget — the auditor re-derives
        // the end-to-end delay from the substrate's per-link delays, so
        // a solver that leaked a down link or blew the SLA would show up
        // as an audit failure here.
        let mut s = scenario(0xFA11);
        s.trace.base.link_delay_us = Some(10.0);
        s.trace.base.delay_budget_us = Some(150.0);
        let net = s.network();
        let out = run_chaos(&net, &s);
        assert!(
            s.plan
                .faults
                .iter()
                .any(|f| matches!(f.event, dagsfc_net::FaultEvent::LinkDown { .. })),
            "plan must actually take links down"
        );
        assert!(out.faults_applied > 0);
        assert!(out.accepted > 0, "budget 150 us must admit some requests");
        assert_eq!(
            out.audits_failed, 0,
            "an accepted embedding crossed a down link or blew its delay budget"
        );
        // Determinism holds for the delay-constrained run too.
        let again = run_chaos(&net, &s);
        assert_eq!(out.per_arrival, again.per_arrival);

        // Tightening the budget to the impossible rejects everything —
        // and cleanly (no audit failures, no leaks), proving rejections
        // flow through the deadline path rather than panicking mid-run.
        let mut strict = s.clone();
        strict.trace.base.delay_budget_us = Some(0.001);
        let out = run_chaos(&net, &strict);
        assert_eq!(out.accepted, 0);
        assert_eq!(out.audits_failed, 0);
        assert!(out.final_leak.abs() < 1e-6);
    }

    #[test]
    fn drop_release_orphans_are_fully_reclaimed() {
        let mut s = scenario(0x0DD);
        // Drop every release: every accepted lease becomes an orphan.
        s.plan.drop_release = (0..s.trace.arrivals).collect();
        let net = s.network();
        let out = run_chaos(&net, &s);
        assert_eq!(out.departure_order, Vec::<usize>::new());
        assert_eq!(out.dropped_releases, out.accepted);
        assert_eq!(out.orphans_reclaimed, out.accepted);
        assert!(out.final_leak.abs() < 1e-6);
    }
}
