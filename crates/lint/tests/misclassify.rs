//! Differential proof that the token engine fixes the substring
//! engine's misclassifications: each case runs the preserved legacy
//! scanner (`dagsfc_lint::legacy`) and the new engine over the same
//! source and asserts the legacy verdict is wrong while the new one is
//! right. These are the concrete shapes that motivated the rewrite.

use dagsfc_lint::analyze_one;
use dagsfc_lint::legacy::legacy_scan;

fn legacy_fires(src: &str, rule: &str) -> bool {
    legacy_scan(src).iter().any(|f| f.rule == rule)
}

fn new_fires(src: &str, rule: &str) -> bool {
    analyze_one("crates/sim/src/fx.rs", src)
        .iter()
        .any(|v| v.rule == rule)
}

/// Old FALSE POSITIVE: a rule pattern inside a string literal.
#[test]
fn pattern_in_string_literal() {
    let src = "fn f() {\n    let msg = \"never call .unwrap() in prod\";\n    log(msg);\n}\n";
    assert!(
        legacy_fires(src, "unwrap"),
        "legacy should misfire on the string"
    );
    assert!(
        !new_fires(src, "unwrap"),
        "token engine must see a Str token"
    );
}

/// Old FALSE NEGATIVE: `//` inside a string truncated the line, hiding
/// a real violation after it.
#[test]
fn slashes_inside_string_hide_real_violation() {
    let src =
        "fn f(o: Option<u32>) -> u32 {\n    let url = \"http://example.org\"; o.unwrap()\n}\n";
    assert!(
        !legacy_fires(src, "unwrap"),
        "legacy truncates at the // inside the string and goes blind"
    );
    assert!(
        new_fires(src, "unwrap"),
        "token engine must still see the call"
    );
}

/// Old FALSE POSITIVE: a `}` inside a string literal ended the
/// `#[cfg(test)]` region early, so later test-only code got flagged.
#[test]
fn brace_in_string_ends_test_region_early() {
    let src = "#[cfg(test)]\nmod tests {\n    const BRACE: &str = \"}\";\n    #[test]\n    fn t() {\n        probe(BRACE).unwrap();\n    }\n}\n";
    assert!(
        legacy_fires(src, "unwrap"),
        "legacy's char-counted depth should leak out of the test region"
    );
    assert!(
        !new_fires(src, "unwrap"),
        "token tracker must keep the whole mod inside the region"
    );
}

/// Old FALSE POSITIVE: a `lint:allow` on the first line of a multi-line
/// statement did not cover the later lines of the same statement.
#[test]
fn allow_on_first_line_covers_whole_statement() {
    let src = "fn f(b: B) -> P {\n    let p = b // lint:allow(expect)\n        .with_defaults()\n        .expect(\"validated\");\n    p\n}\n";
    assert!(
        legacy_fires(src, "expect"),
        "legacy only honors same-line/previous-line markers"
    );
    assert!(
        !new_fires(src, "expect"),
        "the marker scopes to the whole statement in the token engine"
    );
}

/// Old FALSE POSITIVE: a rule pattern inside a block comment.
#[test]
fn pattern_in_block_comment() {
    let src = "fn f() {\n    /* migration note: drop the .expect( call */\n    step();\n}\n";
    assert!(
        legacy_fires(src, "expect"),
        "legacy only strips // comments, not block comments"
    );
    assert!(
        !new_fires(src, "expect"),
        "comments never reach the token stream"
    );
}
