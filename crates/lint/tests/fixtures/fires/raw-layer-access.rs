//! lint-fixture: path=crates/core/src/solvers/newsolver.rs rule=raw-layer-access
fn candidates(sfc: &DagSfc) -> usize {
    let mut slots = 0;
    for layer in sfc.layers() {
        slots += layer.width();
    }
    slots
}
