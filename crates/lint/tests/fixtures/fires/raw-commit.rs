//! lint-fixture: path=crates/sim/src/fx.rs rule=raw-commit
fn f(session: &mut Session, plan: Plan) {
    session.commit(plan).ok();
}
