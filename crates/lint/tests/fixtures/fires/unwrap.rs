//! lint-fixture: path=crates/sim/src/fx.rs rule=unwrap
fn f(x: Option<u32>) -> u32 {
    let v = x
        .unwrap();
    v
}
