//! lint-fixture: path=crates/sim/src/fx.rs rule=expect
fn f(cfg: &Config) -> u32 {
    cfg.get("k").expect("missing key")
}
