//! lint-fixture: path=crates/serve/src/pool.rs rule=audit-gate
fn serve_unchecked(ledger: &mut CommitLedger, req: &Request) -> Outcome {
    embed_and_commit(ledger, req)
}
