//! lint-fixture: path=crates/serve/src/fx.rs rule=shard-ledger
fn f(gw: &Gateway, shard: usize) -> f64 {
    gw.ledgers[shard].utilization()
}
