//! lint-fixture: path=crates/sim/src/fx.rs rule=unseeded-rng
fn f() -> u64 {
    let mut rng = thread_rng();
    rng.gen()
}
