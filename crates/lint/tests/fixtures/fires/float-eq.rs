//! lint-fixture: path=crates/sim/src/fx.rs rule=float-eq
fn f(total_cost: f64, best_cost: f64) -> bool {
    total_cost == best_cost
}
