//! lint-fixture: path=crates/shard/src/engine.rs rule=lock-order
// lint:ascending(parts)
fn rollback(ledgers: &mut [CommitLedger], parts: &[(usize, LeaseId)]) {
    for &(shard, sub) in parts.iter() {
        ledgers[shard].release(sub).ok();
    }
}
