//! lint-fixture: path=crates/sim/src/fx.rs rule=retired-accounting
fn f(ledger: &Ledger, loads: &Loads) -> f64 {
    ledger.account(loads)
}
