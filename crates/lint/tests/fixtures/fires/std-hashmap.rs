//! lint-fixture: path=crates/net/src/routing/dij.rs rule=std-hashmap
use std::collections::HashMap;
fn f() -> HashMap<u32, u32> {
    HashMap::new()
}
