//! lint-fixture: path=crates/sim/src/fx.rs rule=wallclock
fn f() -> SystemTime {
    SystemTime::now()
}
