//! lint-fixture: path=crates/sim/src/fx.rs rule=raw-routing
fn f(net: &Network, s: NodeId) -> Tree {
    ShortestPathTree::build(net, s)
}
