//! lint-fixture: path=crates/sim/src/fx.rs rule=expect
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let v = probe().expect("test-only panics are fine");
        assert!(v > 0);
    }
}
