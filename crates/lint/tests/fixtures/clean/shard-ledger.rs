//! lint-fixture: path=crates/shard/src/internals.rs rule=shard-ledger
fn f(gw: &Gateway, shard: usize) -> f64 {
    gw.ledgers[shard].utilization()
}
