//! lint-fixture: path=crates/sim/src/fx.rs rule=expect
fn f(b: Builder) -> Plan {
    let plan = b // lint:allow(expect) — validated by the caller
        .with_defaults()
        .expect("validated");
    plan
}
