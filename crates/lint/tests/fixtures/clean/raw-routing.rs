//! lint-fixture: path=crates/sim/src/fx.rs rule=raw-routing
fn f(oracle: &PathOracle, a: NodeId, b: NodeId, rate: f64) -> Option<Path> {
    oracle.min_cost_path(a, b, rate)
}
