//! lint-fixture: path=crates/sim/src/fx.rs rule=unwrap
#[cfg(test)]
mod tests {
    const BRACE: &str = "}";
    #[test]
    fn t() {
        probe(BRACE).unwrap();
    }
}
