//! lint-fixture: path=crates/core/src/solvers/layering.rs rule=raw-layer-access
fn layers(sfc: &DagSfc) -> &[Layer] {
    sfc.layers()
}
