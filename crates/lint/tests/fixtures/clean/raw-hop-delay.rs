//! lint-fixture: path=crates/core/src/delay.rs rule=raw-hop-delay
fn f(hop_count: u32, per_hop_us: f64) -> f64 {
    hop_count as f64 * per_hop_us
}
