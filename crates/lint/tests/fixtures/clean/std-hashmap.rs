//! lint-fixture: path=crates/net/src/routing/dij.rs rule=std-hashmap
fn f() -> FxHashMap<u32, u32> {
    FxHashMap::default()
}
