//! lint-fixture: path=crates/serve/src/pool.rs rule=audit-gate
fn serve_checked(ledger: &mut CommitLedger, auditor: &Auditor, req: &Request) -> Outcome {
    let out = embed_and_commit(ledger, req);
    auditor.audit_outcome(&out);
    out
}
