//! lint-fixture: path=crates/sim/src/fx.rs rule=unwrap
fn f() {
    let msg = "never call .unwrap() in prod";
    /* .unwrap() discussed in a block comment */
    log(msg);
}
