//! lint-fixture: path=crates/sim/src/fx.rs rule=float-accum
fn total_weight(weights: &BTreeMap<u32, f64>) -> f64 {
    weights.values().sum::<f64>()
}
