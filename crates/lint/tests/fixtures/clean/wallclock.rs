//! lint-fixture: path=crates/sim/src/fx.rs rule=wallclock
fn f() -> &'static str {
    // SystemTime::now is banned outside the harness
    "SystemTime::now is banned"
}
