//! lint-fixture: path=crates/sim/src/fx.rs rule=unordered-iter
fn dump(m: &FxHashMap<u32, u32>) -> Vec<(u32, u32)> {
    let mut v: Vec<(u32, u32)> = m.iter().map(|(k, v)| (*k, *v)).collect();
    v.sort_unstable();
    v
}
