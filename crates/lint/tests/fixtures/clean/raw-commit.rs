//! lint-fixture: path=crates/net/src/fx.rs rule=raw-commit
fn f(session: &mut Session, plan: Plan) {
    session.commit(plan).ok();
}
