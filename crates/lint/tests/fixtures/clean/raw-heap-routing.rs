//! lint-fixture: path=crates/net/src/routing/heap_fallback.rs rule=raw-heap-routing
use std::collections::BinaryHeap;
fn relax() {
    let mut open: BinaryHeap<u64> = BinaryHeap::new();
    open.push(0);
}
