//! lint-fixture: path=crates/sim/src/fx.rs rule=unseeded-rng
fn f(seed: u64) -> u64 {
    // thread_rng() in a comment is not a call
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen()
}
