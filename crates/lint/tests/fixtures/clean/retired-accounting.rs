//! lint-fixture: path=crates/sim/src/fx.rs rule=retired-accounting
fn f(ledger: &Ledger, loads: &Loads) -> Result<f64, E> {
    ledger.try_account(loads)
}
