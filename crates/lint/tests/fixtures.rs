//! Data-driven fixture corpus: every rule has at least one `fires/`
//! snippet (the rule must report) and one `clean/` snippet (it must
//! not), plus regression fixtures for the whole-statement `lint:allow`
//! scope and the token-based `#[cfg(test)]` region tracker.
//!
//! Each fixture's first line is a directive naming the virtual
//! workspace path (which drives scope gating) and the rule under test:
//!
//! ```text
//! //! lint-fixture: path=crates/sim/src/fx.rs rule=unwrap
//! ```

use dagsfc_lint::{analyze_one, RULES};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn directive(fixture: &Path, text: &str) -> (String, String) {
    let first = text.lines().next().unwrap_or("");
    let rest = first
        .strip_prefix("//! lint-fixture:")
        .unwrap_or_else(|| panic!("{} lacks a lint-fixture directive", fixture.display()));
    let mut path = None;
    let mut rule = None;
    for field in rest.split_whitespace() {
        if let Some(v) = field.strip_prefix("path=") {
            path = Some(v.to_string());
        } else if let Some(v) = field.strip_prefix("rule=") {
            rule = Some(v.to_string());
        }
    }
    match (path, rule) {
        (Some(p), Some(r)) => (p, r),
        _ => panic!("{}: directive needs path= and rule=", fixture.display()),
    }
}

fn fixture_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("rs"))
        .collect();
    files.sort();
    files
}

#[test]
fn fixture_corpus() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let known: BTreeSet<&str> = RULES.iter().map(|(name, _)| *name).collect();
    let mut fired_rules = BTreeSet::new();
    let mut clean_rules = BTreeSet::new();

    for (dir, should_fire) in [("fires", true), ("clean", false)] {
        for fixture in fixture_files(&root.join(dir)) {
            let text = std::fs::read_to_string(&fixture).unwrap();
            let (vpath, rule) = directive(&fixture, &text);
            assert!(
                known.contains(rule.as_str()),
                "{}: unknown rule '{rule}'",
                fixture.display()
            );
            let hits = analyze_one(&vpath, &text);
            let fired = hits.iter().any(|v| v.rule == rule);
            assert_eq!(
                fired,
                should_fire,
                "{}: expected rule '{rule}' to {} at path {vpath}; engine reported {:#?}",
                fixture.display(),
                if should_fire { "fire" } else { "stay silent" },
                hits
            );
            if should_fire {
                fired_rules.insert(rule);
            } else {
                clean_rules.insert(rule);
            }
        }
    }

    // Every rule in the catalog must be exercised from both sides.
    for (name, _) in RULES {
        assert!(
            fired_rules.contains(*name),
            "no fires/ fixture for '{name}'"
        );
        assert!(
            clean_rules.contains(*name),
            "no clean/ fixture for '{name}'"
        );
    }
}
