//! The checked-in baseline/suppression file.
//!
//! A baseline entry is `rule<TAB>path<TAB>trimmed line text` — no line
//! numbers, so entries survive unrelated edits above them. Matching is
//! multiset-style: each entry suppresses at most one identical
//! violation, so *new* occurrences of a baselined pattern still fail.
//!
//! `--update-baseline` rewrites the file from the current findings;
//! `#`-lines are comments and let entries carry a rationale.

use crate::Violation;
use std::collections::BTreeMap;

/// A parsed baseline: entry → how many identical findings it absorbs.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: BTreeMap<(String, String, String), usize>,
}

impl Baseline {
    /// Parses baseline `text` (comments and blank lines ignored).
    pub fn parse(text: &str) -> Baseline {
        let mut entries = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let (Some(rule), Some(path), Some(txt)) = (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            *entries
                .entry((rule.to_string(), path.to_string(), txt.to_string()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.values().sum()
    }

    /// Whether the baseline is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Splits `violations` into (new, baselined) and reports how many
    /// baseline entries matched nothing (stale).
    pub fn apply(&self, violations: Vec<Violation>) -> (Vec<Violation>, Vec<Violation>, usize) {
        let mut budget = self.entries.clone();
        let mut fresh = Vec::new();
        let mut absorbed = Vec::new();
        for v in violations {
            let key = (v.rule.to_string(), v.path.clone(), v.text.clone());
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    absorbed.push(v);
                }
                _ => fresh.push(v),
            }
        }
        let stale: usize = budget.values().sum();
        (fresh, absorbed, stale)
    }

    /// Renders `violations` as baseline file content.
    pub fn render(violations: &[Violation]) -> String {
        let mut out = String::from(
            "# dagsfc-lint baseline — accepted findings, matched by (rule, file, text).\n\
             # Regenerate with: cargo run --bin dagsfc-lint -- --update-baseline\n\
             # Every entry should carry (or point to) a rationale; prefer fixing or a\n\
             # site-local lint:allow over growing this file.\n",
        );
        for v in violations {
            out.push_str(v.rule);
            out.push('\t');
            out.push_str(&v.path);
            out.push('\t');
            out.push_str(&v.text);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, path: &str, text: &str) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line: 1,
            text: text.to_string(),
        }
    }

    #[test]
    fn baseline_absorbs_exactly_once() {
        let b = Baseline::parse("unordered-iter\ta.rs\tfor k in m.iter() {\n");
        let (fresh, absorbed, stale) = b.apply(vec![
            v("unordered-iter", "a.rs", "for k in m.iter() {"),
            v("unordered-iter", "a.rs", "for k in m.iter() {"),
        ]);
        assert_eq!(absorbed.len(), 1);
        assert_eq!(fresh.len(), 1, "a second identical finding is new");
        assert_eq!(stale, 0);
    }

    #[test]
    fn stale_entries_are_counted() {
        let b = Baseline::parse("unwrap\tgone.rs\tx.unwrap();\n");
        let (fresh, _, stale) = b.apply(vec![]);
        assert!(fresh.is_empty());
        assert_eq!(stale, 1);
    }

    #[test]
    fn round_trips_through_render() {
        let vs = vec![v("expect", "b.rs", "y.expect(\"z\");")];
        let b = Baseline::parse(&Baseline::render(&vs));
        assert_eq!(b.len(), 1);
        let (fresh, absorbed, _) = b.apply(vs);
        assert!(fresh.is_empty());
        assert_eq!(absorbed.len(), 1);
    }
}
