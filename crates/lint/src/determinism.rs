//! The determinism pass: unordered-container iteration feeding ordered
//! output, and float accumulation over unordered sources.
//!
//! The whole system's replay story (chaos replay, parallel-vs-serial
//! differentials, byte-identical figure CSVs) rests on every observable
//! ordering being a function of the seed. `HashMap`/`HashSet` (and the
//! seeded `FxHashMap`/`FxHashSet`, whose iteration order is still
//! arbitrary) silently break that the moment their iteration order
//! escapes into output, and float sums over such iterations are
//! order-dependent even when the *set* of values is deterministic.
//!
//! The pass is intentionally conservative, in both directions:
//!
//! * Only identifiers whose declaration (let binding, field, or
//!   parameter with a type annotation, or a `::new`/`::default`
//!   constructor) is visible **in the same file** are tracked — a type
//!   the pass cannot see is never flagged.
//! * An iteration whose enclosing statement visibly restores or never
//!   needs an order — sorting, collecting into a `BTreeMap`/`BTreeSet`
//!   or another keyed map, pure counting/membership sinks — is exempt.
//!
//! Everything else needs a `lint:allow(unordered-iter)` with a stated
//! reason, or a baseline entry.

use crate::lexer::{Tok, TokKind};
use crate::scan::FileModel;
use crate::{emit, Violation};

/// Container types whose iteration order is arbitrary.
const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Iterator-producing methods that expose the arbitrary order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Sinks that make the order unobservable: either an explicit reorder
/// (`sort*`, BTree collection) or an order-insensitive terminal.
const ORDER_SINKS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "count",
    "len",
    "any",
    "all",
    "contains",
    "contains_key",
    "is_empty",
    "min",
    "max",
];

/// Integer types: `sum::<u64>()` over an unordered source is exact and
/// therefore order-insensitive (float sums are not).
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Collects every identifier declared in this file with an unordered
/// container type: `let x: FxHashMap<…>`, `x: HashSet<…>` (field or
/// parameter), or `let x = HashMap::new()`.
fn unordered_idents(model: &FileModel) -> Vec<String> {
    let toks = &model.toks;
    let mut found = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !UNORDERED_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        // Walk back to the binding: skip over type/expression tokens
        // until we hit `:` (annotation) or `=` (initializer) and take
        // the identifier just before it. Statement boundaries stop the
        // walk, so a `-> FxHashMap<…>` return type binds nothing.
        let stmt_start = model.stmt_of(i).map(|s| s.start).unwrap_or(0);
        let mut j = i;
        while j > stmt_start {
            j -= 1;
            let p = &toks[j];
            if p.is_punct(":") || p.is_punct("=") {
                if j > stmt_start && toks[j - 1].kind == TokKind::Ident {
                    let name = &toks[j - 1].text;
                    if name != "mut" && !found.contains(name) {
                        found.push(name.clone());
                    }
                }
                break;
            }
            // A `->`, `(`, `)` or `,` before any `:`/`=` means this
            // occurrence is a return type, turbofish, or similar.
            if p.is_punct("->") || p.is_punct(",") || p.is_punct("(") || p.is_punct(")") {
                break;
            }
        }
    }
    found
}

/// Whether the statement containing token `i` mentions a sink that
/// makes iteration order unobservable. The common burn-down shape
/// `let mut v: Vec<_> = map.iter().collect(); v.sort();` spans two
/// statements, so an explicit `sort*` in the immediately following
/// statement also counts.
fn stmt_has_order_sink(model: &FileModel, i: usize) -> bool {
    let Some(pos) = model.stmts.iter().position(|s| i >= s.start && i <= s.end) else {
        return false;
    };
    if let Some(next) = model.stmts.get(pos + 1) {
        let sorted_next = model.toks[next.start..=next.end]
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text.starts_with("sort"));
        if sorted_next {
            return true;
        }
    }
    let stmt = &model.stmts[pos];
    let toks = &model.toks[stmt.start..=stmt.end];
    for (k, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && ORDER_SINKS.contains(&t.text.as_str()) {
            return true;
        }
        // Integer turbofish sums: `sum::<u64>()`.
        if t.is_ident("sum")
            && toks.get(k + 1).map(|t| t.is_punct("::")).unwrap_or(false)
            && toks.get(k + 2).map(|t| t.is_punct("<")).unwrap_or(false)
            && toks
                .get(k + 3)
                .map(|t| INT_TYPES.contains(&t.text.as_str()))
                .unwrap_or(false)
        {
            return true;
        }
        // Collecting back into a keyed container is order-insensitive.
        if t.is_ident("collect") {
            let tail = &toks[k..];
            if tail
                .iter()
                .take(12)
                .any(|t| t.kind == TokKind::Ident && UNORDERED_TYPES.contains(&t.text.as_str()))
            {
                return true;
            }
        }
    }
    false
}

/// Whether the statement feeds a float reduction (`sum::<f64>` or a
/// `fold` seeded with a float literal).
fn stmt_has_float_reduction(model: &FileModel, i: usize) -> bool {
    let Some(stmt) = model.stmt_of(i) else {
        return false;
    };
    let toks = &model.toks[stmt.start..=stmt.end];
    for (k, t) in toks.iter().enumerate() {
        if t.is_ident("sum")
            && toks.get(k + 1).map(|t| t.is_punct("::")).unwrap_or(false)
            && toks.get(k + 2).map(|t| t.is_punct("<")).unwrap_or(false)
            && toks
                .get(k + 3)
                .map(|t| t.is_ident("f64") || t.is_ident("f32"))
                .unwrap_or(false)
        {
            return true;
        }
        if t.is_ident("fold")
            && toks.get(k + 1).map(|t| t.is_punct("(")).unwrap_or(false)
            && toks
                .get(k + 2)
                .map(|t| t.kind == TokKind::Num && t.text.contains('.'))
                .unwrap_or(false)
        {
            return true;
        }
    }
    false
}

/// Runs the pass over one file.
pub fn check(model: &FileModel, out: &mut Vec<Violation>) {
    let unordered = unordered_idents(model);
    if unordered.is_empty() {
        return;
    }
    let toks = &model.toks;

    // Method-chain iteration sites: `name.iter()`, `self.name.keys()`, …
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !unordered.contains(&t.text) {
            continue;
        }
        let is_iter_call = toks.get(i + 1).map(|t| t.is_punct(".")).unwrap_or(false)
            && toks
                .get(i + 2)
                .map(|t| t.kind == TokKind::Ident && ITER_METHODS.contains(&t.text.as_str()))
                .unwrap_or(false)
            && toks.get(i + 3).map(|t| t.is_punct("(")).unwrap_or(false);
        if !is_iter_call {
            continue;
        }
        if stmt_has_float_reduction(model, i) {
            emit(model, "float-accum", i, out);
        } else if !stmt_has_order_sink(model, i) {
            emit(model, "unordered-iter", i, out);
        }
    }

    // Direct `for x in map` / `for x in &map` loops: the header is just
    // the identifier (method-chain headers were handled above).
    for l in &model.loops {
        let header: Vec<&Tok> = toks[l.header_start..l.header_end]
            .iter()
            .filter(|t| !t.is_punct("&") && !t.is_ident("mut"))
            .collect();
        let [only] = header.as_slice() else {
            continue;
        };
        if only.kind != TokKind::Ident || !unordered.contains(&only.text) {
            continue;
        }
        emit(model, "unordered-iter", l.header_start, out);
        // Float accumulation inside the loop body: `acc += <expr with a
        // float literal>` is order-dependent.
        let mut k = l.body_start;
        while k < l.body_end {
            if toks[k].is_punct("+=") {
                let mut j = k + 1;
                while j < l.body_end && !toks[j].is_punct(";") {
                    if toks[j].kind == TokKind::Num && toks[j].text.contains('.') {
                        emit(model, "float-accum", k, out);
                        break;
                    }
                    j += 1;
                }
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze_one;

    #[test]
    fn unordered_iteration_fires_and_sorting_exempts() {
        let src = "fn f() {\n    let m: FxHashMap<u32, u32> = FxHashMap::default();\n    let v: Vec<_> = m.iter().collect::<Vec<_>>();\n}\n";
        assert!(analyze_one("crates/x/src/a.rs", src)
            .iter()
            .any(|v| v.rule == "unordered-iter"));

        let src = "fn f() {\n    let m: FxHashMap<u32, u32> = FxHashMap::default();\n    let mut v: Vec<_> = m.iter().collect::<Vec<_>>();\n    v.sort_unstable();\n}\n";
        // The sort in the immediately following statement exempts the
        // collect — the standard burn-down shape.
        let hits = analyze_one("crates/x/src/a.rs", src);
        assert!(hits.iter().all(|v| v.rule != "unordered-iter"));
    }

    #[test]
    fn btree_iteration_is_silent() {
        let src =
            "fn f(m: &BTreeMap<u32, u32>) {\n    for (k, v) in m.iter() { use_it(k, v); }\n}\n";
        assert!(analyze_one("crates/x/src/a.rs", src)
            .iter()
            .all(|v| v.rule != "unordered-iter"));
    }

    #[test]
    fn float_sum_over_unordered_is_float_accum() {
        let src =
            "fn f(weights: FxHashMap<u32, f64>) -> f64 {\n    weights.values().sum::<f64>()\n}\n";
        let v = analyze_one("crates/x/src/a.rs", src);
        assert!(v.iter().any(|v| v.rule == "float-accum"));
        assert!(v.iter().all(|v| v.rule != "unordered-iter"));
    }

    #[test]
    fn counting_sinks_are_exempt() {
        let src = "fn f(m: FxHashSet<u32>) -> usize {\n    m.iter().count()\n}\n";
        assert!(analyze_one("crates/x/src/a.rs", src)
            .iter()
            .all(|v| v.rule != "unordered-iter"));
    }
}
