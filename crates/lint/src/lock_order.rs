//! The lock/ledger-ordering pass: every multi-ledger path acquires
//! shard ledgers in **ascending shard order** and releases in
//! **reverse** — the two-phase-commit discipline `crates/shard`'s
//! gateway depends on for deadlock-freedom and deterministic rollback.
//!
//! What counts as a "ledger vector": an identifier literally named
//! `ledgers`, or any identifier declared in-file as a collection of
//! `CommitLedger`s. Mutation sites are either **indexed**
//! (`ledgers[k].commit(…)`) or **loop-borne** (a `for` loop whose
//! header iterates the ledger vector and whose body calls a mutation
//! method on the loop variable).
//!
//! A loop's iteration source is **ascending** when it visibly iterates
//! in increasing shard order: a `BTreeMap` keyed by shard (declared
//! in-file), the ledger vector itself (optionally `.enumerate()`d), or
//! an identifier documented ascending with a `lint:ascending(name)`
//! marker. A trailing `.rev()` turns an ascending source into a
//! **descending** one.
//!
//! Enforcement:
//!
//! * acquisition-class methods (`commit`, `apply_fault`,
//!   `reclaim_owner`, `set_default_owner`) looped over ledgers must
//!   run ascending;
//! * `release` loops must run **descending** (reverse of acquisition);
//! * two or more indexed mutation sites outside any loop in one
//!   function form a multi-ledger path with an order the pass cannot
//!   verify — each site is flagged;
//! * a `lint:ascending` claim is checked at its producers: every
//!   `.push(` onto a marked identifier must sit inside an ascending
//!   loop.
//!
//! Declared-ascending values that round-trip through storage (e.g. a
//! lease table) cannot be traced; the marker plus its producer checks
//! are the documented soundness boundary.

use crate::lexer::{Tok, TokKind};
use crate::scan::{FileModel, ForLoop};
use crate::{emit, Violation};

/// `CommitLedger` methods that mutate ledger state.
const MUTATIONS: &[&str] = &[
    "commit",
    "release",
    "apply_fault",
    "reclaim_owner",
    "set_default_owner",
];

/// Identifiers declared in-file as a collection of `CommitLedger`s
/// (plus the conventional name `ledgers`).
fn ledger_vec_idents(model: &FileModel) -> Vec<String> {
    let mut names = vec!["ledgers".to_string()];
    let toks = &model.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("CommitLedger") {
            continue;
        }
        let Some(stmt) = model.stmt_of(i) else {
            continue;
        };
        let slice = &toks[stmt.start..=stmt.end];
        let is_collection = slice.iter().any(|t| t.is_ident("Vec") || t.is_punct("["));
        if !is_collection {
            continue;
        }
        // Bind to the identifier before the `:` or `=` closest to the
        // start of the statement (a parameter or let binding).
        for j in (stmt.start + 1..i).rev() {
            if toks[j].is_punct(":") || toks[j].is_punct("=") {
                if toks[j - 1].kind == TokKind::Ident {
                    let name = toks[j - 1].text.clone();
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
                break;
            }
        }
    }
    names
}

/// Identifiers declared in-file with a `BTreeMap`/`BTreeSet` type or
/// constructor (ascending iteration by construction).
fn btree_idents(model: &FileModel) -> Vec<String> {
    let toks = &model.toks;
    let mut names = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("BTreeMap") && !t.is_ident("BTreeSet") {
            continue;
        }
        let stmt_start = model.stmt_of(i).map(|s| s.start).unwrap_or(0);
        let mut j = i;
        while j > stmt_start {
            j -= 1;
            let p = &toks[j];
            if p.is_punct(":") || p.is_punct("=") {
                if j > stmt_start && toks[j - 1].kind == TokKind::Ident {
                    let name = toks[j - 1].text.clone();
                    if name != "mut" && !names.contains(&name) {
                        names.push(name);
                    }
                }
                break;
            }
            if p.is_punct("->") || p.is_punct(",") || p.is_punct("(") || p.is_punct(")") {
                break;
            }
        }
    }
    names
}

/// How a loop header iterates, as far as the pass can see.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Order {
    Ascending,
    Descending,
    Unknown,
}

fn classify_header(
    header: &[Tok],
    ledger_vecs: &[String],
    btrees: &[String],
    ascending_marked: &[String],
) -> Order {
    let reversed = header
        .windows(3)
        .any(|w| w[0].is_punct(".") && w[1].is_ident("rev") && w[2].is_punct("("));
    let base_ascending = header.iter().any(|t| {
        t.kind == TokKind::Ident
            && (ledger_vecs.contains(&t.text)
                || btrees.contains(&t.text)
                || ascending_marked.contains(&t.text))
    });
    match (base_ascending, reversed) {
        (true, false) => Order::Ascending,
        (true, true) => Order::Descending,
        (false, _) => Order::Unknown,
    }
}

fn header_of<'m>(model: &'m FileModel, l: &ForLoop) -> &'m [Tok] {
    &model.toks[l.header_start..l.header_end]
}

/// Runs the pass over one file.
pub fn check_file(model: &FileModel, out: &mut Vec<Violation>) {
    let toks = &model.toks;
    let ledger_vecs = ledger_vec_idents(model);
    let btrees = btree_idents(model);
    let marked = model.ascending.clone();

    // If the file never mentions CommitLedger or a `ledgers` index,
    // there is nothing to order.
    let touches_ledgers = toks
        .iter()
        .any(|t| t.is_ident("CommitLedger") || t.is_ident("ledgers"));
    if !touches_ledgers {
        return;
    }

    // Indexed sites: `<vec>[ … ].<mutation>(`.
    // Per-function bookkeeping of non-loop indexed sites.
    let mut unlooped_by_fn: Vec<(usize, usize)> = Vec::new(); // (fn body_start, tok idx)
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !ledger_vecs.contains(&t.text) {
            continue;
        }
        if !toks.get(i + 1).map(|t| t.is_punct("[")).unwrap_or(false) {
            continue;
        }
        // Find the matching `]`, then require `.<mutation>(`.
        let mut depth = 0i64;
        let mut j = i + 1;
        while j < toks.len() {
            if toks[j].is_punct("[") {
                depth += 1;
            } else if toks[j].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let is_mutation = toks.get(j + 1).map(|t| t.is_punct(".")).unwrap_or(false)
            && toks
                .get(j + 2)
                .map(|t| t.kind == TokKind::Ident && MUTATIONS.contains(&t.text.as_str()))
                .unwrap_or(false)
            && toks.get(j + 3).map(|t| t.is_punct("(")).unwrap_or(false);
        if !is_mutation {
            continue;
        }
        let method = toks[j + 2].text.clone();
        if let Some(l) = model.loop_of(i) {
            let order = classify_header(header_of(model, l), &ledger_vecs, &btrees, &marked);
            let need = if method == "release" {
                Order::Descending
            } else {
                Order::Ascending
            };
            if order != need {
                emit(model, "lock-order", j + 2, out);
            }
        } else {
            let body_start = model.fn_of(i).map(|f| f.body_start).unwrap_or(usize::MAX);
            unlooped_by_fn.push((body_start, j + 2));
        }
    }
    // Two or more non-loop indexed mutations in one function: an
    // ordering the pass cannot verify.
    for &(fn_start, site) in &unlooped_by_fn {
        let in_same_fn = unlooped_by_fn
            .iter()
            .filter(|&&(f, _)| f == fn_start)
            .count();
        if in_same_fn >= 2 {
            emit(model, "lock-order", site, out);
        }
    }

    // Loop-borne sites: a loop over the ledger vector whose body calls
    // a mutation method on anything.
    for l in &model.loops {
        let header = header_of(model, l);
        let over_ledgers = header
            .iter()
            .any(|t| t.kind == TokKind::Ident && ledger_vecs.contains(&t.text));
        if !over_ledgers {
            continue;
        }
        let order = classify_header(header, &ledger_vecs, &btrees, &marked);
        for k in l.body_start..l.body_end.min(toks.len()) {
            if !toks[k].is_punct(".") {
                continue;
            }
            let is_mut = toks
                .get(k + 1)
                .map(|t| t.kind == TokKind::Ident && MUTATIONS.contains(&t.text.as_str()))
                .unwrap_or(false)
                && toks.get(k + 2).map(|t| t.is_punct("(")).unwrap_or(false);
            if !is_mut {
                continue;
            }
            // Indexed sites inside this body were already judged above.
            if toks
                .get(k.wrapping_sub(1))
                .map(|t| t.is_punct("]"))
                .unwrap_or(false)
            {
                continue;
            }
            let method = &toks[k + 1].text;
            let need = if method == "release" {
                Order::Descending
            } else {
                Order::Ascending
            };
            if order != need {
                emit(model, "lock-order", k + 1, out);
            }
        }
    }

    // Producer checks for `lint:ascending` claims: every push onto a
    // marked identifier must happen inside an ascending loop.
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !marked.contains(&t.text) {
            continue;
        }
        let is_push = toks.get(i + 1).map(|t| t.is_punct(".")).unwrap_or(false)
            && toks.get(i + 2).map(|t| t.is_ident("push")).unwrap_or(false)
            && toks.get(i + 3).map(|t| t.is_punct("(")).unwrap_or(false);
        if !is_push {
            continue;
        }
        let ok = model
            .loop_of(i)
            .map(|l| {
                classify_header(header_of(model, l), &ledger_vecs, &btrees, &marked)
                    == Order::Ascending
            })
            .unwrap_or(false);
        if !ok {
            emit(model, "lock-order", i + 2, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze_one;

    #[test]
    fn ascending_commit_loop_is_clean() {
        let src = "fn two_phase(ledgers: &mut [CommitLedger], by_shard: BTreeMap<usize, L>) {\n    for (shard, loads) in by_shard {\n        ledgers[shard].commit(loads, v).ok();\n    }\n}\n";
        assert!(analyze_one("crates/shard/src/engine.rs", src)
            .iter()
            .all(|v| v.rule != "lock-order"));
    }

    #[test]
    fn unordered_commit_loop_fires() {
        let src = "fn two_phase(ledgers: &mut [CommitLedger], shards: Vec<usize>) {\n    for shard in shards {\n        ledgers[shard].commit(a, b).ok();\n    }\n}\n";
        assert!(analyze_one("crates/shard/src/engine.rs", src)
            .iter()
            .any(|v| v.rule == "lock-order"));
    }

    #[test]
    fn forward_release_loop_fires_reverse_passes() {
        let fwd = "// lint:ascending(parts)\nfn rollback(ledgers: &mut [CommitLedger], parts: &[(usize, L)]) {\n    for &(shard, sub) in parts.iter() {\n        ledgers[shard].release(sub).ok();\n    }\n}\n";
        assert!(analyze_one("crates/shard/src/engine.rs", fwd)
            .iter()
            .any(|v| v.rule == "lock-order"));

        let rev = "// lint:ascending(parts)\nfn rollback(ledgers: &mut [CommitLedger], parts: &[(usize, L)]) {\n    for &(shard, sub) in parts.iter().rev() {\n        ledgers[shard].release(sub).ok();\n    }\n}\n";
        assert!(analyze_one("crates/shard/src/engine.rs", rev)
            .iter()
            .all(|v| v.rule != "lock-order"));
    }

    #[test]
    fn loop_borne_mutation_over_ledgers_is_ascending() {
        let src = "fn sweep(ledgers: &mut Vec<CommitLedger>) {\n    for ledger in ledgers.iter_mut() {\n        ledger.set_default_owner(None);\n    }\n}\n";
        assert!(analyze_one("crates/shard/src/engine.rs", src)
            .iter()
            .all(|v| v.rule != "lock-order"));
    }
}
