//! `dagsfc-lint` — the workspace's syntax-aware static-analysis engine.
//!
//! The engine lexes every production source file into a real token
//! stream ([`lexer`]), builds a statement/item model ([`scan`]), and
//! runs two layers of checks:
//!
//! * **Token rules** ([`rules`]) — the original lint catalog (panic
//!   freedom, seeded randomness, oracle-routed paths, audited commits,
//!   …) re-expressed on tokens, so string literals, comments, and
//!   multi-line statements are classified correctly.
//! * **Semantic passes** — three cross-file analyses:
//!   [`determinism`] (unordered `HashMap`/`HashSet` iteration feeding
//!   ordered output, unseeded RNG constructors, float accumulation
//!   over unordered sources), [`lock_order`] (every multi-ledger path
//!   acquires shard ledgers in ascending shard order and releases in
//!   reverse), and [`audit_gate`] (every `CommitLedger` commit is
//!   reachable only through `embed_and_commit` / the audited shard
//!   2PC phases, and every wrapper caller audits the result).
//!
//! Violations honor `lint:allow(rule)` markers (whole-statement
//! scoped), `#[cfg(test)]` regions, and a checked-in baseline file
//! (`lint-baseline.txt`, see [`baseline`]). Output formats: text,
//! JSON, SARIF 2.1.0 ([`output`]).
//!
//! The old substring engine is preserved verbatim in [`legacy`] purely
//! so the test suite can demonstrate, differentially, the
//! misclassifications the token engine fixes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit_gate;
pub mod baseline;
pub mod cli;
pub mod determinism;
pub mod legacy;
pub mod lexer;
pub mod lock_order;
pub mod output;
pub mod rules;
pub mod scan;

use scan::FileModel;

/// One source file handed to the engine.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// Full source text.
    pub text: String,
}

/// A single finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule name (stable identifier, used in allow markers/baselines).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Trimmed text of the offending line.
    pub text: String,
}

/// Every rule the engine can emit, with its rationale (drives the text
/// summary and the SARIF rule metadata).
pub const RULES: &[(&str, &str)] = &[
    (
        "unwrap",
        "production code must not panic; return Err or justify with an allow",
    ),
    (
        "expect",
        "production code must not panic; return Err or justify with an allow",
    ),
    (
        "retired-accounting",
        "the panicking accounting API was retired; use try_account/try_cost",
    ),
    (
        "wallclock",
        "solver/sim behavior must be a function of the seed, not the wall clock",
    ),
    (
        "unseeded-rng",
        "all randomness must flow from an explicit seed for reproducibility",
    ),
    (
        "raw-routing",
        "single-path routing must go through the shared PathOracle cache",
    ),
    (
        "std-hashmap",
        "hot paths must use the seeded FxHashMap/FxHashSet or index vectors",
    ),
    (
        "raw-commit",
        "embeddings are committed through the auditing embed_and_commit wrapper",
    ),
    (
        "raw-hop-delay",
        "hop-count -> delay conversion lives only in crates/core/src/delay.rs",
    ),
    (
        "shard-ledger",
        "a shard's CommitLedger is private to the shard gateway API (2PC)",
    ),
    (
        "float-eq",
        "objective costs are f64; compare with a tolerance, never == / !=",
    ),
    (
        "unordered-iter",
        "iterating a HashMap/HashSet feeds nondeterministic order into output; sort, use a \
         BTree container, or justify why order cannot escape",
    ),
    (
        "float-accum",
        "float accumulation over an unordered source makes the sum order-dependent; \
         accumulate in sorted order",
    ),
    (
        "raw-heap-routing",
        "routing kernels use the monotone bucket queue; BinaryHeap lives only in the \
         designated heap_fallback module",
    ),
    (
        "raw-layer-access",
        "solver candidate generation reads the layered view only through the \
         solvers/layering seam, so the partial-order equivalence proof stays centralized",
    ),
    (
        "lock-order",
        "multi-ledger paths must acquire shard ledgers in ascending shard order and \
         release in reverse (the 2PC invariant)",
    ),
    (
        "audit-gate",
        "CommitLedger commits are reachable only via embed_and_commit / the audited shard \
         2PC phases, and every wrapper caller must audit the outcome",
    ),
];

/// Path-derived scope flags for one file (mirrors the old engine's
/// scoping exactly).
#[derive(Debug, Clone, Copy, Default)]
pub struct FileCtx {
    /// Inside `crates/net` (raw-routing / raw-commit exempt).
    pub in_net: bool,
    /// Routing kernels or the BBE engine (std-hashmap applies).
    pub in_hot: bool,
    /// The canonical delay model file (raw-hop-delay exempt).
    pub in_delay_model: bool,
    /// Inside `crates/shard/src` (shard-ledger exempt).
    pub in_shard: bool,
    /// Inside `crates/net/src/routing/` (raw-heap-routing applies).
    pub in_routing: bool,
    /// The designated heap-fallback kernel module (raw-heap-routing
    /// exempt — it is the sanctioned home of `BinaryHeap` routing).
    pub in_heap_fallback: bool,
    /// The seeded map wrapper itself (determinism pass exempt — it is
    /// the sanctioned definition site).
    pub in_fxmap: bool,
    /// Inside `crates/core/src/solvers/` (raw-layer-access applies).
    pub in_solvers: bool,
    /// The layering seam module itself (raw-layer-access exempt — it
    /// is the sanctioned home of direct `layers()`/`layer()` reads).
    pub in_layering: bool,
}

impl FileCtx {
    /// Derives the scope flags from a workspace-relative path.
    pub fn from_path(path: &str) -> FileCtx {
        let p = path.replace('\\', "/");
        FileCtx {
            in_net: p.starts_with("crates/net/") || p.contains("/crates/net/"),
            in_hot: p.contains("crates/net/src/routing/") || p.contains("solvers/bbe/"),
            in_delay_model: p.ends_with("crates/core/src/delay.rs"),
            in_shard: p.contains("crates/shard/src/"),
            in_routing: p.contains("crates/net/src/routing/"),
            in_heap_fallback: p.ends_with("crates/net/src/routing/heap_fallback.rs"),
            in_fxmap: p.ends_with("crates/net/src/fxmap.rs"),
            in_solvers: p.contains("crates/core/src/solvers/"),
            in_layering: p.ends_with("crates/core/src/solvers/layering.rs"),
        }
    }
}

/// Emits a violation for `rule` at token `i` unless the site is inside
/// a test region or suppressed by an allow marker.
pub(crate) fn emit(
    model: &FileModel,
    rule: &'static str,
    tok_idx: usize,
    out: &mut Vec<Violation>,
) {
    let line = match model.toks.get(tok_idx) {
        Some(t) => t.line,
        None => return,
    };
    if model.in_test_region(line) {
        return;
    }
    if model.is_allowed(rule, tok_idx, line) {
        return;
    }
    out.push(Violation {
        rule,
        path: model.path.clone(),
        line,
        text: model.line_text(line).to_string(),
    });
}

/// Runs the full engine — token rules plus all three semantic passes —
/// over `files` and returns the unallowed violations, sorted by
/// `(path, line, rule)`.
pub fn analyze(files: &[SourceFile]) -> Vec<Violation> {
    let models: Vec<(FileModel, FileCtx)> = files
        .iter()
        .map(|f| {
            (
                FileModel::build(&f.path, &f.text),
                FileCtx::from_path(&f.path),
            )
        })
        .collect();
    let mut out = Vec::new();
    for (model, ctx) in &models {
        rules::check_token_rules(model, *ctx, &mut out);
        if !ctx.in_fxmap {
            determinism::check(model, &mut out);
        }
        lock_order::check_file(model, &mut out);
    }
    audit_gate::check(&models, &mut out);
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    out.dedup();
    out
}

/// Convenience wrapper for tests: analyze one in-memory file.
pub fn analyze_one(path: &str, text: &str) -> Vec<Violation> {
    analyze(&[SourceFile {
        path: path.to_string(),
        text: text.to_string(),
    }])
}
