//! The original lint catalog re-expressed on token streams.
//!
//! Every rule the substring engine enforced is matched structurally
//! here: a method call is `.` + ident + `(` as *tokens*, so a pattern
//! inside a string literal or a comment can never fire, and a
//! statement split across physical lines is still one sequence.

use crate::lexer::{Tok, TokKind};
use crate::scan::FileModel;
use crate::{emit, FileCtx, Violation};

fn is_method_call(toks: &[Tok], i: usize, name: &str) -> bool {
    toks[i].is_punct(".")
        && toks.get(i + 1).map(|t| t.is_ident(name)).unwrap_or(false)
        && toks.get(i + 2).map(|t| t.is_punct("(")).unwrap_or(false)
}

fn path2(toks: &[Tok], i: usize, a: &str, b: &str) -> bool {
    toks[i].is_ident(a)
        && toks.get(i + 1).map(|t| t.is_punct("::")).unwrap_or(false)
        && toks.get(i + 2).map(|t| t.is_ident(b)).unwrap_or(false)
}

fn ident_call(toks: &[Tok], i: usize, name: &str) -> bool {
    toks[i].is_ident(name) && toks.get(i + 1).map(|t| t.is_punct("(")).unwrap_or(false)
}

/// Runs every token rule over one file.
pub fn check_token_rules(model: &FileModel, ctx: FileCtx, out: &mut Vec<Violation>) {
    let toks = &model.toks;
    for i in 0..toks.len() {
        let t = &toks[i];

        // unwrap / expect — panic freedom.
        if is_method_call(toks, i, "unwrap")
            && toks.get(i + 3).map(|t| t.is_punct(")")).unwrap_or(false)
        {
            emit(model, "unwrap", i + 1, out);
        }
        if is_method_call(toks, i, "expect") {
            emit(model, "expect", i + 1, out);
        }

        // retired-accounting — the panicking accounting API.
        if is_method_call(toks, i, "account") {
            emit(model, "retired-accounting", i + 1, out);
        }
        if is_method_call(toks, i, "cost") {
            emit(model, "retired-accounting", i + 1, out);
        }

        // wallclock.
        if path2(toks, i, "SystemTime", "now") {
            emit(model, "wallclock", i, out);
        }

        // unseeded-rng (the determinism pass's constructor catalog is
        // folded in here: same rule name, broader net than the old
        // engine's three substrings).
        if ident_call(toks, i, "thread_rng")
            || ident_call(toks, i, "from_entropy")
            || ident_call(toks, i, "from_os_rng")
            || path2(toks, i, "rand", "random")
            || t.is_ident("OsRng")
        {
            // A definition (`fn thread_rng(`) would be the shim itself.
            let prev_is_fn = i > 0 && toks[i - 1].is_ident("fn");
            if !prev_is_fn {
                emit(model, "unseeded-rng", i, out);
            }
        }

        // raw-routing — only outside crates/net.
        if !ctx.in_net {
            let routed = toks[i].is_ident("routing")
                && toks.get(i + 1).map(|t| t.is_punct("::")).unwrap_or(false)
                && toks
                    .get(i + 2)
                    .map(|t| {
                        t.kind == TokKind::Ident
                            && (t.text.starts_with("dijkstra")
                                || t.text.starts_with("min_cost_path"))
                    })
                    .unwrap_or(false);
            if routed || path2(toks, i, "ShortestPathTree", "build") {
                emit(model, "raw-routing", i, out);
            }
            // Bare `min_cost_path(` call: a *different* identifier such
            // as `oracle_min_cost_path` is a different token, so the
            // old lookbehind hack is structural here. A definition
            // (`fn min_cost_path(`) and a method call (`.min_cost_path(`,
            // the oracle session API) stay exempt.
            if ident_call(toks, i, "min_cost_path") {
                let prev = i.checked_sub(1).map(|p| &toks[p]);
                let is_def = prev.map(|p| p.is_ident("fn")).unwrap_or(false);
                let is_method = prev.map(|p| p.is_punct(".")).unwrap_or(false);
                if !is_def && !is_method {
                    emit(model, "raw-routing", i, out);
                }
            }
        }

        // std-hashmap — hot paths only. `FxHashMap` is a distinct
        // identifier token, so it can never fire.
        if ctx.in_hot && (t.is_ident("HashMap") || t.is_ident("HashSet")) {
            emit(model, "std-hashmap", i, out);
        }

        // raw-heap-routing — routing kernels run on the bucket queue;
        // `BinaryHeap` is confined to the heap_fallback module.
        if ctx.in_routing && !ctx.in_heap_fallback && t.is_ident("BinaryHeap") {
            emit(model, "raw-heap-routing", i, out);
        }

        // raw-commit — only outside crates/net.
        if !ctx.in_net && is_method_call(toks, i, "commit") {
            emit(model, "raw-commit", i + 1, out);
        }

        // raw-hop-delay — everywhere but the canonical delay model.
        if !ctx.in_delay_model {
            if t.is_punct("*") {
                let neighbor_per_hop = |j: Option<usize>| {
                    j.and_then(|j| toks.get(j))
                        .map(|t| t.kind == TokKind::Ident && t.text.contains("per_hop"))
                        .unwrap_or(false)
                };
                if neighbor_per_hop(i.checked_sub(1)) || neighbor_per_hop(Some(i + 1)) {
                    emit(model, "raw-hop-delay", i, out);
                }
            }
            if ident_call(toks, i, "hops")
                && toks.get(i + 2).map(|t| t.is_punct(")")).unwrap_or(false)
                && toks.get(i + 3).map(|t| t.is_ident("as")).unwrap_or(false)
                && toks.get(i + 4).map(|t| t.is_ident("f64")).unwrap_or(false)
            {
                emit(model, "raw-hop-delay", i, out);
            }
        }

        // shard-ledger — only outside crates/shard/src.
        if !ctx.in_shard {
            if ident_call(toks, i, "raw_ledger") {
                emit(model, "shard-ledger", i, out);
            }
            if toks[i].is_punct(".")
                && toks
                    .get(i + 1)
                    .map(|t| t.is_ident("ledgers"))
                    .unwrap_or(false)
                && toks.get(i + 2).map(|t| t.is_punct("[")).unwrap_or(false)
            {
                emit(model, "shard-ledger", i + 1, out);
            }
        }

        // raw-layer-access — solvers read the layered view only
        // through the layering seam (`layering::layers` /
        // `layering::layer` are path calls, not method calls, so the
        // seam's own API can never fire).
        if ctx.in_solvers
            && !ctx.in_layering
            && (is_method_call(toks, i, "layers") || is_method_call(toks, i, "layer"))
        {
            emit(model, "raw-layer-access", i + 1, out);
        }

        // float-eq — `cost`-named values and `total()` results.
        if t.is_punct("==") || t.is_punct("!=") {
            let prev = i.checked_sub(1).map(|p| &toks[p]);
            let cost_ident = prev
                .map(|p| p.kind == TokKind::Ident && p.text.ends_with("cost"))
                .unwrap_or(false);
            let total_call = i >= 3
                && toks[i - 1].is_punct(")")
                && toks[i - 2].is_punct("(")
                && toks[i - 3].is_ident("total");
            if cost_ident || total_call {
                emit(model, "float-eq", i, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze_one;

    #[test]
    fn unwrap_fires_across_lines_but_not_in_strings() {
        let v = analyze_one("crates/x/src/a.rs", "let a = b\n    .unwrap();\n");
        assert_eq!(v.iter().filter(|v| v.rule == "unwrap").count(), 1);
        assert_eq!(v[0].line, 2);

        let v = analyze_one("crates/x/src/a.rs", "let m = \"don't .unwrap() here\";\n");
        assert!(v.iter().all(|v| v.rule != "unwrap"));
    }

    #[test]
    fn scope_gating_matches_old_engine() {
        let src = "let p = routing::dijkstra_tree(&g);\n";
        assert!(analyze_one("crates/sim/src/a.rs", src)
            .iter()
            .any(|v| v.rule == "raw-routing"));
        assert!(analyze_one("crates/net/src/oracle.rs", src)
            .iter()
            .all(|v| v.rule != "raw-routing"));
    }

    #[test]
    fn fx_maps_never_fire_std_hashmap() {
        let src = "let m: FxHashMap<u32, u32> = FxHashMap::default();\n";
        assert!(analyze_one("crates/net/src/routing/d.rs", src)
            .iter()
            .all(|v| v.rule != "std-hashmap"));
        let src = "use std::collections::HashMap;\n";
        assert!(analyze_one("crates/net/src/routing/d.rs", src)
            .iter()
            .any(|v| v.rule == "std-hashmap"));
    }
}
