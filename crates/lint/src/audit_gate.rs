//! The audit-coverage pass: proves, across the whole workspace, that
//! every `CommitLedger` commit is reachable only through the audited
//! entry points.
//!
//! Two layers:
//!
//! 1. **Direct commits.** A `.commit(…)` whose receiver is a ledger
//!    (`ledger`, `ledgers[…]`, `raw_ledger(…)`, or any identifier
//!    containing "ledger") may appear only inside the sanctioned
//!    wrappers — `embed_and_commit` (the solve → account → commit
//!    kernel in `crates/sim`) and `two_phase_reserve` (phase 1 of the
//!    shard gateway's 2PC, whose result is audited in phase 2 before
//!    any lease is honored). Any other function committing to a ledger
//!    is a new unaudited commit path and fails the build.
//!
//! 2. **Wrapper callers.** Every function that *calls* a sanctioned
//!    wrapper must itself audit the outcome: its body must reference
//!    the constraint auditor (`audit_outcome` / `auditor`). This is
//!    what keeps the serve engine's audit-on-commit, the chaos
//!    runner's per-accept audit, and the lifecycle's sampled audit
//!    from silently disappearing in a refactor.
//!
//! `crates/net/src/ledger.rs` (the `CommitLedger` definition itself)
//! and test regions are exempt; everything else in the workspace is in
//! scope — the pass is cross-file by construction.

use crate::lexer::TokKind;
use crate::scan::FileModel;
use crate::{emit, FileCtx, Violation};

/// Functions allowed to commit to a ledger directly.
const SANCTIONED_WRAPPERS: &[&str] = &["embed_and_commit", "two_phase_reserve"];

/// Body markers that count as auditing the outcome.
const AUDIT_MARKERS: &[&str] = &["audit_outcome", "auditor"];

/// Runs the pass over the whole file set.
pub fn check(models: &[(FileModel, FileCtx)], out: &mut Vec<Violation>) {
    for (model, _) in models {
        if model.path.ends_with("crates/net/src/ledger.rs")
            || model.path == "crates/net/src/ledger.rs"
        {
            continue;
        }
        check_direct_commits(model, out);
        check_wrapper_callers(model, out);
    }
}

/// Whether the token before `dot_idx` resolves to a ledger-ish
/// receiver: `ledger.`, `ledgers[…].`, `raw_ledger(…).`, `x.ledger.`.
fn ledger_receiver(model: &FileModel, dot_idx: usize) -> bool {
    let toks = &model.toks;
    let Some(prev) = dot_idx.checked_sub(1) else {
        return false;
    };
    let t = &toks[prev];
    if t.kind == TokKind::Ident {
        return t.text.contains("ledger");
    }
    // `…].` or `…).` — walk to the matching opener and look at the
    // identifier in front of it.
    let (open, close) = if t.is_punct("]") {
        ("[", "]")
    } else if t.is_punct(")") {
        ("(", ")")
    } else {
        return false;
    };
    let mut depth = 0i64;
    let mut j = prev;
    loop {
        if toks[j].is_punct(close) {
            depth += 1;
        } else if toks[j].is_punct(open) {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if j == 0 {
            return false;
        }
        j -= 1;
    }
    j.checked_sub(1)
        .map(|k| toks[k].kind == TokKind::Ident && toks[k].text.contains("ledger"))
        .unwrap_or(false)
}

fn check_direct_commits(model: &FileModel, out: &mut Vec<Violation>) {
    let toks = &model.toks;
    for i in 0..toks.len() {
        if !toks[i].is_punct(".") {
            continue;
        }
        let is_commit = toks
            .get(i + 1)
            .map(|t| t.is_ident("commit"))
            .unwrap_or(false)
            && toks.get(i + 2).map(|t| t.is_punct("(")).unwrap_or(false);
        if !is_commit || !ledger_receiver(model, i) {
            continue;
        }
        let sanctioned = model
            .fn_of(i)
            .map(|f| SANCTIONED_WRAPPERS.contains(&f.name.as_str()))
            .unwrap_or(false);
        if !sanctioned {
            emit(model, "audit-gate", i + 1, out);
        }
    }
}

fn check_wrapper_callers(model: &FileModel, out: &mut Vec<Violation>) {
    let toks = &model.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !SANCTIONED_WRAPPERS.contains(&t.text.as_str()) {
            continue;
        }
        // A call, not the definition and not a `use` import.
        if !toks.get(i + 1).map(|t| t.is_punct("(")).unwrap_or(false) {
            continue;
        }
        if i > 0 && toks[i - 1].is_ident("fn") {
            continue;
        }
        let Some(f) = model.fn_of(i) else {
            continue;
        };
        // The wrappers may compose (two_phase_reserve is not expected
        // to call embed_and_commit, but the rule should not trip on
        // wrapper-internal reuse).
        if SANCTIONED_WRAPPERS.contains(&f.name.as_str()) {
            continue;
        }
        let audits = toks[f.body_start..f.body_end]
            .iter()
            .any(|t| t.kind == TokKind::Ident && AUDIT_MARKERS.contains(&t.text.as_str()));
        if !audits {
            emit(model, "audit-gate", i, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::analyze_one;

    #[test]
    fn direct_commit_outside_wrappers_fires() {
        let src = "fn sneaky(ledger: &mut CommitLedger) {\n    ledger.commit(v, l).ok();\n}\n";
        assert!(analyze_one("crates/serve/src/x.rs", src)
            .iter()
            .any(|v| v.rule == "audit-gate"));
    }

    #[test]
    fn sanctioned_wrapper_commits_cleanly() {
        let src = "pub fn embed_and_commit(ledger: &mut CommitLedger) -> R {\n    ledger.commit(v, l)\n}\n";
        assert!(analyze_one("crates/sim/src/x.rs", src)
            .iter()
            .all(|v| v.rule != "audit-gate"));
    }

    #[test]
    fn unaudited_wrapper_caller_fires_audited_passes() {
        let bad = "fn serve_one(ledger: &mut CommitLedger) {\n    let s = embed_and_commit(ledger, &r, &sfc, &flow, a, seed);\n    keep(s);\n}\n";
        assert!(analyze_one("crates/serve/src/x.rs", bad)
            .iter()
            .any(|v| v.rule == "audit-gate"));

        let good = "fn serve_one(ledger: &mut CommitLedger, auditor: &A) {\n    let s = embed_and_commit(ledger, &r, &sfc, &flow, a, seed);\n    let report = auditor.audit_outcome(&r, &sfc, &flow, &s);\n    keep(report);\n}\n";
        assert!(analyze_one("crates/serve/src/x.rs", good)
            .iter()
            .all(|v| v.rule != "audit-gate"));
    }

    #[test]
    fn indexed_ledger_commit_is_seen() {
        let src =
            "fn sneaky2(ledgers: &mut [CommitLedger]) {\n    ledgers[0].commit(v, l).ok();\n}\n";
        assert!(analyze_one("crates/chaos/src/x.rs", src)
            .iter()
            .any(|v| v.rule == "audit-gate"));
    }
}
