//! A hand-rolled Rust lexer: tokens with line spans, fully aware of
//! string literals (including raw/byte/C strings), character literals
//! vs lifetimes, line comments, and *nested* block comments.
//!
//! The lexer is deliberately lossy in ways a compiler's cannot be — it
//! keeps only what the rule engine needs (token kind, text, line) — but
//! it is exact about the one thing the old substring engine got wrong:
//! *classification*. A `.unwrap()` inside a string literal is a `Str`
//! token; a `}` inside a string never closes a module; a rule pattern
//! split across physical lines is still one token sequence.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`foo`, `fn`, `r#type`).
    Ident,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Numeric literal (`42`, `1.0e-5`, `0xff_u32`).
    Num,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation / operator, longest-match (`::`, `..=`, `+`).
    Punct,
}

/// One token: its kind, exact text, and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexeme class.
    pub kind: TokKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }
}

/// One physical comment line (block comments are split per line so
/// marker lookup is uniform).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line this comment text sits on.
    pub line: u32,
    /// The comment text of that line (delimiters included on the first
    /// line of a block comment).
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens, in source order.
    pub toks: Vec<Tok>,
    /// Comment lines, in source order (doc comments included).
    pub comments: Vec<Comment>,
}

/// Three-character operators, longest-match first.
const PUNCT3: &[&str] = &["..=", "<<=", ">>=", "..."];
/// Two-character operators.
const PUNCT2: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "^=", "&=",
    "|=", "<<", ">>", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comment lines. Never fails: unterminated
/// literals are closed at end of file (a linter must degrade, not die).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Consumes chars of a quoted run (after the opening quote),
    // honoring backslash escapes; returns the index just past the
    // closing quote and the number of newlines crossed.
    fn quoted_end(b: &[char], mut i: usize, quote: char) -> (usize, u32) {
        let mut nl = 0;
        while i < b.len() {
            match b[i] {
                '\\' => i = (i + 2).min(b.len()),
                '\n' => {
                    nl += 1;
                    i += 1;
                }
                c if c == quote => return (i + 1, nl),
                _ => i += 1,
            }
        }
        (i, nl)
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                text: b[start..i].iter().collect(),
            });
            continue;
        }
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            // Nested block comment; emit one Comment record per
            // physical line so marker lookup works anywhere inside.
            let mut depth = 1;
            let mut seg_start = i;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else if b[i] == '\n' {
                    out.comments.push(Comment {
                        line,
                        text: b[seg_start..i].iter().collect(),
                    });
                    line += 1;
                    i += 1;
                    seg_start = i;
                } else {
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line,
                text: b[seg_start..i].iter().collect(),
            });
            continue;
        }
        // String-ish literals, including raw/byte/C prefixes. A raw
        // string r"…" / r#"…"# never processes escapes and may nest
        // quotes up to its # fence.
        if is_ident_start(c) {
            // Check for a literal prefix: r, b, c, br, cr followed by
            // `"` or (for raw forms) `#…"`.
            let mut j = i;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            let word: String = b[i..j].iter().collect();
            let raw_prefix = matches!(word.as_str(), "r" | "br" | "cr");
            let plain_prefix = matches!(word.as_str(), "b" | "c");
            if raw_prefix && j < n && (b[j] == '"' || b[j] == '#') {
                // Raw string: count the fence.
                let start = i;
                let start_line = line;
                let mut k = j;
                let mut fence = 0usize;
                while k < n && b[k] == '#' {
                    fence += 1;
                    k += 1;
                }
                if k < n && b[k] == '"' {
                    k += 1;
                    // Scan for `"` followed by `fence` hashes.
                    loop {
                        if k >= n {
                            break;
                        }
                        if b[k] == '\n' {
                            line += 1;
                            k += 1;
                            continue;
                        }
                        if b[k] == '"' {
                            let mut h = 0usize;
                            while k + 1 + h < n && h < fence && b[k + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == fence {
                                k += 1 + fence;
                                break;
                            }
                        }
                        k += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: b[start..k.min(n)].iter().collect(),
                        line: start_line,
                    });
                    i = k;
                    continue;
                }
                // `r#ident` raw identifier falls through below.
            }
            if plain_prefix && j < n && b[j] == '"' {
                let start = i;
                let start_line = line;
                let (end, nl) = quoted_end(&b, j + 1, '"');
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: b[start..end].iter().collect(),
                    line: start_line,
                });
                line += nl;
                i = end;
                continue;
            }
            if word == "b" && j < n && b[j] == '\'' {
                let start = i;
                let (end, nl) = quoted_end(&b, j + 1, '\'');
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: b[start..end].iter().collect(),
                    line,
                });
                line += nl;
                i = end;
                continue;
            }
            // `r#ident` raw identifier: strip the sigil, keep the name.
            if word == "r" && j + 1 < n && b[j] == '#' && is_ident_start(b[j + 1]) {
                let mut k = j + 1;
                while k < n && is_ident_continue(b[k]) {
                    k += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[j + 1..k].iter().collect(),
                    line,
                });
                i = k;
                continue;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: word,
                line,
            });
            i = j;
            continue;
        }
        if c == '"' {
            let start = i;
            let start_line = line;
            let (end, nl) = quoted_end(&b, i + 1, '"');
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: b[start..end].iter().collect(),
                line: start_line,
            });
            line += nl;
            i = end;
            continue;
        }
        // `'` begins either a char literal or a lifetime.
        if c == '\'' {
            let next = b.get(i + 1).copied();
            let is_char = match next {
                Some('\\') => true,
                Some(x) if is_ident_continue(x) => {
                    // 'a' is a char, 'a is a lifetime: look past the
                    // ident run for a closing quote.
                    let mut k = i + 1;
                    while k < n && is_ident_continue(b[k]) {
                        k += 1;
                    }
                    k < n && b[k] == '\''
                }
                Some(_) => true, // '(' etc — a one-char literal
                None => false,
            };
            if is_char {
                let (end, nl) = quoted_end(&b, i + 1, '\'');
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: b[i..end].iter().collect(),
                    line,
                });
                line += nl;
                i = end;
            } else {
                let mut k = i + 1;
                while k < n && is_ident_continue(b[k]) {
                    k += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[i..k].iter().collect(),
                    line,
                });
                i = k;
            }
            continue;
        }
        // Numbers: digits, then suffix/hex alnum run, then an optional
        // fractional part (only when the dot is followed by a digit, so
        // ranges like `0..10` stay two tokens) and exponent.
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (is_ident_continue(b[i])) {
                i += 1;
            }
            if i < n && b[i] == '.' && i + 1 < n && b[i + 1].is_ascii_digit() {
                i += 1;
                while i < n && is_ident_continue(b[i]) {
                    i += 1;
                }
                if i < n && (b[i - 1] == 'e' || b[i - 1] == 'E') && (b[i] == '+' || b[i] == '-') {
                    i += 1;
                    while i < n && b[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            } else if i < n && (b[i] == '+' || b[i] == '-') && (b[i - 1] == 'e' || b[i - 1] == 'E')
            {
                i += 1;
                while i < n && b[i].is_ascii_digit() {
                    i += 1;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Punctuation, longest match first.
        let rest: String = b[i..(i + 3).min(n)].iter().collect();
        let hit3 = PUNCT3.iter().find(|p| rest.starts_with(**p));
        if let Some(p) = hit3 {
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: (*p).to_string(),
                line,
            });
            i += p.len();
            continue;
        }
        let hit2 = PUNCT2.iter().find(|p| rest.starts_with(**p));
        if let Some(p) = hit2 {
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: (*p).to_string(),
                line,
            });
            i += p.len();
            continue;
        }
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn strings_are_single_tokens() {
        let t = kinds(r#"let x = "a.unwrap() } {";"#);
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokKind::Str && s.contains("unwrap")));
        // None of the braces inside the string became punctuation.
        assert!(!t.iter().any(|(k, s)| *k == TokKind::Punct && s == "}"));
    }

    #[test]
    fn raw_strings_and_fences() {
        let t = kinds("let x = r#\"quote \" inside\"#; y");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "y"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner */ still comment */ b");
        let idents: Vec<_> = l.toks.iter().filter(|t| t.kind == TokKind::Ident).collect();
        assert_eq!(idents.len(), 2);
        assert_eq!(idents[0].text, "a");
        assert_eq!(idents[1].text, "b");
    }

    #[test]
    fn lifetime_vs_char() {
        let t = kinds("&'a str; let c = 'x'; let q = '\\n';");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Lifetime && s == "'a"));
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn multiline_statement_tokens_carry_lines() {
        let l = lex("foo\n    .bar()\n    .baz();");
        let bar = l.toks.iter().find(|t| t.is_ident("bar")).unwrap();
        let baz = l.toks.iter().find(|t| t.is_ident("baz")).unwrap();
        assert_eq!(bar.line, 2);
        assert_eq!(baz.line, 3);
    }

    #[test]
    fn ranges_do_not_eat_floats() {
        let t = kinds("0..10; 1.5e-3; x.0");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Num && s == "1.5e-3"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Punct && s == ".."));
    }

    #[test]
    fn comments_split_per_line() {
        let l = lex("/* a\nb\nc */ x // tail");
        assert_eq!(l.comments.len(), 4);
        assert_eq!(l.comments[1].line, 2);
    }
}
