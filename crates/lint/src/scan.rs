//! The item/statement scanner: turns a token stream into the file
//! model the rule engine and semantic passes consume — statement spans
//! (for whole-statement `lint:allow` scoping), `#[cfg(test)]` regions
//! (tracked by *token* braces, so braces inside string literals can
//! never end a test module early), function items, `for` loops, and
//! the allow/ascending comment markers.

use crate::lexer::{lex, Comment, Tok, TokKind};

/// A statement span: a maximal token run between `;` / `{` / `}`
/// boundaries. Multi-line method chains form one statement.
#[derive(Debug, Clone, Copy)]
pub struct Stmt {
    /// Index of the first token (inclusive).
    pub start: usize,
    /// Index of the last token (inclusive).
    pub end: usize,
    /// 1-based line of the first token.
    pub first_line: u32,
}

/// One `fn` item: its name and body token range.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Token index of the body's opening `{` (exclusive range start).
    pub body_start: usize,
    /// Token index of the body's closing `}` (exclusive).
    pub body_end: usize,
}

/// One `for … in … { … }` loop.
#[derive(Debug, Clone)]
pub struct ForLoop {
    /// Token range of the iterated expression (between `in` and `{`).
    pub header_start: usize,
    /// End of the header range (exclusive — the body's `{`).
    pub header_end: usize,
    /// Token index of the body's opening `{`.
    pub body_start: usize,
    /// Token index of the body's closing `}` (exclusive).
    pub body_end: usize,
    /// 1-based line the loop starts on.
    pub line: u32,
}

/// An allow marker parsed from a comment: `lint:allow(rule-a, rule-b)`.
#[derive(Debug, Clone)]
pub struct AllowMarker {
    /// 1-based line the marker sits on.
    pub line: u32,
    /// The rules the marker names.
    pub rules: Vec<String>,
}

/// Everything the rule engine needs to know about one file.
pub struct FileModel {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Source lines (for violation excerpts).
    pub lines: Vec<String>,
    /// Code tokens.
    pub toks: Vec<Tok>,
    /// Comment lines.
    pub comments: Vec<Comment>,
    /// Statement spans, in order.
    pub stmts: Vec<Stmt>,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(u32, u32)>,
    /// Function items, in source order.
    pub fns: Vec<FnItem>,
    /// `for` loops, in source order.
    pub loops: Vec<ForLoop>,
    /// Allow markers.
    pub allows: Vec<AllowMarker>,
    /// Idents declared ascending-by-shard via `lint:ascending(name)`.
    pub ascending: Vec<String>,
}

impl FileModel {
    /// Builds the model for one source file.
    pub fn build(path: &str, src: &str) -> FileModel {
        let lexed = lex(src);
        let stmts = split_statements(&lexed.toks);
        let test_regions = find_test_regions(&lexed.toks);
        let fns = find_fns(&lexed.toks);
        let loops = find_for_loops(&lexed.toks);
        let (allows, ascending) = parse_markers(&lexed.comments);
        FileModel {
            path: path.to_string(),
            lines: src.lines().map(str::to_string).collect(),
            toks: lexed.toks,
            comments: lexed.comments,
            stmts,
            test_regions,
            fns,
            loops,
            allows,
            ascending,
        }
    }

    /// The trimmed source text of 1-based `line` (empty if out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(|s| s.trim())
            .unwrap_or("")
    }

    /// Whether 1-based `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| line >= a && line <= b)
    }

    /// The statement containing token index `i`, if any.
    pub fn stmt_of(&self, i: usize) -> Option<&Stmt> {
        self.stmts.iter().find(|s| i >= s.start && i <= s.end)
    }

    /// The innermost function whose body contains token index `i`.
    pub fn fn_of(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| i > f.body_start && i < f.body_end)
            .min_by_key(|f| f.body_end - f.body_start)
    }

    /// The innermost `for` loop whose body contains token index `i`.
    pub fn loop_of(&self, i: usize) -> Option<&ForLoop> {
        self.loops
            .iter()
            .filter(|l| i > l.body_start && i < l.body_end)
            .min_by_key(|l| l.body_end - l.body_start)
    }

    /// Whether a finding for `rule` at token `i` (on `line`) is
    /// suppressed by an allow marker.
    ///
    /// A marker suppresses when it sits on the finding's own line, the
    /// line immediately above it, the **first line of the enclosing
    /// statement**, or the line immediately above that — so one marker
    /// on a multi-line statement covers the whole statement, wherever
    /// inside it the finding lands.
    pub fn is_allowed(&self, rule: &str, i: usize, line: u32) -> bool {
        let mut lines_ok = vec![line, line.saturating_sub(1)];
        if let Some(s) = self.stmt_of(i) {
            lines_ok.push(s.first_line);
            lines_ok.push(s.first_line.saturating_sub(1));
        }
        self.allows
            .iter()
            .any(|m| lines_ok.contains(&m.line) && m.rules.iter().any(|r| r == rule))
    }
}

fn split_statements(toks: &[Tok]) -> Vec<Stmt> {
    let mut stmts = Vec::new();
    let mut start: Option<usize> = None;
    for (i, t) in toks.iter().enumerate() {
        let boundary = t.is_punct(";") || t.is_punct("{") || t.is_punct("}");
        if start.is_none() && !boundary {
            start = Some(i);
        }
        if boundary {
            let s = start.take().unwrap_or(i);
            stmts.push(Stmt {
                start: s,
                end: i,
                first_line: toks[s].line,
            });
        }
    }
    if let Some(s) = start {
        stmts.push(Stmt {
            start: s,
            end: toks.len() - 1,
            first_line: toks[s].line,
        });
    }
    stmts
}

/// Finds `#[cfg(test)]` items and returns the line ranges their bodies
/// cover. Brace depth is tracked on *tokens*, so a `}` inside a string
/// literal never terminates the region (the old scanner's bug).
fn find_test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#") && matches(toks, i + 1, &["[", "cfg", "(", "test", ")", "]"]) {
            let start_line = toks[i].line;
            let mut j = i + 7;
            // Skip further attributes between the cfg and the item.
            while j < toks.len() && toks[j].is_punct("#") {
                j += 1;
                let mut depth = 0;
                while j < toks.len() {
                    if toks[j].is_punct("[") {
                        depth += 1;
                    } else if toks[j].is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            // Find the item's opening brace (or a terminating `;` for
            // e.g. `#[cfg(test)] use …;`).
            let mut depth = 0i64;
            let mut opened = false;
            while j < toks.len() {
                if toks[j].is_punct("{") {
                    depth += 1;
                    opened = true;
                } else if toks[j].is_punct("}") {
                    depth -= 1;
                    if opened && depth == 0 {
                        break;
                    }
                } else if toks[j].is_punct(";") && !opened {
                    break;
                }
                j += 1;
            }
            let end_line = toks.get(j).map(|t| t.line).unwrap_or(u32::MAX);
            regions.push((start_line, end_line));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    regions
}

fn matches(toks: &[Tok], at: usize, pat: &[&str]) -> bool {
    pat.iter()
        .enumerate()
        .all(|(k, p)| toks.get(at + k).map(|t| t.text == *p).unwrap_or(false))
}

fn find_fns(toks: &[Tok]) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn")
            && toks
                .get(i + 1)
                .map(|t| t.kind == TokKind::Ident)
                .unwrap_or(false)
        {
            let name = toks[i + 1].text.clone();
            // Walk to the body `{` (tracking (), [] depth; a `;` at
            // depth 0 means a bodyless trait method).
            let mut j = i + 2;
            let mut depth = 0i64;
            let mut body = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct("(") || t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    depth -= 1;
                } else if depth == 0 && t.is_punct("{") {
                    body = Some(j);
                    break;
                } else if depth == 0 && t.is_punct(";") {
                    break;
                }
                j += 1;
            }
            if let Some(open) = body {
                let close = match_brace(toks, open);
                fns.push(FnItem {
                    name,
                    body_start: open,
                    body_end: close,
                });
            }
            i += 2;
        } else {
            i += 1;
        }
    }
    fns
}

/// Index just past the `}` matching the `{` at `open`.
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    toks.len()
}

fn find_for_loops(toks: &[Tok]) -> Vec<ForLoop> {
    let mut loops = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("for") {
            continue;
        }
        // `for<'a>` HRTBs and `impl Trait for Type` are not loops: a
        // loop has an `in` at depth 0 before its `{`.
        if toks.get(i + 1).map(|t| t.is_punct("<")).unwrap_or(false) {
            continue;
        }
        let mut j = i + 1;
        let mut depth = 0i64;
        let mut in_at = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && t.is_ident("in") {
                in_at = Some(j);
            } else if depth == 0 && (t.is_punct("{") || t.is_punct(";")) {
                break;
            }
            j += 1;
        }
        let (Some(in_idx), true) = (in_at, j < toks.len() && toks[j].is_punct("{")) else {
            continue;
        };
        loops.push(ForLoop {
            header_start: in_idx + 1,
            header_end: j,
            body_start: j,
            body_end: match_brace(toks, j),
            line: toks[i].line,
        });
    }
    loops
}

fn parse_markers(comments: &[Comment]) -> (Vec<AllowMarker>, Vec<String>) {
    let mut allows = Vec::new();
    let mut ascending = Vec::new();
    for c in comments {
        for (marker, sink) in [("lint:allow(", 0usize), ("lint:ascending(", 1usize)] {
            let mut rest = c.text.as_str();
            while let Some(pos) = rest.find(marker) {
                rest = &rest[pos + marker.len()..];
                let inner = rest.split(')').next().unwrap_or("");
                let names: Vec<String> = inner
                    .split(',')
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty())
                    .collect();
                if sink == 0 {
                    allows.push(AllowMarker {
                        line: c.line,
                        rules: names,
                    });
                } else {
                    ascending.extend(names);
                }
            }
        }
    }
    (allows, ascending)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_region_survives_brace_in_string() {
        let src = "fn prod() { x(); }\n#[cfg(test)]\nmod t {\n    fn a() { let s = \"}\"; }\n    fn b() { y(); }\n}\nfn after() { z(); }\n";
        let m = FileModel::build("x.rs", src);
        assert_eq!(m.test_regions.len(), 1);
        let (a, b) = m.test_regions[0];
        assert!(a <= 2 && b >= 6, "region {a}..{b} must span the module");
        assert!(!m.in_test_region(7), "code after the module is live");
    }

    #[test]
    fn multiline_statement_is_one_span() {
        let src = "let v = foo(a, b)\n    .bar()\n    .baz();\n";
        let m = FileModel::build("x.rs", src);
        let baz = m.toks.iter().position(|t| t.is_ident("baz")).unwrap();
        let s = m.stmt_of(baz).unwrap();
        assert_eq!(s.first_line, 1);
    }

    #[test]
    fn allow_on_statement_first_line_covers_later_lines() {
        let src = "// lint:allow(expect) — fine\nlet v = foo(a, b)\n    .expect(\"x\");\n";
        let m = FileModel::build("x.rs", src);
        let e = m.toks.iter().position(|t| t.is_ident("expect")).unwrap();
        assert!(m.is_allowed("expect", e, 3));
        assert!(!m.is_allowed("unwrap", e, 3));
    }

    #[test]
    fn fns_and_loops_are_found() {
        let src = "fn outer(x: u32) -> u32 {\n    for (k, v) in map.iter() {\n        use_it(k, v);\n    }\n    x\n}\n";
        let m = FileModel::build("x.rs", src);
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].name, "outer");
        assert_eq!(m.loops.len(), 1);
        let it = m.toks.iter().position(|t| t.is_ident("use_it")).unwrap();
        assert!(m.loop_of(it).is_some());
        assert_eq!(m.fn_of(it).map(|f| f.name.as_str()), Some("outer"));
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let m = FileModel::build("x.rs", "impl Display for Foo { }\n");
        assert!(m.loops.is_empty());
    }
}
