//! Rendering: human text, the stable JSON array, and SARIF 2.1.0 (for
//! CI artifact upload and code-scanning ingestion). All hand-rolled —
//! the lint gate takes no dependencies.

use crate::{Violation, RULES};
use std::fmt::Write as _;

/// Escapes `s` for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The legacy-compatible JSON array: `[{"rule","file","line","text"}]`.
pub fn render_json(violations: &[Violation]) -> String {
    let mut out = String::from("[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"text\":\"{}\"}}",
            v.rule,
            json_escape(&v.path),
            v.line,
            json_escape(&v.text)
        );
    }
    out.push(']');
    out
}

/// SARIF 2.1.0: one run, one rule descriptor per catalog entry, one
/// result per violation.
pub fn render_sarif(violations: &[Violation]) -> String {
    let mut rules = String::new();
    for (i, (name, rationale)) in RULES.iter().enumerate() {
        if i > 0 {
            rules.push(',');
        }
        let _ = write!(
            rules,
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
            json_escape(name),
            json_escape(rationale)
        );
    }
    let mut results = String::new();
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            results.push(',');
        }
        let _ = write!(
            results,
            "{{\"ruleId\":\"{}\",\"level\":\"error\",\"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":\"{}\"}},\
             \"region\":{{\"startLine\":{}}}}}}}]}}",
            v.rule,
            json_escape(&format!("[{}] {}", v.rule, v.text)),
            json_escape(&v.path),
            v.line
        );
    }
    format!(
        "{{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{{\"tool\":{{\"driver\":{{\
         \"name\":\"dagsfc-lint\",\"informationUri\":\"docs/VERIFICATION.md\",\
         \"rules\":[{rules}]}}}},\"results\":[{results}]}}]}}"
    )
}

/// Human-readable report.
pub fn render_text(
    violations: &[Violation],
    files_scanned: usize,
    baselined: usize,
    stale_baseline: usize,
) -> String {
    let mut out = String::new();
    for v in violations {
        let _ = writeln!(out, "{}:{}: [{}] {}", v.path, v.line, v.rule, v.text);
    }
    let _ = writeln!(
        out,
        "dagsfc-lint: {} files scanned, {} violation(s), {} baselined",
        files_scanned,
        violations.len(),
        baselined
    );
    if stale_baseline > 0 {
        let _ = writeln!(
            out,
            "dagsfc-lint: {stale_baseline} stale baseline entr{} (matched nothing; \
             run --update-baseline to prune)",
            if stale_baseline == 1 { "y" } else { "ies" }
        );
    }
    if !violations.is_empty() {
        for (name, rationale) in RULES {
            if violations.iter().any(|v| v.rule == *name) {
                let _ = writeln!(out, "  {name}: {rationale}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Violation;

    fn sample() -> Vec<Violation> {
        vec![Violation {
            rule: "unwrap",
            path: "crates/x/src/a.rs".to_string(),
            line: 3,
            text: "let y = x.unwrap(); // \"quoted\"".to_string(),
        }]
    }

    #[test]
    fn json_is_well_formed() {
        let j = render_json(&sample());
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\\\"quoted\\\""));
    }

    #[test]
    fn sarif_carries_schema_rules_and_results() {
        let s = render_sarif(&sample());
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("\"ruleId\":\"unwrap\""));
        assert!(s.contains("\"startLine\":3"));
        assert!(s.contains("\"id\":\"lock-order\""));
    }
}
