//! The command-line front end (`src/bin/lint.rs` is a thin shim over
//! [`run_cli`]).
//!
//! ```text
//! dagsfc-lint [--root DIR] [--format text|json|sarif]
//!             [--baseline FILE | --no-baseline] [--update-baseline]
//! ```
//!
//! Exit codes: 0 clean (or everything baselined), 1 unbaselined
//! violations, 2 usage error.

use crate::baseline::Baseline;
use crate::output::{render_json, render_sarif, render_text};
use crate::{analyze, SourceFile};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories never scanned (vendored, generated, or exempt-by-class).
const SKIP_DIRS: &[&str] = &[
    "target", "shims", ".git", "tests", "benches", "examples", ".github",
];

/// Default baseline file name, looked up under `--root`.
pub const BASELINE_FILE: &str = "lint-baseline.txt";

fn collect_files(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_files(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Output format selector.
#[derive(PartialEq, Clone, Copy)]
enum Format {
    Text,
    Json,
    Sarif,
}

/// Runs the lint CLI over `args` (program name already stripped).
pub fn run_cli(args: Vec<String>) -> ExitCode {
    let mut format = Format::Text;
    let mut root = PathBuf::from(".");
    let mut baseline_path: Option<PathBuf> = None;
    let mut use_baseline = true;
    let mut update_baseline = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some("text") | None => format = Format::Text,
                Some(other) => {
                    eprintln!("unknown format '{other}' (text|json|sarif)");
                    return ExitCode::from(2);
                }
            },
            "--root" => {
                if let Some(dir) = it.next() {
                    root = PathBuf::from(dir);
                }
            }
            "--baseline" => {
                if let Some(p) = it.next() {
                    baseline_path = Some(PathBuf::from(p));
                }
            }
            "--no-baseline" => use_baseline = false,
            "--update-baseline" => update_baseline = true,
            other => {
                eprintln!("unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }

    let mut paths = Vec::new();
    collect_files(&root, &mut paths);
    let files: Vec<SourceFile> = paths
        .iter()
        .filter_map(|p| {
            let text = std::fs::read_to_string(p).ok()?;
            let rel = p.strip_prefix(&root).unwrap_or(p);
            Some(SourceFile {
                path: rel.to_string_lossy().replace('\\', "/"),
                text,
            })
        })
        .collect();
    let violations = analyze(&files);

    let baseline_file = baseline_path.unwrap_or_else(|| root.join(BASELINE_FILE));
    if update_baseline {
        let rendered = Baseline::render(&violations);
        if std::fs::write(&baseline_file, rendered).is_err() {
            eprintln!("cannot write {}", baseline_file.display());
            return ExitCode::from(2);
        }
        println!(
            "dagsfc-lint: baseline updated ({} entr{}) -> {}",
            violations.len(),
            if violations.len() == 1 { "y" } else { "ies" },
            baseline_file.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if use_baseline {
        std::fs::read_to_string(&baseline_file)
            .map(|t| Baseline::parse(&t))
            .unwrap_or_default()
    } else {
        Baseline::default()
    };
    let (fresh, absorbed, stale) = baseline.apply(violations);

    match format {
        Format::Json => println!("{}", render_json(&fresh)),
        Format::Sarif => println!("{}", render_sarif(&fresh)),
        Format::Text => print!(
            "{}",
            render_text(&fresh, files.len(), absorbed.len(), stale)
        ),
    }
    if fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
