//! The retired substring engine, preserved behavior-for-behavior.
//!
//! This module exists for one reason: the fixture suite demonstrates
//! *differentially* that the old line/substring matcher misclassifies
//! real shapes — patterns inside string literals and block comments
//! (false positives), patterns after a `//` that sits inside a string
//! (false negatives), `#[cfg(test)]` regions ended early by a `}` in a
//! string literal, and `lint:allow` markers that fail to cover the
//! later lines of a multi-line statement — and that the token engine
//! classifies every one of them correctly.
//!
//! Nothing in production calls this; do not extend it. (That its rule
//! patterns can live here as plain string literals without tripping
//! the new engine is itself the point: to a lexer they are `Str`
//! tokens, not code.)

/// A legacy finding: rule name and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegacyFinding {
    /// Rule name.
    pub rule: &'static str,
    /// 1-based line number.
    pub line: usize,
}

struct Rule {
    name: &'static str,
    patterns: &'static [&'static str],
}

const RULES: &[Rule] = &[
    Rule {
        name: "unwrap",
        patterns: &[".unwrap()"],
    },
    Rule {
        name: "expect",
        patterns: &[".expect("],
    },
    Rule {
        name: "wallclock",
        patterns: &["SystemTime::now"],
    },
    Rule {
        name: "unseeded-rng",
        patterns: &["thread_rng(", "from_entropy(", "rand::random"],
    },
    Rule {
        name: "raw-commit",
        patterns: &[".commit("],
    },
];

/// Whether `line` (or `prev`) carries an allow marker for `rule` —
/// the old same-line/previous-line check, verbatim.
fn allowed(rule: &str, line: &str, prev: Option<&str>) -> bool {
    let marker_on = |s: &str| {
        s.find("lint:allow(").is_some_and(|pos| {
            let rest = &s[pos + "lint:allow(".len()..];
            rest.split(')')
                .next()
                .is_some_and(|inner| inner.split(',').any(|r| r.trim() == rule))
        })
    };
    marker_on(line) || prev.is_some_and(marker_on)
}

/// The old naive comment stripper: truncates at the first `//`, even
/// when it sits inside a string literal.
fn code_portion(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Scans `src` with the old engine's exact logic (workspace-scope
/// rules only) and returns its findings.
pub fn legacy_scan(src: &str) -> Vec<LegacyFinding> {
    let lines: Vec<&str> = src.lines().collect();
    let mut out = Vec::new();

    // The old `#[cfg(test)]` tracker: brace depth counted on raw
    // characters, so braces inside string literals corrupt it.
    let mut in_test = false;
    let mut saw_open = false;
    let mut depth: i64 = 0;

    for (idx, raw) in lines.iter().enumerate() {
        if !in_test && raw.trim_start().starts_with("#[cfg(test)]") {
            in_test = true;
            saw_open = false;
            depth = 0;
        }
        if in_test {
            for c in raw.chars() {
                match c {
                    '{' => {
                        saw_open = true;
                        depth += 1;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if saw_open && depth <= 0 {
                in_test = false;
            }
            continue;
        }

        let code = code_portion(raw);
        if code.trim().is_empty() {
            continue;
        }
        let prev = idx.checked_sub(1).map(|i| lines[i]);
        for rule in RULES {
            let hit = rule.patterns.iter().any(|p| code.contains(p));
            if hit && !allowed(rule.name, raw, prev) {
                out.push(LegacyFinding {
                    rule: rule.name,
                    line: idx + 1,
                });
            }
        }
    }
    out
}
