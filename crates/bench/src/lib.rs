//! # dagsfc-bench — shared fixtures for the Criterion benchmarks.
//!
//! The benches regenerate every evaluation artifact of the paper
//! (Fig. 6(a)–(f), the §4.5 runtime claim) at a bench-friendly scale,
//! plus substrate microbenches and the MBBE ablation of DESIGN.md §8.
//! Fixtures here keep the per-bench setup deterministic and cheap.

use dagsfc_core::{DagSfc, Flow};
use dagsfc_net::Network;
use dagsfc_sim::{runner, SimConfig};

/// A bench-scale base configuration: Table 2 ratios on a 60-node cloud
/// with a handful of runs per point.
pub fn bench_config() -> SimConfig {
    SimConfig {
        network_size: 60,
        runs: 5,
        ..SimConfig::default()
    }
}

/// One deterministic embedding instance at bench scale: network + the
/// first generated (SFC, flow) request.
pub fn bench_instance(sfc_size: usize) -> (Network, DagSfc, Flow) {
    let cfg = SimConfig {
        sfc_size,
        ..bench_config()
    };
    let net = runner::instance_network(&cfg);
    let (sfc, flow) = runner::instance_request(&cfg, &net, 0);
    (net, sfc, flow)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let (n1, s1, f1) = bench_instance(5);
        let (n2, s2, f2) = bench_instance(5);
        assert_eq!(n1.link_count(), n2.link_count());
        assert_eq!(s1, s2);
        assert_eq!(f1.src, f2.src);
    }

    #[test]
    fn instance_matches_requested_size() {
        let (_, sfc, _) = bench_instance(4);
        assert_eq!(sfc.size(), 4);
    }
}
