//! `dagsfc-loadgen` — an open-loop saturation driver for the
//! `dagsfc-serve` daemon, emitting one machine-readable JSON document
//! (`BENCH_serve.json` when run with `--out`).
//!
//! The workload is seeded and open-loop at the fleet level: the full
//! request schedule is frozen from `--seed` before the first byte hits
//! a socket, and each of the `--connections` lock-step clients fires
//! its next request the moment the previous reply lands — issue times
//! never depend on outcomes, so two runs offer the daemon the identical
//! request stream. Two phases are measured against in-process daemons:
//!
//! * **saturation** — embed requests on an undersized substrate with no
//!   releases, so the ledger fills and the acceptance ratio decays:
//!   sustained req/s, p50/p99 request latency, acceptance under
//!   overload, and the high-water queue depth of every shard lane.
//! * **admission** — precheck-rejectable requests (rate far above any
//!   link) that exercise only the front end. The batched server's
//!   one-lock-per-batch admission is compared against the legacy
//!   thread-per-connection daemon on the same stream; the ratio is the
//!   measured batching gain.
//!
//! `--compare <file>` re-measures and fails (exit code 2) when
//! sustained or admission throughput regressed by more than
//! `--tolerance` (default 0.25) against the committed profile — that is
//! the CI `serve-bench` gate. Latency percentiles are recorded but
//! never gate: they are too host-sensitive.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use dagsfc_core::{DagSfc, Flow};
use dagsfc_serve::{
    serve, spawn_batched, BatchConfig, Client, EmbedReply, ServeConfig, ServerHandle,
};
use dagsfc_sim::runner::{instance_network, instance_request};
use dagsfc_sim::{arrival_seed, Algo, SimConfig};
use serde::{Deserialize, Serialize};

/// Schema tag: bump when the JSON layout changes incompatibly.
const SCHEMA: &str = "dagsfc-loadgen/1";

/// One frozen request of the open-loop schedule.
struct Shot {
    sfc: DagSfc,
    flow: Flow,
    seed: u64,
}

/// Latency percentiles over one measured phase, nearest-rank.
#[derive(Debug, Serialize, Deserialize)]
struct Latency {
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
}

/// One measured phase against one server.
#[derive(Debug, Serialize, Deserialize)]
struct PhaseSample {
    /// "saturation" or "admission".
    phase: String,
    /// "batched" or "legacy".
    server: String,
    /// Region shards the daemon was partitioned into.
    shards: usize,
    /// Concurrent lock-step client connections.
    connections: usize,
    /// Requests completed (all of the schedule).
    requests: usize,
    /// Wall-clock milliseconds for the whole schedule.
    wall_ms: f64,
    /// Sustained completed requests per second.
    rps: f64,
    /// Accepted / requests. Decays under overload in the saturation
    /// phase; 0.0 by construction in the admission phase.
    acceptance_ratio: f64,
    latency: Latency,
    /// High-water queue depth per shard lane, sampled during the run
    /// (empty for the legacy server, which has one global queue).
    peak_queue_depths: Vec<u64>,
}

/// The whole serving-throughput document.
#[derive(Debug, Serialize, Deserialize)]
struct ServeBench {
    schema: String,
    /// "full" or "quick".
    profile: String,
    threads: usize,
    /// batched admission rps / legacy admission rps: the measured gain
    /// of batch-grouped prechecks over per-request admission.
    batching_gain: f64,
    phases: Vec<PhaseSample>,
}

#[derive(Clone, Copy, PartialEq)]
enum Profile {
    Full,
    Quick,
}

struct Knobs {
    sim: SimConfig,
    requests: usize,
    connections: usize,
    shards: usize,
}

fn knobs(profile: Profile, shards: usize) -> Knobs {
    match profile {
        // Paper-adjacent scale: enough offered load to push the
        // substrate deep into overload.
        Profile::Full => Knobs {
            sim: SimConfig {
                network_size: 60,
                sfc_size: 4,
                vnf_capacity: 6.0,
                link_capacity: 6.0,
                seed: 0x10AD,
                ..SimConfig::default()
            },
            requests: 1200,
            connections: 8,
            shards,
        },
        // CI scale: seconds, same shape.
        Profile::Quick => Knobs {
            sim: SimConfig {
                network_size: 30,
                sfc_size: 4,
                vnf_capacity: 4.0,
                link_capacity: 4.0,
                seed: 0x10AD,
                ..SimConfig::default()
            },
            requests: 240,
            connections: 4,
            shards,
        },
    }
}

/// Freezes the saturation schedule: plausible requests the solver must
/// actually attempt.
fn saturation_schedule(k: &Knobs) -> Vec<Shot> {
    let net = instance_network(&k.sim);
    (0..k.requests)
        .map(|i| {
            let (sfc, flow) = instance_request(&k.sim, &net, i);
            Shot {
                sfc,
                flow,
                seed: arrival_seed(k.sim.seed, i),
            }
        })
        .collect()
}

/// Freezes the admission schedule: every request dies at the precheck
/// (rate far above any capacity), so only the front end is measured.
fn admission_schedule(k: &Knobs) -> Vec<Shot> {
    saturation_schedule(k)
        .into_iter()
        .map(|mut shot| {
            shot.flow.rate = 1e9;
            shot
        })
        .collect()
}

/// Drives `shots` through `connections` lock-step clients against the
/// daemon at `addr`; returns (wall_ms, accepted, latencies_us).
fn drive(addr: std::net::SocketAddr, shots: &[Shot], connections: usize) -> (f64, u64, Vec<f64>) {
    let accepted = AtomicU64::new(0);
    let started = Instant::now();
    let mut latencies: Vec<f64> = Vec::with_capacity(shots.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let accepted = &accepted;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect"); // lint:allow(expect)
                    let mut lat = Vec::new();
                    // Strided split: connection c fires shots c, c+C, ...
                    for shot in shots.iter().skip(c).step_by(connections) {
                        let t = Instant::now();
                        let reply = client
                            .embed(&shot.sfc, &shot.flow, None, shot.seed)
                            .expect("embed"); // lint:allow(expect)
                        lat.push(t.elapsed().as_secs_f64() * 1e6);
                        if matches!(reply, EmbedReply::Accepted { .. }) {
                            accepted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            latencies.extend(h.join().expect("driver thread")); // lint:allow(expect)
        }
    });
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    (wall_ms, accepted.load(Ordering::Relaxed), latencies)
}

/// Nearest-rank percentile over an unsorted sample.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn latency_of(mut samples: Vec<f64>) -> Latency {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies")); // lint:allow(expect)
    Latency {
        p50_us: percentile(&samples, 50.0),
        p99_us: percentile(&samples, 99.0),
        max_us: samples.last().copied().unwrap_or(0.0),
    }
}

/// Runs one phase against one daemon, sampling per-shard queue depths
/// from a side connection while the drivers run.
fn run_phase(
    phase: &str,
    server: &str,
    handle: ServerHandle,
    shots: &[Shot],
    connections: usize,
    shards: usize,
) -> PhaseSample {
    let addr = handle.addr();
    let done = AtomicBool::new(false);
    let mut peak: Vec<u64> = Vec::new();
    let (wall_ms, accepted, latencies) = std::thread::scope(|scope| {
        let sampler = scope.spawn(|| {
            let mut probe = Client::connect(addr).expect("sampler connect"); // lint:allow(expect)
            let mut peaks = vec![0u64; shards];
            while !done.load(Ordering::Relaxed) {
                if let Ok(stats) = probe.stats() {
                    for lane in &stats.per_shard {
                        let s = lane.shard as usize;
                        if s < peaks.len() {
                            peaks[s] = peaks[s].max(lane.queue_depth);
                        }
                    }
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            peaks
        });
        let result = drive(addr, shots, connections);
        done.store(true, Ordering::Relaxed);
        peak = sampler.join().expect("sampler thread"); // lint:allow(expect)
        result
    });
    let mut c = Client::connect(addr).expect("connect for shutdown"); // lint:allow(expect)
    c.shutdown().expect("shutdown"); // lint:allow(expect)
    let stats = handle.join();
    if stats.per_shard.is_empty() {
        peak.clear(); // legacy daemon: no shard lanes to report
    }
    PhaseSample {
        phase: phase.to_string(),
        server: server.to_string(),
        shards,
        connections,
        requests: shots.len(),
        wall_ms,
        rps: shots.len() as f64 / (wall_ms / 1e3).max(1e-9),
        acceptance_ratio: accepted as f64 / shots.len().max(1) as f64,
        latency: latency_of(latencies),
        peak_queue_depths: peak,
    }
}

fn spawn_batched_daemon(k: &Knobs, shards: usize) -> ServerHandle {
    let cfg = BatchConfig {
        shards,
        workers_per_shard: 2,
        queue_capacity: 256,
        algo: Algo::Mbbe,
        reclaim_on_disconnect: false,
    };
    // lint:allow(expect) — bench harness: abort loudly on a broken driver
    spawn_batched(instance_network(&k.sim), shards, cfg, "127.0.0.1:0").expect("spawn batched")
}

fn spawn_legacy_daemon(k: &Knobs) -> ServerHandle {
    let cfg = ServeConfig {
        workers: 2,
        queue_capacity: 256,
        algo: Algo::Mbbe,
        reclaim_on_disconnect: false,
    };
    // lint:allow(expect) — bench harness: abort loudly on a broken driver
    serve::spawn(instance_network(&k.sim), cfg, "127.0.0.1:0").expect("spawn legacy")
}

fn measure(profile: Profile, shards: usize) -> ServeBench {
    let k = knobs(profile, shards);
    let sat = saturation_schedule(&k);
    let adm = admission_schedule(&k);

    let phases = vec![
        run_phase(
            "saturation",
            "batched",
            spawn_batched_daemon(&k, k.shards),
            &sat,
            k.connections,
            k.shards,
        ),
        run_phase(
            "admission",
            "batched",
            spawn_batched_daemon(&k, 1),
            &adm,
            k.connections,
            1,
        ),
        run_phase(
            "admission",
            "legacy",
            spawn_legacy_daemon(&k),
            &adm,
            k.connections,
            1,
        ),
    ];
    let rps_of = |phase: &str, server: &str| {
        phases
            .iter()
            .find(|p| p.phase == phase && p.server == server)
            .map_or(0.0, |p| p.rps)
    };
    ServeBench {
        schema: SCHEMA.to_string(),
        profile: match profile {
            Profile::Full => "full",
            Profile::Quick => "quick",
        }
        .to_string(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        batching_gain: rps_of("admission", "batched") / rps_of("admission", "legacy").max(1e-9),
        phases,
    }
}

/// Throughput-only regression check, keyed by (phase, server).
fn regressions(current: &ServeBench, reference: &ServeBench, tolerance: f64) -> Vec<String> {
    let mut out = Vec::new();
    for cur in &current.phases {
        let Some(base) = reference
            .phases
            .iter()
            .find(|p| p.phase == cur.phase && p.server == cur.server)
        else {
            eprintln!(
                "note: phase {}/{} absent from baseline, skipping",
                cur.phase, cur.server
            );
            continue;
        };
        let ratio = cur.rps / base.rps.max(1e-9);
        if ratio < 1.0 - tolerance {
            out.push(format!(
                "{}/{}: {:.0} req/s vs baseline {:.0} ({:+.1}% < -{:.0}% tolerance)",
                cur.phase,
                cur.server,
                cur.rps,
                base.rps,
                (ratio - 1.0) * 100.0,
                tolerance * 100.0,
            ));
        }
    }
    out
}

fn fail(msg: &str) -> ! {
    eprintln!("dagsfc-loadgen: {msg}");
    std::process::exit(1)
}

fn main() -> ExitCode {
    let mut profile = Profile::Full;
    let mut shards = 4usize;
    let mut out: Option<String> = None;
    let mut compare: Option<String> = None;
    let mut tolerance = 0.25;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => profile = Profile::Quick,
            "--full" => profile = Profile::Full,
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--shards needs an integer"));
            }
            "--out" => {
                out = Some(args.next().unwrap_or_else(|| fail("--out needs a path")));
            }
            "--compare" => {
                compare = Some(
                    args.next()
                        .unwrap_or_else(|| fail("--compare needs a path")),
                );
            }
            "--tolerance" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| fail("--tolerance needs a value"));
                tolerance = v
                    .parse()
                    .unwrap_or_else(|_| fail("--tolerance must be a number"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: dagsfc-loadgen [--quick|--full] [--shards N] [--out FILE] \
                     [--compare FILE [--tolerance F]]"
                );
                return ExitCode::SUCCESS;
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    let current = measure(profile, shards.max(1));
    for p in &current.phases {
        eprintln!(
            "{:10} {:8} {:>8.0} req/s  p50 {:>8.0} us  p99 {:>8.0} us  accept {:>5.1}%  peaks {:?}",
            p.phase,
            p.server,
            p.rps,
            p.latency.p50_us,
            p.latency.p99_us,
            p.acceptance_ratio * 100.0,
            p.peak_queue_depths
        );
    }
    eprintln!("batching gain: {:.2}x", current.batching_gain);

    let json =
        serde_json::to_string_pretty(&current).unwrap_or_else(|e| fail(&format!("serialize: {e}")));
    match &out {
        Some(path) => {
            std::fs::write(path, json + "\n").unwrap_or_else(|e| fail(&format!("write: {e}")));
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    if let Some(path) = compare {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
        let reference: ServeBench =
            serde_json::from_str(&text).unwrap_or_else(|e| fail(&format!("parse {path}: {e}")));
        if reference.schema != SCHEMA {
            fail(&format!(
                "baseline schema {:?} != {SCHEMA:?}; regenerate it",
                reference.schema
            ));
        }
        if reference.profile != current.profile {
            eprintln!(
                "note: comparing {} run against {} baseline",
                current.profile, reference.profile
            );
        }
        let bad = regressions(&current, &reference, tolerance);
        if !bad.is_empty() {
            for b in &bad {
                eprintln!("REGRESSION {b}");
            }
            return ExitCode::from(2);
        }
        eprintln!("within {:.0}% of baseline {path}", tolerance * 100.0);
    }

    ExitCode::SUCCESS
}
