//! `dagsfc-baseline` — a criterion-free, machine-readable benchmark
//! harness built on `std::time::Instant`.
//!
//! Measures the embedding hot path end to end and emits one JSON
//! document (`BENCH_baseline.json` when run with `--out`):
//!
//! * per-solver ns/solve and success rate on a fixed instance,
//! * the path oracle's cache hit rate per solver,
//! * wall-clock scaling of the fig6a and delay-budget sweeps across
//!   worker-thread counts, each against the serial reference,
//! * the routing-kernel microbench: bucket (radix) queue vs binary-heap
//!   Dijkstra on a dyadic-priced substrate.
//!
//! Sweep and kernel timings are best-of-rounds over interleaved runs —
//! each round times both sides back to back in alternating order, so
//! clock drift and cache warmth cancel instead of biasing one side.
//!
//! `--compare <file>` re-measures and fails (exit code 2) when any
//! per-solver ns/solve — or the bucket kernel's ns/query — regressed by
//! more than `--tolerance` (default 0.25) against the committed
//! baseline; that is the CI `bench-smoke` gate. Comparisons are keyed
//! by solver name; solvers present in only one file are reported but
//! never fail the gate, so adding a solver does not require
//! regenerating the baseline first.

use std::process::ExitCode;
use std::time::Instant;

use dagsfc_net::routing::{
    bucket_kernel_available, ArcWeight, NoFilter, RoutingKernel, RoutingScratch, ShortestPathTree,
};
use dagsfc_net::{Network, NodeId};
use dagsfc_sim::config::DEFAULT_LINK_DELAY_US;
use dagsfc_sim::runner::{run_instance, Algo};
use dagsfc_sim::sweep::{sweep_serial, sweep_with_threads, BBE_SFC_SIZE_LIMIT};
use dagsfc_sim::SimConfig;
use serde::{Deserialize, Serialize};

/// Schema tag: bump when the JSON layout changes incompatibly.
/// v2 added the per-thread-count sweep axis and the kernel microbench.
const SCHEMA: &str = "dagsfc-bench/2";

/// One solver's steady-state measurement.
#[derive(Debug, Serialize, Deserialize)]
struct SolverSample {
    /// Solver name as reported by the runner ("MBBE", "BBE", …).
    name: String,
    /// Substrate node count of the measured instance.
    network_size: usize,
    /// Chain length of the measured instance.
    sfc_size: usize,
    /// Independent (SFC, flow) draws solved.
    runs: usize,
    /// Best-of-rounds mean wall-clock nanoseconds per solve: the
    /// minimum per-pass mean over `rounds(profile)` identically seeded
    /// passes (stalls inflate a pass, never deflate it).
    ns_per_solve: f64,
    /// Fraction of runs that produced a feasible embedding.
    success_rate: f64,
    /// Solver-internal shortest-path cache hit rate.
    solver_cache_hit_rate: f64,
    /// Shared path-oracle hit rate for the instance.
    oracle_hit_rate: f64,
}

/// Wall-clock comparison of the two sweep executors on one figure spec
/// at one worker-thread count.
#[derive(Debug, Serialize, Deserialize)]
struct SweepSample {
    /// Figure id the spec mirrors.
    id: String,
    /// Worker threads given to the parallel executor.
    threads: usize,
    /// Number of x points.
    points: usize,
    /// Runs per point.
    runs_per_point: usize,
    /// Interleaved measurement rounds behind the best-of figures.
    rounds: usize,
    /// Parallel executor wall-clock milliseconds (best of rounds).
    parallel_ms: f64,
    /// Serial reference wall-clock milliseconds (best of rounds).
    serial_ms: f64,
    /// Best serial/parallel ratio observed across the interleaved
    /// rounds. At `threads == 1` both sides run the identical inline
    /// code path (the executor's auto-serial fallback), so per-round
    /// differences are pure timer noise and this stays ≥ 1.0 on any
    /// host where the fallback works; a value below 1.0 in every round
    /// means the executor spawned machinery it could not amortize.
    speedup: f64,
}

/// Routing-kernel microbench: full shortest-path-tree builds with the
/// monotone bucket (radix) queue vs the binary-heap reference on a
/// dyadic-priced substrate (where the lossless quantizer accepts and
/// `Auto` selects the bucket kernel).
#[derive(Debug, Serialize, Deserialize)]
struct KernelSample {
    /// Substrate node count.
    nodes: usize,
    /// Substrate directed-link count.
    links: usize,
    /// Tree builds per kernel per round (one per source node).
    queries: usize,
    /// Interleaved measurement rounds behind the best-of figures.
    rounds: usize,
    /// Binary-heap kernel nanoseconds per tree build (best of rounds).
    heap_ns_per_query: f64,
    /// Bucket-queue kernel nanoseconds per tree build (best of rounds).
    bucket_ns_per_query: f64,
    /// heap_ns_per_query / bucket_ns_per_query.
    speedup: f64,
}

/// A free-form `key=value` annotation recorded verbatim in the output
/// (provenance: revision hashes, cross-revision timings, host notes).
#[derive(Debug, Serialize, Deserialize)]
struct Annotation {
    key: String,
    value: String,
}

/// The whole baseline document.
#[derive(Debug, Serialize, Deserialize)]
struct Baseline {
    schema: String,
    /// "full" or "quick".
    profile: String,
    /// Worker threads available on the measuring host.
    threads: usize,
    solvers: Vec<SolverSample>,
    sweeps: Vec<SweepSample>,
    /// `None` only in documents predating the kernel microbench.
    kernel: Option<KernelSample>,
    annotations: Vec<Annotation>,
}

/// Which measurement scale to run.
#[derive(Clone, Copy, PartialEq)]
enum Profile {
    /// Paper-scale instance (500 nodes), more runs. Minutes.
    Full,
    /// CI-scale instance (60 nodes), few runs. Seconds.
    Quick,
}

fn solver_config(profile: Profile) -> SimConfig {
    match profile {
        Profile::Full => SimConfig {
            runs: 20,
            ..SimConfig::default()
        },
        Profile::Quick => SimConfig {
            runs: 5,
            ..SimConfig::quick()
        },
    }
}

/// Times every paper solver on the profile's fixed instance.
///
/// Each solver runs for `rounds(profile)` passes and `ns_per_solve`
/// records the *minimum* per-pass mean — the passes are seeded
/// identically so every round solves the same instances, and scheduler
/// stalls can only inflate a round's wall clock, never deflate it.
/// Success/cache statistics are taken from the first pass (they are
/// bit-identical across passes by the determinism contract).
fn measure_solvers(profile: Profile) -> Vec<SolverSample> {
    let cfg = solver_config(profile);
    let passes = rounds(profile);
    [Algo::Mbbe, Algo::Bbe, Algo::Minv, Algo::Ranv]
        .iter()
        .map(|&algo| {
            let first = run_instance(&cfg, &[algo]);
            let mut best_ns = first.algos[0].mean_elapsed.as_nanos() as f64;
            for _ in 1..passes {
                let again = run_instance(&cfg, &[algo]);
                best_ns = best_ns.min(again.algos[0].mean_elapsed.as_nanos() as f64);
            }
            let a = &first.algos[0];
            SolverSample {
                name: a.name.to_string(),
                network_size: cfg.network_size,
                sfc_size: cfg.sfc_size,
                runs: cfg.runs,
                ns_per_solve: best_ns,
                success_rate: a.successes as f64 / cfg.runs.max(1) as f64,
                solver_cache_hit_rate: a.cache_hit_rate,
                oracle_hit_rate: first.oracle.hit_rate,
            }
        })
        .collect()
}

/// Interleaved rounds behind every best-of sweep/kernel figure.
fn rounds(profile: Profile) -> usize {
    match profile {
        Profile::Full => 3,
        Profile::Quick => 5,
    }
}

/// The worker-thread counts the scaling curves record: powers of two up
/// to the host's available parallelism, plus the host count itself.
/// A single-core CI host records just `[1]`.
fn thread_counts() -> Vec<usize> {
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = Vec::new();
    let mut t = 1;
    while t < avail {
        counts.push(t);
        t *= 2;
    }
    counts.push(avail);
    counts
}

/// The fig6a spec (SFC size sweep) at the profile's scale.
fn fig6a_spec(profile: Profile) -> (SimConfig, &'static [f64]) {
    match profile {
        Profile::Full => (
            SimConfig {
                runs: 20,
                ..SimConfig::default()
            },
            &[1.0, 2.0, 3.0, 4.0, 5.0],
        ),
        Profile::Quick => (
            SimConfig {
                runs: 5,
                ..SimConfig::quick()
            },
            &[2.0, 3.0, 4.0],
        ),
    }
}

/// The delay-budget spec (QoS-constrained embedding: LARAC bounded
/// routing + early delay pruning on the hot path).
fn delay_spec(profile: Profile) -> (SimConfig, &'static [f64]) {
    match profile {
        Profile::Full => (
            SimConfig {
                runs: 20,
                ..SimConfig::default()
            },
            &[40.0, 80.0, 200.0, 400.0],
        ),
        Profile::Quick => (
            SimConfig {
                runs: 5,
                ..SimConfig::quick()
            },
            &[60.0, 120.0, 400.0],
        ),
    }
}

/// Times one sweep spec on both executors at one worker count:
/// interleaved rounds in alternating order, best-of-rounds wall clock.
///
/// Asserts the never-lose contract of the parallel executor — it must
/// beat (or, at `threads == 1`, match via the auto-serial fallback) the
/// serial reference in at least one round. This is the bench-smoke pin
/// against re-introducing blind executor spawning.
#[allow(clippy::too_many_arguments)]
fn measure_sweep_at(
    id: &'static str,
    x_label: &'static str,
    base: &SimConfig,
    xs: &[f64],
    set: impl Fn(&mut SimConfig, f64) + Copy,
    algos: impl Fn(f64) -> Vec<Algo> + Copy,
    threads: usize,
    rounds: usize,
) -> SweepSample {
    // Warm round, also the executors-agree differential: a determinism
    // bug would make every timing below meaningless.
    let par = sweep_with_threads(id, x_label, base, xs, set, algos, Some(threads));
    let ser = sweep_serial(id, x_label, base, xs, set, algos);
    assert_eq!(
        dagsfc_sim::report::csv(&par),
        dagsfc_sim::report::csv(&ser),
        "executors diverged — determinism bug, timings are meaningless"
    );

    let mut best_par = f64::INFINITY;
    let mut best_ser = f64::INFINITY;
    let mut best_ratio = 0.0f64;
    for round in 0..rounds {
        let time_par = || {
            let t = Instant::now();
            let r = sweep_with_threads(id, x_label, base, xs, set, algos, Some(threads));
            (t.elapsed().as_secs_f64() * 1e3, r)
        };
        let time_ser = || {
            let t = Instant::now();
            let r = sweep_serial(id, x_label, base, xs, set, algos);
            (t.elapsed().as_secs_f64() * 1e3, r)
        };
        // Alternate which side pays for any monotone drift (thermal,
        // page cache) so neither executor is systematically favored.
        let (par_ms, ser_ms) = if round % 2 == 0 {
            let (s, _) = time_ser();
            let (p, _) = time_par();
            (p, s)
        } else {
            let (p, _) = time_par();
            let (s, _) = time_ser();
            (p, s)
        };
        best_par = best_par.min(par_ms);
        best_ser = best_ser.min(ser_ms);
        best_ratio = best_ratio.max(ser_ms / par_ms.max(1e-9));
    }

    assert!(
        best_ratio >= 0.90,
        "{id} @ {threads} threads: parallel executor lost every round \
         (best ratio {best_ratio:.2}) — it spawned when it could not win"
    );

    SweepSample {
        id: id.to_string(),
        threads,
        points: xs.len(),
        runs_per_point: base.runs,
        rounds,
        parallel_ms: best_par,
        serial_ms: best_ser,
        speedup: best_ratio,
    }
}

/// Scaling curves: fig6a and delay_budget at every recorded thread
/// count.
fn measure_sweeps(profile: Profile) -> Vec<SweepSample> {
    let rounds = rounds(profile);
    let (fig_base, fig_xs) = fig6a_spec(profile);
    let (dly_base, dly_xs) = delay_spec(profile);
    let fig_algos = |x: f64| {
        if x as usize <= BBE_SFC_SIZE_LIMIT {
            vec![Algo::Mbbe, Algo::Bbe, Algo::Minv, Algo::Ranv]
        } else {
            vec![Algo::Mbbe, Algo::Minv, Algo::Ranv]
        }
    };
    let mut out = Vec::new();
    for threads in thread_counts() {
        out.push(measure_sweep_at(
            "fig6a",
            "sfc size",
            &fig_base,
            fig_xs,
            |cfg, x| cfg.sfc_size = x as usize,
            fig_algos,
            threads,
            rounds,
        ));
        out.push(measure_sweep_at(
            "delay_budget",
            "delay budget (us)",
            &dly_base,
            dly_xs,
            |cfg, x| {
                cfg.link_delay_us = Some(DEFAULT_LINK_DELAY_US);
                cfg.delay_budget_us = Some(x);
            },
            |_| vec![Algo::Mbbe, Algo::Minv, Algo::Ranv],
            threads,
            rounds,
        ));
    }
    out
}

/// A deterministic ring-with-chords substrate whose prices sit on the
/// dyadic 2⁻⁴ grid, so the lossless quantizer accepts and `Auto` runs
/// the bucket kernel (the production generators draw continuous prices
/// and always take the heap fallback — this net is the only way to put
/// the bucket path on the clock).
fn dyadic_net(n: u32) -> Network {
    let mut g = Network::new();
    g.add_nodes(n as usize);
    for i in 0..n {
        let price = 0.5 + ((i * 7) % 13) as f64 * 0.0625;
        // lint:allow(unwrap) — endpoints are in range by construction
        g.add_link(NodeId(i), NodeId((i + 1) % n), price, 100.0)
            .unwrap();
    }
    for i in 0..n {
        let price = 1.0 + ((i * 3) % 11) as f64 * 0.125;
        // lint:allow(unwrap) — endpoints are in range by construction
        g.add_link(NodeId(i), NodeId((i + 7) % n), price, 100.0)
            .unwrap();
    }
    g
}

/// One timed pass: a full shortest-path tree from every node under the
/// chosen kernel. Returns (ns/query, Σ dist checksum) — the checksum
/// keeps the builds from being optimized away and pins both kernels to
/// identical trees.
fn kernel_pass(net: &Network, scratch: &mut RoutingScratch, kernel: RoutingKernel) -> (f64, f64) {
    let n = net.node_count();
    let mut checksum = 0.0;
    let t = Instant::now();
    for s in 0..n {
        let tree = ShortestPathTree::build_weighted_kernel_in(
            net,
            NodeId(s as u32),
            &NoFilter,
            None,
            scratch,
            ArcWeight::Price,
            kernel,
        );
        checksum += tree
            .dist_to(NodeId(((s + n / 2) % n) as u32))
            .unwrap_or(0.0);
    }
    (t.elapsed().as_nanos() as f64 / n as f64, checksum)
}

/// Bucket-vs-heap microbench: interleaved best-of-rounds ns per tree
/// build on the dyadic substrate.
fn measure_kernel(profile: Profile) -> KernelSample {
    let n: u32 = match profile {
        Profile::Full => 240,
        Profile::Quick => 120,
    };
    let net = dyadic_net(n);
    assert!(
        bucket_kernel_available(&net, ArcWeight::Price),
        "microbench substrate must quantize losslessly"
    );
    let mut scratch = RoutingScratch::new();

    // Warm both kernels: snapshot build, scratch growth, page faults.
    let (_, warm_heap) = kernel_pass(&net, &mut scratch, RoutingKernel::Heap);
    let (_, warm_bucket) = kernel_pass(&net, &mut scratch, RoutingKernel::Auto);
    assert_eq!(
        warm_heap.to_bits(),
        warm_bucket.to_bits(),
        "kernels disagree — the differential suite should have caught this"
    );

    let rounds = rounds(profile).max(5);
    let mut best_heap = f64::INFINITY;
    let mut best_bucket = f64::INFINITY;
    for round in 0..rounds {
        let (heap_ns, bucket_ns) = if round % 2 == 0 {
            let (h, _) = kernel_pass(&net, &mut scratch, RoutingKernel::Heap);
            let (b, _) = kernel_pass(&net, &mut scratch, RoutingKernel::Auto);
            (h, b)
        } else {
            let (b, _) = kernel_pass(&net, &mut scratch, RoutingKernel::Auto);
            let (h, _) = kernel_pass(&net, &mut scratch, RoutingKernel::Heap);
            (h, b)
        };
        best_heap = best_heap.min(heap_ns);
        best_bucket = best_bucket.min(bucket_ns);
    }

    KernelSample {
        nodes: n as usize,
        links: net.link_count(),
        queries: n as usize,
        rounds,
        heap_ns_per_query: best_heap,
        bucket_ns_per_query: best_bucket,
        speedup: best_heap / best_bucket.max(1e-9),
    }
}

fn measure(profile: Profile, annotations: Vec<Annotation>) -> Baseline {
    Baseline {
        schema: SCHEMA.to_string(),
        profile: match profile {
            Profile::Full => "full",
            Profile::Quick => "quick",
        }
        .to_string(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        solvers: measure_solvers(profile),
        sweeps: measure_sweeps(profile),
        kernel: Some(measure_kernel(profile)),
        annotations,
    }
}

/// Compares `current` against `reference`; returns regression messages.
fn regressions(current: &Baseline, reference: &Baseline, tolerance: f64) -> Vec<String> {
    let mut out = Vec::new();
    for cur in &current.solvers {
        let Some(base) = reference.solvers.iter().find(|s| s.name == cur.name) else {
            eprintln!("note: solver {} absent from baseline, skipping", cur.name);
            continue;
        };
        let ratio = cur.ns_per_solve / base.ns_per_solve.max(1.0);
        if ratio > 1.0 + tolerance {
            out.push(format!(
                "{}: {:.0} ns/solve vs baseline {:.0} ({:+.1}% > {:.0}% tolerance)",
                cur.name,
                cur.ns_per_solve,
                base.ns_per_solve,
                (ratio - 1.0) * 100.0,
                tolerance * 100.0,
            ));
        }
    }
    if let (Some(cur), Some(base)) = (&current.kernel, &reference.kernel) {
        let ratio = cur.bucket_ns_per_query / base.bucket_ns_per_query.max(1.0);
        if ratio > 1.0 + tolerance {
            out.push(format!(
                "bucket kernel: {:.0} ns/query vs baseline {:.0} ({:+.1}% > {:.0}% tolerance)",
                cur.bucket_ns_per_query,
                base.bucket_ns_per_query,
                (ratio - 1.0) * 100.0,
                tolerance * 100.0,
            ));
        }
    }
    out
}

fn fail(msg: &str) -> ! {
    eprintln!("dagsfc-baseline: {msg}");
    std::process::exit(1)
}

fn main() -> ExitCode {
    let mut profile = Profile::Full;
    let mut out: Option<String> = None;
    let mut compare: Option<String> = None;
    let mut tolerance = 0.25;
    let mut annotations = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => profile = Profile::Quick,
            "--full" => profile = Profile::Full,
            "--out" => {
                out = Some(args.next().unwrap_or_else(|| fail("--out needs a path")));
            }
            "--compare" => {
                compare = Some(
                    args.next()
                        .unwrap_or_else(|| fail("--compare needs a path")),
                );
            }
            "--tolerance" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| fail("--tolerance needs a value"));
                tolerance = v
                    .parse()
                    .unwrap_or_else(|_| fail("--tolerance must be a number"));
            }
            "--annotate" => {
                let kv = args
                    .next()
                    .unwrap_or_else(|| fail("--annotate needs key=value"));
                let (k, v) = kv
                    .split_once('=')
                    .unwrap_or_else(|| fail("--annotate needs key=value"));
                annotations.push(Annotation {
                    key: k.to_string(),
                    value: v.to_string(),
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: dagsfc-baseline [--quick|--full] [--out FILE] \
                     [--compare FILE [--tolerance F]] [--annotate k=v ...]"
                );
                return ExitCode::SUCCESS;
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    let mut current = measure(profile, annotations);
    // Self-recorded provenance: the measured kernel speedup travels with
    // the document even when later tooling strips the kernel section.
    if let Some(k) = &current.kernel {
        current.annotations.push(Annotation {
            key: "kernel_speedup".to_string(),
            value: format!("{:.2}x bucket vs heap ({} nodes)", k.speedup, k.nodes),
        });
    }
    let current = current;

    for s in &current.solvers {
        eprintln!(
            "{:8} {:>12.0} ns/solve  success {:>5.1}%  oracle hit {:>5.1}%",
            s.name,
            s.ns_per_solve,
            s.success_rate * 100.0,
            s.oracle_hit_rate * 100.0
        );
    }
    for s in &current.sweeps {
        eprintln!(
            "{:12} @ {} thread(s): parallel {:.0} ms, serial {:.0} ms, speedup {:.2}x",
            s.id, s.threads, s.parallel_ms, s.serial_ms, s.speedup
        );
    }
    if let Some(k) = &current.kernel {
        eprintln!(
            "kernel       bucket {:.0} ns/query, heap {:.0} ns/query, speedup {:.2}x \
             ({} nodes, {} queries/round)",
            k.bucket_ns_per_query, k.heap_ns_per_query, k.speedup, k.nodes, k.queries
        );
    }

    let json =
        serde_json::to_string_pretty(&current).unwrap_or_else(|e| fail(&format!("serialize: {e}")));
    match &out {
        Some(path) => {
            std::fs::write(path, json + "\n").unwrap_or_else(|e| fail(&format!("write: {e}")));
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    if let Some(path) = compare {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
        let reference: Baseline =
            serde_json::from_str(&text).unwrap_or_else(|e| fail(&format!("parse {path}: {e}")));
        if reference.schema != SCHEMA {
            fail(&format!(
                "baseline schema {:?} != {SCHEMA:?}; regenerate it",
                reference.schema
            ));
        }
        if reference.profile != current.profile {
            eprintln!(
                "note: comparing {} run against {} baseline",
                current.profile, reference.profile
            );
        }
        let bad = regressions(&current, &reference, tolerance);
        if !bad.is_empty() {
            for b in &bad {
                eprintln!("REGRESSION {b}");
            }
            return ExitCode::from(2);
        }
        eprintln!("within {:.0}% of baseline {path}", tolerance * 100.0);
    }

    ExitCode::SUCCESS
}
