//! `dagsfc-baseline` — a criterion-free, machine-readable benchmark
//! harness built on `std::time::Instant`.
//!
//! Measures the embedding hot path end to end and emits one JSON
//! document (`BENCH_baseline.json` when run with `--out`):
//!
//! * per-solver ns/solve and success rate on a fixed instance,
//! * the path oracle's cache hit rate per solver,
//! * wall-clock time of a figure sweep on the parallel executor and on
//!   the serial reference, plus their ratio.
//!
//! `--compare <file>` re-measures and fails (exit code 2) when any
//! per-solver ns/solve regressed by more than `--tolerance` (default
//! 0.25) against the committed baseline — that is the CI `bench-smoke`
//! gate. Comparisons are keyed by solver name; solvers present in only
//! one file are reported but never fail the gate, so adding a solver
//! does not require regenerating the baseline first.

use std::process::ExitCode;
use std::time::Instant;

use dagsfc_sim::config::DEFAULT_LINK_DELAY_US;
use dagsfc_sim::runner::{run_instance, Algo};
use dagsfc_sim::sweep::{sweep, sweep_serial, BBE_SFC_SIZE_LIMIT};
use dagsfc_sim::SimConfig;
use serde::{Deserialize, Serialize};

/// Schema tag: bump when the JSON layout changes incompatibly.
const SCHEMA: &str = "dagsfc-bench/1";

/// One solver's steady-state measurement.
#[derive(Debug, Serialize, Deserialize)]
struct SolverSample {
    /// Solver name as reported by the runner ("MBBE", "BBE", …).
    name: String,
    /// Substrate node count of the measured instance.
    network_size: usize,
    /// Chain length of the measured instance.
    sfc_size: usize,
    /// Independent (SFC, flow) draws solved.
    runs: usize,
    /// Mean wall-clock nanoseconds per solve over all runs.
    ns_per_solve: f64,
    /// Fraction of runs that produced a feasible embedding.
    success_rate: f64,
    /// Solver-internal shortest-path cache hit rate.
    solver_cache_hit_rate: f64,
    /// Shared path-oracle hit rate for the instance.
    oracle_hit_rate: f64,
}

/// Wall-clock comparison of the two sweep executors on one figure spec.
#[derive(Debug, Serialize, Deserialize)]
struct SweepSample {
    /// Figure id the spec mirrors.
    id: String,
    /// Number of x points.
    points: usize,
    /// Runs per point.
    runs_per_point: usize,
    /// Parallel executor wall-clock milliseconds.
    parallel_ms: f64,
    /// Serial reference wall-clock milliseconds.
    serial_ms: f64,
    /// serial_ms / parallel_ms (1.0 on a single-core host).
    speedup: f64,
}

/// A free-form `key=value` annotation recorded verbatim in the output
/// (provenance: revision hashes, cross-revision timings, host notes).
#[derive(Debug, Serialize, Deserialize)]
struct Annotation {
    key: String,
    value: String,
}

/// The whole baseline document.
#[derive(Debug, Serialize, Deserialize)]
struct Baseline {
    schema: String,
    /// "full" or "quick".
    profile: String,
    /// Worker threads available to the parallel executor.
    threads: usize,
    solvers: Vec<SolverSample>,
    sweeps: Vec<SweepSample>,
    annotations: Vec<Annotation>,
}

/// Which measurement scale to run.
#[derive(Clone, Copy, PartialEq)]
enum Profile {
    /// Paper-scale instance (500 nodes), more runs. Minutes.
    Full,
    /// CI-scale instance (60 nodes), few runs. Seconds.
    Quick,
}

fn solver_config(profile: Profile) -> SimConfig {
    match profile {
        Profile::Full => SimConfig {
            runs: 20,
            ..SimConfig::default()
        },
        Profile::Quick => SimConfig {
            runs: 5,
            ..SimConfig::quick()
        },
    }
}

/// Times every paper solver on the profile's fixed instance.
fn measure_solvers(profile: Profile) -> Vec<SolverSample> {
    let cfg = solver_config(profile);
    [Algo::Mbbe, Algo::Bbe, Algo::Minv, Algo::Ranv]
        .iter()
        .map(|&algo| {
            let result = run_instance(&cfg, &[algo]);
            let a = &result.algos[0];
            SolverSample {
                name: a.name.to_string(),
                network_size: cfg.network_size,
                sfc_size: cfg.sfc_size,
                runs: cfg.runs,
                ns_per_solve: a.mean_elapsed.as_nanos() as f64,
                success_rate: a.successes as f64 / cfg.runs.max(1) as f64,
                solver_cache_hit_rate: a.cache_hit_rate,
                oracle_hit_rate: result.oracle.hit_rate,
            }
        })
        .collect()
}

/// Times the fig6a spec (SFC size sweep) on both executors.
fn measure_sweep(profile: Profile) -> SweepSample {
    let (base, xs): (SimConfig, &[f64]) = match profile {
        Profile::Full => (
            SimConfig {
                runs: 20,
                ..SimConfig::default()
            },
            &[1.0, 2.0, 3.0, 4.0, 5.0],
        ),
        Profile::Quick => (
            SimConfig {
                runs: 5,
                ..SimConfig::quick()
            },
            &[2.0, 3.0, 4.0],
        ),
    };
    let set = |cfg: &mut SimConfig, x: f64| cfg.sfc_size = x as usize;
    let algos = |x: f64| {
        if x as usize <= BBE_SFC_SIZE_LIMIT {
            vec![Algo::Mbbe, Algo::Bbe, Algo::Minv, Algo::Ranv]
        } else {
            vec![Algo::Mbbe, Algo::Minv, Algo::Ranv]
        }
    };

    let t = Instant::now();
    let par = sweep("fig6a", "sfc size", &base, xs, set, algos);
    let parallel_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let ser = sweep_serial("fig6a", "sfc size", &base, xs, set, algos);
    let serial_ms = t.elapsed().as_secs_f64() * 1e3;

    assert_eq!(
        dagsfc_sim::report::csv(&par),
        dagsfc_sim::report::csv(&ser),
        "executors diverged — determinism bug, timings are meaningless"
    );

    SweepSample {
        id: "fig6a".to_string(),
        points: xs.len(),
        runs_per_point: base.runs,
        parallel_ms,
        serial_ms,
        speedup: serial_ms / parallel_ms.max(1e-9),
    }
}

/// Times the delay-budget sweep (QoS-constrained embedding: LARAC
/// bounded routing + early delay pruning on the hot path) on both
/// executors.
fn measure_delay_sweep(profile: Profile) -> SweepSample {
    let (base, xs): (SimConfig, &[f64]) = match profile {
        Profile::Full => (
            SimConfig {
                runs: 20,
                ..SimConfig::default()
            },
            &[40.0, 80.0, 200.0, 400.0],
        ),
        Profile::Quick => (
            SimConfig {
                runs: 5,
                ..SimConfig::quick()
            },
            &[60.0, 120.0, 400.0],
        ),
    };
    let set = |cfg: &mut SimConfig, x: f64| {
        cfg.link_delay_us = Some(DEFAULT_LINK_DELAY_US);
        cfg.delay_budget_us = Some(x);
    };
    let algos = |_: f64| vec![Algo::Mbbe, Algo::Minv, Algo::Ranv];

    let t = Instant::now();
    let par = sweep("delay_budget", "delay budget (us)", &base, xs, set, algos);
    let parallel_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let ser = sweep_serial("delay_budget", "delay budget (us)", &base, xs, set, algos);
    let serial_ms = t.elapsed().as_secs_f64() * 1e3;

    assert_eq!(
        dagsfc_sim::report::csv(&par),
        dagsfc_sim::report::csv(&ser),
        "executors diverged — determinism bug, timings are meaningless"
    );

    SweepSample {
        id: "delay_budget".to_string(),
        points: xs.len(),
        runs_per_point: base.runs,
        parallel_ms,
        serial_ms,
        speedup: serial_ms / parallel_ms.max(1e-9),
    }
}

fn measure(profile: Profile, annotations: Vec<Annotation>) -> Baseline {
    Baseline {
        schema: SCHEMA.to_string(),
        profile: match profile {
            Profile::Full => "full",
            Profile::Quick => "quick",
        }
        .to_string(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        solvers: measure_solvers(profile),
        sweeps: vec![measure_sweep(profile), measure_delay_sweep(profile)],
        annotations,
    }
}

/// Compares `current` against `reference`; returns regression messages.
fn regressions(current: &Baseline, reference: &Baseline, tolerance: f64) -> Vec<String> {
    let mut out = Vec::new();
    for cur in &current.solvers {
        let Some(base) = reference.solvers.iter().find(|s| s.name == cur.name) else {
            eprintln!("note: solver {} absent from baseline, skipping", cur.name);
            continue;
        };
        let ratio = cur.ns_per_solve / base.ns_per_solve.max(1.0);
        if ratio > 1.0 + tolerance {
            out.push(format!(
                "{}: {:.0} ns/solve vs baseline {:.0} ({:+.1}% > {:.0}% tolerance)",
                cur.name,
                cur.ns_per_solve,
                base.ns_per_solve,
                (ratio - 1.0) * 100.0,
                tolerance * 100.0,
            ));
        }
    }
    out
}

fn fail(msg: &str) -> ! {
    eprintln!("dagsfc-baseline: {msg}");
    std::process::exit(1)
}

fn main() -> ExitCode {
    let mut profile = Profile::Full;
    let mut out: Option<String> = None;
    let mut compare: Option<String> = None;
    let mut tolerance = 0.25;
    let mut annotations = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => profile = Profile::Quick,
            "--full" => profile = Profile::Full,
            "--out" => {
                out = Some(args.next().unwrap_or_else(|| fail("--out needs a path")));
            }
            "--compare" => {
                compare = Some(
                    args.next()
                        .unwrap_or_else(|| fail("--compare needs a path")),
                );
            }
            "--tolerance" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| fail("--tolerance needs a value"));
                tolerance = v
                    .parse()
                    .unwrap_or_else(|_| fail("--tolerance must be a number"));
            }
            "--annotate" => {
                let kv = args
                    .next()
                    .unwrap_or_else(|| fail("--annotate needs key=value"));
                let (k, v) = kv
                    .split_once('=')
                    .unwrap_or_else(|| fail("--annotate needs key=value"));
                annotations.push(Annotation {
                    key: k.to_string(),
                    value: v.to_string(),
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: dagsfc-baseline [--quick|--full] [--out FILE] \
                     [--compare FILE [--tolerance F]] [--annotate k=v ...]"
                );
                return ExitCode::SUCCESS;
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    let current = measure(profile, annotations);

    for s in &current.solvers {
        eprintln!(
            "{:8} {:>12.0} ns/solve  success {:>5.1}%  oracle hit {:>5.1}%",
            s.name,
            s.ns_per_solve,
            s.success_rate * 100.0,
            s.oracle_hit_rate * 100.0
        );
    }
    for s in &current.sweeps {
        eprintln!(
            "{:8} parallel {:.0} ms, serial {:.0} ms, speedup {:.2}x",
            s.id, s.parallel_ms, s.serial_ms, s.speedup
        );
    }

    let json =
        serde_json::to_string_pretty(&current).unwrap_or_else(|e| fail(&format!("serialize: {e}")));
    match &out {
        Some(path) => {
            std::fs::write(path, json + "\n").unwrap_or_else(|e| fail(&format!("write: {e}")));
            eprintln!("wrote {path}");
        }
        None => println!("{json}"),
    }

    if let Some(path) = compare {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
        let reference: Baseline =
            serde_json::from_str(&text).unwrap_or_else(|e| fail(&format!("parse {path}: {e}")));
        if reference.schema != SCHEMA {
            fail(&format!(
                "baseline schema {:?} != {SCHEMA:?}; regenerate it",
                reference.schema
            ));
        }
        if reference.profile != current.profile {
            eprintln!(
                "note: comparing {} run against {} baseline",
                current.profile, reference.profile
            );
        }
        let bad = regressions(&current, &reference, tolerance);
        if !bad.is_empty() {
            for b in &bad {
                eprintln!("REGRESSION {b}");
            }
            return ExitCode::from(2);
        }
        eprintln!("within {:.0}% of baseline {path}", tolerance * 100.0);
    }

    ExitCode::SUCCESS
}
