//! Ablation of MBBE's three §4.5 strategies (DESIGN.md §8): each knob
//! is toggled in isolation against classic BBE on the same instance, so
//! the bench output shows which strategy buys which share of the
//! speedup. A second group sweeps `X_max` and `X_d`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagsfc_bench::bench_instance;
use dagsfc_core::solvers::{BbeConfig, MbbeSolver, Solver};
use std::hint::black_box;

fn strategy_ablation(c: &mut Criterion) {
    let (net, sfc, flow) = bench_instance(5);
    let variants: Vec<(&str, BbeConfig)> = vec![
        ("bbe_classic", BbeConfig::default()),
        (
            "xmax_only",
            BbeConfig {
                x_max: Some(40),
                adaptive_x_max: true,
                ..BbeConfig::default()
            },
        ),
        (
            "mincost_only",
            BbeConfig {
                use_min_cost_paths: true,
                ..BbeConfig::default()
            },
        ),
        (
            "xd_only",
            BbeConfig {
                x_d: Some(4),
                ..BbeConfig::default()
            },
        ),
        ("mbbe_all_three", BbeConfig::mbbe()),
        ("mbbe_steiner", BbeConfig::mbbe_steiner()),
    ];
    let mut group = c.benchmark_group("mbbe_strategy_ablation");
    group.sample_size(10);
    for (name, config) in variants {
        let solver = MbbeSolver { config };
        group.bench_function(name, |b| {
            b.iter(|| black_box(solver.solve(&net, &sfc, &flow).unwrap()))
        });
    }
    group.finish();
}

fn xmax_sweep(c: &mut Criterion) {
    let (net, sfc, flow) = bench_instance(5);
    let mut group = c.benchmark_group("xmax_sweep");
    group.sample_size(10);
    for x_max in [10usize, 20, 40, 60] {
        let solver = MbbeSolver::with_limits(x_max, 4);
        group.bench_with_input(BenchmarkId::from_parameter(x_max), &x_max, |b, _| {
            b.iter(|| black_box(solver.solve(&net, &sfc, &flow).unwrap()))
        });
    }
    group.finish();
}

fn xd_sweep(c: &mut Criterion) {
    let (net, sfc, flow) = bench_instance(5);
    let mut group = c.benchmark_group("xd_sweep");
    group.sample_size(10);
    for x_d in [1usize, 2, 4, 8] {
        let solver = MbbeSolver::with_limits(40, x_d);
        group.bench_with_input(BenchmarkId::from_parameter(x_d), &x_d, |b, _| {
            b.iter(|| black_box(solver.solve(&net, &sfc, &flow).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = ablation;
    config = Criterion::default();
    targets = strategy_ablation, xmax_sweep, xd_sweep
}
criterion_main!(ablation);
