//! One bench group per paper figure: each target runs the corresponding
//! sweep at bench scale (60-node cloud, 5 runs/point, reduced x-grids),
//! so `cargo bench` regenerates the *shape* of every figure and tracks
//! regressions in the end-to-end evaluation pipeline.
//!
//! The full paper-scale series are produced by
//! `cargo run --release --example paper_figures -- all full`.

use criterion::{criterion_group, criterion_main, Criterion};
use dagsfc_bench::bench_config;
use dagsfc_sim::sweep;
use std::hint::black_box;

fn fig6a_sfc_size(c: &mut Criterion) {
    let base = bench_config();
    c.bench_function("fig6a/sfc_size_sweep", |b| {
        b.iter(|| black_box(sweep::sfc_size::fig6a_on(&base, &[2.0, 4.0, 6.0])))
    });
}

fn fig6b_network_size(c: &mut Criterion) {
    let base = bench_config();
    c.bench_function("fig6b/network_size_sweep", |b| {
        b.iter(|| black_box(sweep::network_size::fig6b_on(&base, &[20.0, 80.0])))
    });
}

fn fig6c_connectivity(c: &mut Criterion) {
    let base = bench_config();
    c.bench_function("fig6c/connectivity_sweep", |b| {
        b.iter(|| black_box(sweep::connectivity::fig6c_on(&base, &[3.0, 8.0])))
    });
}

fn fig6d_deploy_ratio(c: &mut Criterion) {
    let base = bench_config();
    c.bench_function("fig6d/deploy_ratio_sweep", |b| {
        b.iter(|| black_box(sweep::deploy_ratio::fig6d_on(&base, &[0.2, 0.6])))
    });
}

fn fig6e_price_ratio(c: &mut Criterion) {
    let base = bench_config();
    c.bench_function("fig6e/price_ratio_sweep", |b| {
        b.iter(|| black_box(sweep::price_ratio::fig6e_on(&base, &[0.05, 0.4])))
    });
}

fn fig6f_fluctuation(c: &mut Criterion) {
    let base = bench_config();
    c.bench_function("fig6f/fluctuation_sweep", |b| {
        b.iter(|| black_box(sweep::fluctuation::fig6f_on(&base, &[0.05, 0.4])))
    });
}

criterion_group! {
    name = fig6;
    config = Criterion::default().sample_size(10);
    targets = fig6a_sfc_size, fig6b_network_size, fig6c_connectivity,
              fig6d_deploy_ratio, fig6e_price_ratio, fig6f_fluctuation
}
criterion_main!(fig6);
