//! The §4.5 complexity claim, measured: per-solve runtime of BBE vs
//! MBBE vs the baselines as the SFC size and network size grow. The
//! expected picture is the paper's — BBE's time explodes with the chain
//! length while MBBE stays flat, at (near-)equal cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagsfc_bench::bench_instance;
use dagsfc_core::solvers::{BbeSolver, MbbeSolver, MinvSolver, RanvSolver, Solver};
use dagsfc_sim::{runner, SimConfig};
use std::hint::black_box;

fn solver_vs_sfc_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_vs_sfc_size");
    group.sample_size(10);
    for size in [1usize, 3, 5] {
        let (net, sfc, flow) = bench_instance(size);
        group.bench_with_input(BenchmarkId::new("BBE", size), &size, |b, _| {
            let solver = BbeSolver::new();
            b.iter(|| black_box(solver.solve(&net, &sfc, &flow).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("MBBE", size), &size, |b, _| {
            let solver = MbbeSolver::new();
            b.iter(|| black_box(solver.solve(&net, &sfc, &flow).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("MINV", size), &size, |b, _| {
            let solver = MinvSolver::new();
            b.iter(|| black_box(solver.solve(&net, &sfc, &flow).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("RANV", size), &size, |b, _| {
            let solver = RanvSolver::new(1);
            b.iter(|| black_box(solver.solve(&net, &sfc, &flow).unwrap()))
        });
    }
    group.finish();
}

fn solver_vs_network_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_vs_network_size");
    group.sample_size(10);
    for nodes in [30usize, 100, 300] {
        let cfg = SimConfig {
            network_size: nodes,
            sfc_size: 5,
            ..SimConfig::default()
        };
        let net = runner::instance_network(&cfg);
        let (sfc, flow) = runner::instance_request(&cfg, &net, 0);
        group.bench_with_input(BenchmarkId::new("MBBE", nodes), &nodes, |b, _| {
            let solver = MbbeSolver::new();
            b.iter(|| black_box(solver.solve(&net, &sfc, &flow).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("MINV", nodes), &nodes, |b, _| {
            let solver = MinvSolver::new();
            b.iter(|| black_box(solver.solve(&net, &sfc, &flow).unwrap()))
        });
    }
    group.finish();
}

criterion_group! {
    name = solver_runtime;
    config = Criterion::default();
    targets = solver_vs_sfc_size, solver_vs_network_size
}
criterion_main!(solver_runtime);
