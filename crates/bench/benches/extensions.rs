//! Benchmarks for the beyond-the-paper extensions: online admission
//! throughput, request lifecycles, 1+1 protection, and the MBBE-ST
//! Steiner variant against plain MBBE on the same instance.

use criterion::{criterion_group, criterion_main, Criterion};
use dagsfc_bench::bench_instance;
use dagsfc_core::protect::protect;
use dagsfc_core::solvers::{MbbeSolver, MbbeStSolver, Solver};
use dagsfc_sim::lifecycle::{run_lifecycle, LifecycleConfig};
use dagsfc_sim::online::{run_online, OnlineConfig};
use dagsfc_sim::{Algo, SimConfig};
use std::hint::black_box;

fn pressured() -> SimConfig {
    SimConfig {
        network_size: 40,
        sfc_size: 4,
        vnf_capacity: 8.0,
        link_capacity: 8.0,
        ..SimConfig::default()
    }
}

fn online_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("online");
    group.sample_size(10);
    group.bench_function("mbbe_60_requests", |b| {
        let cfg = OnlineConfig {
            base: pressured(),
            requests: 60,
            algo: Algo::Mbbe,
        };
        b.iter(|| black_box(run_online(&cfg)))
    });
    group.bench_function("minv_60_requests", |b| {
        let cfg = OnlineConfig {
            base: pressured(),
            requests: 60,
            algo: Algo::Minv,
        };
        b.iter(|| black_box(run_online(&cfg)))
    });
    group.finish();
}

fn lifecycle_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("lifecycle");
    group.sample_size(10);
    group.bench_function("mbbe_60_arrivals", |b| {
        let cfg = LifecycleConfig {
            base: pressured(),
            arrivals: 60,
            mean_holding: 8.0,
            algo: Algo::Mbbe,
        };
        b.iter(|| black_box(run_lifecycle(&cfg)))
    });
    group.finish();
}

fn protection_bench(c: &mut Criterion) {
    let (net, sfc, flow) = bench_instance(4);
    let out = MbbeSolver::new().solve(&net, &sfc, &flow).unwrap();
    c.bench_function("protect/bhandari_backups", |b| {
        b.iter(|| black_box(protect(&net, &sfc, &flow, &out.embedding).unwrap()))
    });
}

fn steiner_vs_plain(c: &mut Criterion) {
    let (net, sfc, flow) = bench_instance(5);
    let mut group = c.benchmark_group("steiner_variant");
    group.sample_size(10);
    group.bench_function("mbbe", |b| {
        let s = MbbeSolver::new();
        b.iter(|| black_box(s.solve(&net, &sfc, &flow).unwrap()))
    });
    group.bench_function("mbbe_st", |b| {
        let s = MbbeStSolver::new();
        b.iter(|| black_box(s.solve(&net, &sfc, &flow).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = extensions;
    config = Criterion::default();
    targets = online_bench, lifecycle_bench, protection_bench, steiner_vs_plain
}
criterion_main!(extensions);
