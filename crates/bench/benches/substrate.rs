//! Substrate microbenches: the primitives every solver is built on —
//! the random network generator, Dijkstra, Yen's k-shortest paths, the
//! BFS search-tree growth, and residual-state reservation/rollback.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dagsfc_core::solvers::bbe::SearchTree;
use dagsfc_net::routing::{k_shortest_paths, min_cost_path, NoFilter};
use dagsfc_net::{generator, NetGenConfig, Network, NetworkState, NodeId, VnfTypeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn make_net(nodes: usize) -> Network {
    let cfg = NetGenConfig {
        nodes,
        avg_degree: 6.0,
        vnf_kinds: 13,
        ..NetGenConfig::default()
    };
    generator::generate(&cfg, &mut StdRng::seed_from_u64(1)).unwrap()
}

fn generator_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator");
    for nodes in [100usize, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| black_box(make_net(n)))
        });
    }
    group.finish();
}

fn dijkstra_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("dijkstra");
    for nodes in [100usize, 500] {
        let net = make_net(nodes);
        let to = NodeId(nodes as u32 - 1);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
            b.iter(|| black_box(min_cost_path(&net, NodeId(0), to, &NoFilter).unwrap()))
        });
    }
    group.finish();
}

fn yen_bench(c: &mut Criterion) {
    let net = make_net(100);
    let mut group = c.benchmark_group("yen_k_shortest");
    for k in [2usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(k_shortest_paths(&net, NodeId(0), NodeId(99), k, &NoFilter)))
        });
    }
    group.finish();
}

fn search_tree_bench(c: &mut Criterion) {
    let net = make_net(500);
    // Require a rare kind so the BFS has to expand several rings.
    let required = [VnfTypeId(0), VnfTypeId(5), VnfTypeId(12)];
    c.bench_function("search_tree/grow_500", |b| {
        b.iter(|| black_box(SearchTree::grow(&net, NodeId(7), &required, |_| true, None)))
    });
}

fn state_bench(c: &mut Criterion) {
    let net = make_net(500);
    c.bench_function("state/reserve_rollback_100", |b| {
        let mut state = NetworkState::new(&net);
        b.iter(|| {
            let cp = state.checkpoint();
            for i in 0..100u32 {
                let l = dagsfc_net::LinkId(i % net.link_count() as u32);
                let _ = state.reserve_link(l, 0.5);
            }
            state.rollback(cp);
        })
    });
}

criterion_group! {
    name = substrate;
    config = Criterion::default();
    targets = generator_bench, dijkstra_bench, yen_bench, search_tree_bench, state_bench
}
criterion_main!(substrate);
