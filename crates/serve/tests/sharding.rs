//! Integration tests for the batched, sharded serving front end: the
//! 1-shard differential against the legacy daemon (bit-for-bit on the
//! committed smoke trace), worker/shard-pool independence, the `hello`
//! protocol handshake, and multi-shard stitching audits.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::PathBuf;

use dagsfc_serve::{
    replay, serve, spawn_batched, BatchConfig, Client, ClientError, ReplayReport, ServeConfig,
    WireRequest, PROTOCOL_VERSION,
};
use dagsfc_sim::io as sim_io;
use dagsfc_sim::runner::instance_network;
use dagsfc_sim::{run_trace, ReplayTrace};

fn smoke_trace() -> ReplayTrace {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../traces/smoke-50.json");
    sim_io::load_trace(&path).expect("committed smoke trace")
}

fn replay_batched(
    trace: &ReplayTrace,
    shards: usize,
    workers: usize,
) -> (ReplayReport, dagsfc_serve::StatsReport) {
    let cfg = BatchConfig {
        shards,
        workers_per_shard: workers,
        algo: trace.algo,
        ..BatchConfig::default()
    };
    let net = instance_network(&trace.base);
    let handle = spawn_batched(net, shards, cfg, "127.0.0.1:0").expect("spawn batched");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let report = replay(&mut client, trace).expect("replay");
    drop(client);
    (report, handle.join())
}

/// The tentpole differential: a 1-shard batched pipeline is
/// bit-for-bit identical to the legacy thread-per-connection daemon —
/// and both match the in-process lifecycle — on the committed trace.
#[test]
fn one_shard_batched_pipeline_matches_legacy_daemon_bit_for_bit() {
    let trace = smoke_trace();
    let truth = run_trace(&instance_network(&trace.base), &trace);

    let handle = serve::spawn(
        instance_network(&trace.base),
        ServeConfig {
            algo: trace.algo,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("spawn legacy");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let legacy = replay(&mut client, &trace).expect("legacy replay");
    drop(client);
    let legacy_stats = handle.join();

    let (batched, batched_stats) = replay_batched(&trace, 1, 2);

    assert_eq!(batched.per_arrival, legacy.per_arrival);
    assert_eq!(batched.departure_order, legacy.departure_order);
    assert_eq!(batched.total_cost(), legacy.total_cost());
    assert_eq!(batched.per_arrival, truth.per_arrival);
    assert_eq!(batched.departure_order, truth.departure_order);
    assert_eq!(batched_stats.accepted, legacy_stats.accepted);
    assert_eq!(batched_stats.rejected, legacy_stats.rejected);
    assert_eq!(batched_stats.total_cost, legacy_stats.total_cost);
    assert_eq!(batched_stats.audits_failed, 0);
    assert_eq!(batched_stats.shards, 1);
    assert_eq!(batched_stats.cross_shard_offered, 0);
}

/// Replay outcomes are a function of admission order alone: any
/// worker-pool size, any batching of the socket stream, same fates.
#[test]
fn batched_outcomes_are_independent_of_worker_count() {
    let trace = smoke_trace();
    for shards in [1usize, 3] {
        let (baseline, base_stats) = replay_batched(&trace, shards, 1);
        for workers in [2usize, 5] {
            let (report, stats) = replay_batched(&trace, shards, workers);
            assert_eq!(
                report.per_arrival, baseline.per_arrival,
                "per-arrival fates diverged at shards={shards} workers={workers}"
            );
            assert_eq!(report.departure_order, baseline.departure_order);
            assert_eq!(report.total_cost(), baseline.total_cost());
            assert_eq!(stats.cross_shard_accepted, base_stats.cross_shard_accepted);
            assert_eq!(stats.audits_failed, 0);
        }
    }
}

/// Multi-shard replay actually stitches across gateways, and every
/// stitched embedding passes the unpartitioned constraint audit.
#[test]
fn multi_shard_replay_stitches_and_audits_clean() {
    let trace = smoke_trace();
    let (report, stats) = replay_batched(&trace, 4, 2);
    assert!(report.accepted > 0, "4-shard replay must accept something");
    assert_eq!(stats.shards, 4);
    assert!(
        stats.cross_shard_accepted > 0,
        "the gateway-stitching path was never exercised"
    );
    assert_eq!(stats.audits_failed, 0);
    assert_eq!(stats.per_shard.len(), 4);
    let lanes: u64 = stats.per_shard.iter().map(|l| l.released).sum();
    assert!(
        lanes >= stats.released,
        "per-shard lanes under-report releases"
    );
}

/// `Client::connect` performs the hello handshake against both server
/// generations; a wrong version is refused before any work is queued.
#[test]
fn hello_handshake_succeeds_on_both_servers_and_rejects_bad_versions() {
    let trace = smoke_trace();
    let net = instance_network(&trace.base);

    let legacy = serve::spawn(net.clone(), ServeConfig::default(), "127.0.0.1:0").expect("legacy");
    let batched = spawn_batched(net, 1, BatchConfig::default(), "127.0.0.1:0").expect("batched");
    for addr in [legacy.addr(), batched.addr()] {
        // The versioned handshake succeeds...
        let mut client = Client::connect(addr).expect("handshake");
        client.ping().expect("ping after hello");

        // ...a stale version is refused with the daemon's version echoed...
        let resp = client
            .request(&WireRequest {
                cmd: "hello".into(),
                proto: Some(PROTOCOL_VERSION + 7),
                ..WireRequest::default()
            })
            .expect("transport");
        assert_eq!(resp.status, "error");
        assert_eq!(resp.proto, Some(PROTOCOL_VERSION));
        assert!(
            resp.reason
                .as_deref()
                .unwrap_or("")
                .contains("protocol mismatch"),
            "reason should name the mismatch, got {:?}",
            resp.reason
        );

        // ...and an unversioned hello is refused too.
        let resp = client
            .request(&WireRequest {
                cmd: "hello".into(),
                ..WireRequest::default()
            })
            .expect("transport");
        assert_eq!(resp.status, "error");
        drop(client);
    }
    let mut c = Client::connect(legacy.addr()).expect("connect");
    c.shutdown().expect("shutdown");
    legacy.join();
    let mut c = Client::connect(batched.addr()).expect("connect");
    c.shutdown().expect("shutdown");
    batched.join();
}

/// A daemon speaking a different protocol version fails
/// `Client::connect` fast with the typed mismatch error.
#[test]
fn connect_fails_fast_with_typed_error_on_version_skew() {
    // A one-connection fake daemon pinned to protocol v1.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let fake = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read hello");
        let mut w = stream;
        w.write_all(b"{\"status\":\"error\",\"proto\":1,\"reason\":\"protocol mismatch\"}\n")
            .expect("write");
    });
    match Client::connect(addr) {
        Err(ClientError::ProtocolMismatch { client, server }) => {
            assert_eq!(client, PROTOCOL_VERSION);
            assert_eq!(server, Some(1));
        }
        Err(other) => panic!("expected ProtocolMismatch, got {other:?}"),
        Ok(_) => panic!("expected ProtocolMismatch, got a connected client"),
    }
    fake.join().expect("fake daemon");
}
