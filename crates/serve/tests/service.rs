//! End-to-end tests for the `dagsfc-serve` daemon: trace-replay
//! equivalence against the in-process lifecycle simulation, admission
//! control, backpressure, lease bookkeeping, stats, and graceful
//! shutdown — all over real sockets.

use dagsfc_net::{FaultEvent, LeaseId, NodeId};
use dagsfc_serve::{replay, serve, Client, ClientError, EmbedReply, ServeConfig, WireRequest};
use dagsfc_sim::runner::{instance_network, instance_request};
use dagsfc_sim::{export_trace, run_lifecycle_detailed, Algo, LifecycleConfig, SimConfig};

/// A small network the lifecycle saturates, so traces mix accepts and
/// rejects (same shape as `sim::lifecycle`'s own tests).
fn base() -> SimConfig {
    SimConfig {
        network_size: 30,
        sfc_size: 4,
        vnf_capacity: 6.0,
        link_capacity: 6.0,
        seed: 0xBEEF,
        ..SimConfig::default()
    }
}

fn spawn(cfg: ServeConfig, sim: &SimConfig) -> serve::ServerHandle {
    serve::spawn(instance_network(sim), cfg, "127.0.0.1:0").expect("bind")
}

/// The headline acceptance criterion: replaying a frozen trace through
/// the daemon matches the in-process simulation bit for bit — per-flow
/// fates, exact f64 costs, departure order — for any worker-pool size.
#[test]
fn replay_matches_lifecycle_for_any_worker_count() {
    let cfg = LifecycleConfig {
        base: SimConfig {
            vnf_capacity: 3.0,
            link_capacity: 3.0,
            ..base()
        },
        arrivals: 40,
        mean_holding: 8.0,
        algo: Algo::Mbbe,
    };
    let truth = run_lifecycle_detailed(&cfg);
    assert!(truth.metrics.accepted > 0, "trace must accept something");
    assert!(truth.metrics.rejected > 0, "trace must reject something");
    let trace = export_trace(&cfg);

    for workers in [1usize, 4] {
        let handle = spawn(
            ServeConfig {
                workers,
                ..ServeConfig::default()
            },
            &cfg.base,
        );
        let mut client = Client::connect(handle.addr()).expect("connect");
        let report = replay(&mut client, &trace).expect("replay");
        drop(client);
        let stats = handle.join();

        assert_eq!(
            report.per_arrival, truth.per_arrival,
            "per-arrival fates diverged at workers={workers}"
        );
        assert_eq!(
            report.departure_order, truth.departure_order,
            "departure order diverged at workers={workers}"
        );
        assert_eq!(report.total_cost(), truth.total_cost());
        assert_eq!(stats.accepted, truth.metrics.accepted as u64);
        assert_eq!(stats.rejected, truth.metrics.rejected as u64);
        // The replayer releases every lease it committed.
        assert_eq!(stats.released, truth.metrics.accepted as u64);
        assert_eq!(stats.active_leases, 0);
        assert!(stats.outstanding_load.abs() < 1e-9);
    }
}

#[test]
fn zero_capacity_queue_rejects_with_backpressure() {
    let sim = base();
    let handle = spawn(
        ServeConfig {
            queue_capacity: 0,
            ..ServeConfig::default()
        },
        &sim,
    );
    let mut client = Client::connect(handle.addr()).expect("connect");
    let net = instance_network(&sim);
    let (sfc, flow) = instance_request(&sim, &net, 0);
    match client.embed(&sfc, &flow, None, 1).expect("reply") {
        EmbedReply::Rejected(reason) => assert_eq!(reason, "queue full"),
        other => panic!("expected queue-full rejection, got {other:?}"),
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.accepted, 0);
    assert_eq!(stats.queue_capacity, 0);
    drop(client);
    handle.join();
}

#[test]
fn infeasible_requests_are_turned_away_at_admission() {
    let sim = base();
    let handle = spawn(ServeConfig::default(), &sim);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let net = instance_network(&sim);
    let (sfc, mut flow) = instance_request(&sim, &net, 0);
    flow.dst = NodeId(10_000); // far outside the 30-node network
    match client.embed(&sfc, &flow, None, 1).expect("reply") {
        EmbedReply::Rejected(reason) => {
            assert!(reason.contains("infeasible"), "reason was '{reason}'")
        }
        other => panic!("expected admission rejection, got {other:?}"),
    }
    let stats = client.stats().expect("stats");
    assert_eq!((stats.accepted, stats.rejected), (0, 1));
    drop(client);
    handle.join();
}

#[test]
fn unknown_and_double_release_are_protocol_errors() {
    let sim = base();
    let handle = spawn(ServeConfig::default(), &sim);
    let mut client = Client::connect(handle.addr()).expect("connect");

    match client.release(LeaseId(424242)) {
        Err(ClientError::Server(reason)) => {
            assert!(reason.contains("424242"), "reason was '{reason}'")
        }
        other => panic!("expected server error, got {other:?}"),
    }

    let net = instance_network(&sim);
    let (sfc, flow) = instance_request(&sim, &net, 0);
    let lease = match client.embed(&sfc, &flow, None, 1).expect("reply") {
        EmbedReply::Accepted { lease, .. } => lease,
        other => panic!("expected acceptance on an empty network, got {other:?}"),
    };
    client.release(lease).expect("first release");
    assert!(
        matches!(client.release(lease), Err(ClientError::Server(_))),
        "double release must fail"
    );
    drop(client);
    handle.join();
}

#[test]
fn stats_report_covers_oracle_queue_and_latency() {
    let sim = base();
    let handle = spawn(ServeConfig::default(), &sim);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let net = instance_network(&sim);
    let mut accepted = 0usize;
    for run in 0..6 {
        let (sfc, flow) = instance_request(&sim, &net, run);
        let algo = if run % 2 == 0 { Algo::Mbbe } else { Algo::Minv };
        if matches!(
            client
                .embed(&sfc, &flow, Some(algo), run as u64)
                .expect("reply"),
            EmbedReply::Accepted { .. }
        ) {
            accepted += 1;
        }
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.accepted, accepted as u64);
    assert_eq!(stats.accepted + stats.rejected, 6);
    assert!((stats.acceptance_ratio - accepted as f64 / 6.0).abs() < 1e-9);
    assert_eq!(stats.active_leases, accepted as u64);
    assert!(stats.epoch >= accepted as u64);
    assert!(stats.total_cost > 0.0);
    assert!(stats.outstanding_load > 0.0);
    // Admission probed the oracle once per embed: first a miss, then
    // hits for the repeated (src-class, rate) keys.
    assert!(stats.oracle.hits + stats.oracle.misses >= 6);
    assert!(stats.oracle.misses >= 1);
    // Both algorithms show up with per-algo latency accumulators.
    let names: Vec<&str> = stats.per_algo.iter().map(|a| a.algo.as_str()).collect();
    assert!(names.contains(&"MBBE"), "per_algo was {names:?}");
    assert!(names.contains(&"MINV"), "per_algo was {names:?}");
    for lat in &stats.per_algo {
        assert!(lat.solves >= 1);
        assert!(lat.mean_micros >= 0.0);
    }
    assert_eq!(
        stats.queue_capacity,
        ServeConfig::default().queue_capacity as u64
    );
    drop(client);
    handle.join();
}

#[test]
fn graceful_shutdown_preserves_committed_leases() {
    let sim = base();
    let handle = spawn(ServeConfig::default(), &sim);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let net = instance_network(&sim);
    let (sfc, flow) = instance_request(&sim, &net, 0);
    let lease = match client.embed(&sfc, &flow, None, 7).expect("reply") {
        EmbedReply::Accepted { lease, .. } => lease,
        other => panic!("expected acceptance, got {other:?}"),
    };
    client.shutdown().expect("shutdown handshake");
    let stats = handle.join();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.active_leases, 1, "drain must not drop lease {lease}");
    assert_eq!(stats.released, 0);
    assert!(stats.outstanding_load > 0.0);
}

#[test]
fn unknown_preset_is_a_protocol_error_not_a_crash() {
    let sim = base();
    let handle = spawn(ServeConfig::default(), &sim);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let flow = dagsfc_core::Flow::unit(NodeId(0), NodeId(5));
    match client.embed_preset("no-such-chain", &flow, None, None, 1) {
        Err(ClientError::Server(reason)) => {
            assert!(reason.contains("no-such-chain"), "reason was '{reason}'")
        }
        other => panic!("expected server error, got {other:?}"),
    }
    // The connection survives the error; the daemon still answers.
    client.ping().expect("ping after error");
    drop(client);
    handle.join();
}

#[test]
fn faults_over_the_wire_block_and_recover() {
    let sim = base();
    let handle = spawn(ServeConfig::default(), &sim);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let net = instance_network(&sim);
    let (sfc, flow) = instance_request(&sim, &net, 0);

    // Take the flow's source node down: the request must be rejected
    // (at admission — the shared oracle carries the down overlay — or
    // at solve time), never accepted onto a dead node.
    assert!(client
        .fault(&FaultEvent::NodeDown { node: flow.src })
        .expect("fault reply"));
    // Idempotent re-send reports no change.
    assert!(!client
        .fault(&FaultEvent::NodeDown { node: flow.src })
        .expect("fault reply"));
    match client.embed(&sfc, &flow, None, 1).expect("reply") {
        EmbedReply::Rejected(_) => {}
        other => panic!("embed onto a down source must fail, got {other:?}"),
    }

    // Recovery: the same request embeds again.
    assert!(client
        .fault(&FaultEvent::NodeUp { node: flow.src })
        .expect("fault reply"));
    match client.embed(&sfc, &flow, None, 1).expect("reply") {
        EmbedReply::Accepted { .. } => {}
        other => panic!("recovered substrate must admit, got {other:?}"),
    }

    // An out-of-range fault target is a protocol error, not a crash.
    assert!(client
        .fault(&FaultEvent::NodeDown {
            node: NodeId(10_000)
        })
        .is_err());
    client.ping().expect("daemon survives bad fault");

    let stats = client.stats().expect("stats");
    // Only state-changing events count: down + up, not the no-op re-send.
    assert_eq!(stats.faults_applied, 2);
    assert_eq!(stats.audits_failed, 0);
    drop(client);
    handle.join();
}

#[test]
fn reclaim_command_releases_a_vanished_clients_leases() {
    let sim = base();
    let handle = spawn(ServeConfig::default(), &sim);
    let net = instance_network(&sim);

    // Client A commits a lease, then vanishes without releasing it.
    let mut a = Client::connect(handle.addr()).expect("connect");
    let owner_a = a.owner().expect("owner");
    let (sfc, flow) = instance_request(&sim, &net, 0);
    let lease = match a.embed(&sfc, &flow, None, 1).expect("reply") {
        EmbedReply::Accepted { lease, .. } => lease,
        other => panic!("expected acceptance, got {other:?}"),
    };
    drop(a);

    // Client B commits its own lease, then reclaims A's orphans.
    let mut b = Client::connect(handle.addr()).expect("connect");
    assert_ne!(b.owner().expect("owner"), owner_a, "owners are distinct");
    let (sfc, flow) = instance_request(&sim, &net, 1);
    let own = match b.embed(&sfc, &flow, None, 2).expect("reply") {
        EmbedReply::Accepted { lease, .. } => lease,
        other => panic!("expected acceptance, got {other:?}"),
    };
    assert_eq!(b.reclaim(Some(owner_a)).expect("reclaim"), 1);
    // A's lease is gone; B's survives. A second reclaim finds nothing.
    assert!(matches!(b.release(lease), Err(ClientError::Server(_))));
    assert_eq!(b.reclaim(Some(owner_a)).expect("reclaim"), 0);
    b.release(own).expect("own lease still live");

    let stats = b.stats().expect("stats");
    assert_eq!(stats.orphans_reclaimed, 1);
    assert_eq!(stats.active_leases, 0);
    assert!(stats.outstanding_load.abs() < 1e-9);
    drop(b);
    handle.join();
}

#[test]
fn reclaim_on_disconnect_sweeps_orphans_automatically() {
    let sim = base();
    let handle = spawn(
        ServeConfig {
            reclaim_on_disconnect: true,
            ..ServeConfig::default()
        },
        &sim,
    );
    let net = instance_network(&sim);
    let mut a = Client::connect(handle.addr()).expect("connect");
    let (sfc, flow) = instance_request(&sim, &net, 0);
    match a.embed(&sfc, &flow, None, 1).expect("reply") {
        EmbedReply::Accepted { .. } => {}
        other => panic!("expected acceptance, got {other:?}"),
    }
    drop(a); // vanish without releasing

    let mut b = Client::connect(handle.addr()).expect("connect");
    // The disconnect sweep rides the same job queue; wait for it.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let stats = b.stats().expect("stats");
        if stats.orphans_reclaimed == 1 {
            assert_eq!(stats.active_leases, 0);
            assert!(stats.outstanding_load.abs() < 1e-9);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "disconnect sweep never reclaimed the orphan"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    drop(b);
    handle.join();
}

#[test]
fn slow_and_abandoning_clients_do_not_wedge_the_daemon() {
    let sim = base();
    let handle = spawn(ServeConfig::default(), &sim);
    let net = instance_network(&sim);
    let (sfc, flow) = instance_request(&sim, &net, 0);

    // A slow client dribbling 7-byte chunks still gets a full reply.
    let mut slow = Client::connect(handle.addr()).expect("connect");
    let req = WireRequest {
        cmd: "embed".into(),
        sfc: Some(sfc.clone()),
        flow: Some(flow),
        seed: Some(1),
        ..WireRequest::default()
    };
    let resp = slow.request_chunked(&req, 7).expect("chunked reply");
    assert_eq!(resp.status, "accepted");

    // A client that dies mid-request must not take the daemon with it.
    let dead = Client::connect(handle.addr()).expect("connect");
    dead.abandon_mid_request(&req, 20).expect("partial write");

    // The daemon still serves new connections afterwards.
    let mut fresh = Client::connect(handle.addr()).expect("connect");
    fresh.ping().expect("daemon alive after abandoned request");
    let stats = fresh.stats().expect("stats");
    assert_eq!(stats.accepted, 1, "only the slow client's embed landed");
    drop((slow, fresh));
    handle.join();
}

#[test]
fn preset_embeds_end_to_end() {
    // The enterprise catalog defines 13 NF kinds; serve presets resolve
    // against it, so the network must deploy at least that many.
    let sim = SimConfig {
        vnf_kinds: dagsfc_nfp::enterprise_catalog().len(),
        vnf_deploy_ratio: 1.0,
        ..base()
    };
    let handle = spawn(ServeConfig::default(), &sim);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let flow = dagsfc_core::Flow::unit(NodeId(0), NodeId(5));
    match client
        .embed_preset("web-ingress", &flow, Some(3), Some(Algo::Mbbe), 11)
        .expect("reply")
    {
        EmbedReply::Accepted { cost, .. } => assert!(cost.total() > 0.0),
        EmbedReply::Rejected(reason) => {
            panic!("preset embed rejected on an empty full-deploy network: {reason}")
        }
    }
    drop(client);
    handle.join();
}
