//! # dagsfc-serve — the embedding service daemon
//!
//! A long-lived, multi-threaded serving layer over the DAG-SFC solver
//! stack: clients submit embedding requests over a JSON-lines TCP
//! protocol, the daemon admits them against a bounded queue and a
//! shared path-oracle feasibility screen, solves them through the exact
//! kernel the `sim::lifecycle` research harness runs, commits accepted
//! requests to a lease ledger, and releases the resources when the
//! client says the flow departed.
//!
//! The headline guarantee is **replay equivalence**: feeding a
//! `sim`-frozen [`ReplayTrace`](dagsfc_sim::ReplayTrace) through the
//! socket yields the same accepted set, acceptance ratio, and total
//! cost as the in-process simulation under the same seed — bit for bit,
//! for any worker-pool size. See `docs/SERVICE.md` for the protocol
//! spec and the design notes behind that guarantee.
//!
//! ```no_run
//! use dagsfc_serve::{serve, Client, ServeConfig};
//! use dagsfc_sim::runner::{instance_network, instance_request};
//! use dagsfc_sim::SimConfig;
//!
//! let cfg = SimConfig { network_size: 30, ..SimConfig::default() };
//! let net = instance_network(&cfg);
//! let handle = serve::spawn(net.clone(), ServeConfig::default(), "127.0.0.1:0").unwrap();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let (sfc, flow) = instance_request(&cfg, &net, 0);
//! let reply = client.embed(&sfc, &flow, None, 7).unwrap();
//! println!("{reply:?}");
//! handle.join();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod cli;
pub mod client;
pub mod engine;
pub mod protocol;
pub mod replay;
pub mod server;

pub use batch::{run_batched, spawn_batched, BatchConfig};
pub use client::{Client, ClientError, EmbedReply};
pub use engine::{Engine, MAX_COMMIT_RETRIES};
pub use protocol::{
    algo_wire_name, fault_event_from_wire, fault_event_to_wire, parse_algo, AlgoLatency,
    OracleCounters, ShardLane, StatsReport, WireRequest, WireResponse, PROTOCOL_VERSION,
};
pub use replay::{replay, ReplayReport};
pub use server::{run, spawn, ServeConfig, ServerHandle};

/// Re-export of the server module under its service name, so call
/// sites read `serve::spawn(...)`.
pub use server as serve;
