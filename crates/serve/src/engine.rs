//! The serving engine: one mutable residual state behind a
//! commit/release ledger, plus the counters the `stats` endpoint
//! reports.
//!
//! The engine is deliberately single-threaded — the server wraps it in
//! a mutex and serializes solve+commit in ticket order, which is what
//! makes a replayed trace bit-for-bit equal to the in-process
//! simulation regardless of worker-pool size (see `docs/SERVICE.md`).
//! Every embed routes through [`dagsfc_sim::embed_and_commit`], the
//! exact kernel `sim::lifecycle` runs: the serving path and the
//! research path cannot drift apart.

use crate::protocol::{AlgoLatency, StatsReport};
use dagsfc_audit::ConstraintAuditor;
use dagsfc_core::{DagSfc, Flow};
use dagsfc_net::{CommitLedger, LeaseId, NetResult, Network};
use dagsfc_sim::{embed_and_commit, Algo, EmbedRejection};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An accepted embed, as the engine reports it to the wire layer.
#[derive(Debug, Clone, Copy)]
pub struct Accepted {
    /// Handle the client releases on departure.
    pub lease: LeaseId,
    /// Objective cost of the embedding.
    pub cost: dagsfc_core::CostBreakdown,
}

#[derive(Debug, Default, Clone, Copy)]
struct LatencyAcc {
    solves: u64,
    total: Duration,
}

/// Ledger, residual-network cache, and counters for one daemon.
pub struct Engine<'n> {
    ledger: CommitLedger<'n>,
    /// The residual network the solvers see, rebuilt only when the
    /// ledger's epoch moves (each commit/release bumps it). `Arc` so
    /// the borrow is decoupled from `&mut self.ledger` during a solve.
    residual: Arc<Network>,
    residual_epoch: u64,
    accepted: u64,
    rejected: u64,
    total_cost: f64,
    solver_cache_hits: u64,
    solver_cache_misses: u64,
    per_algo: BTreeMap<&'static str, LatencyAcc>,
    auditor: ConstraintAuditor,
    audits_run: u64,
    audits_failed: u64,
}

impl<'n> Engine<'n> {
    /// A fresh engine over `net` with all capacities available.
    pub fn new(net: &'n Network) -> Self {
        let ledger = CommitLedger::new(net);
        let residual = Arc::new(ledger.residual());
        Engine {
            ledger,
            residual,
            residual_epoch: 0,
            accepted: 0,
            rejected: 0,
            total_cost: 0.0,
            solver_cache_hits: 0,
            solver_cache_misses: 0,
            per_algo: BTreeMap::new(),
            auditor: ConstraintAuditor::new(),
            audits_run: 0,
            audits_failed: 0,
        }
    }

    /// The base (full-capacity) network.
    pub fn network(&self) -> &'n Network {
        self.ledger.network()
    }

    /// The residual network at the current epoch (shared snapshot).
    pub fn residual(&mut self) -> Arc<Network> {
        if self.ledger.epoch() != self.residual_epoch {
            self.residual = Arc::new(self.ledger.residual());
            self.residual_epoch = self.ledger.epoch();
        }
        Arc::clone(&self.residual)
    }

    /// Solves and commits one request: the whole admission-to-lease
    /// path, counted either way.
    pub fn embed(
        &mut self,
        sfc: &DagSfc,
        flow: &Flow,
        algo: Algo,
        seed: u64,
    ) -> Result<Accepted, EmbedRejection> {
        let residual = self.residual();
        let started = Instant::now();
        let result = embed_and_commit(&mut self.ledger, &residual, sfc, flow, algo, seed);
        let elapsed = started.elapsed();
        let acc = self.per_algo.entry(algo.name()).or_default();
        acc.solves += 1;
        acc.total += elapsed;
        match result {
            Ok(s) => {
                // Audit-on-commit: re-derive every paper constraint from
                // the residual the solver saw. A violating embedding is
                // rolled back — the daemon never serves resources an
                // independent check refuses to certify.
                self.audits_run += 1;
                let report = self.auditor.audit_outcome(&residual, sfc, flow, &s.outcome);
                if !report.is_clean() {
                    self.audits_failed += 1;
                    // lint:allow(expect) — invariant: fresh lease is active
                    self.ledger.release(s.lease).expect("fresh lease is active");
                    self.rejected += 1;
                    return Err(EmbedRejection::Audit(report.summary()));
                }
                self.accepted += 1;
                self.total_cost += s.cost.total();
                self.solver_cache_hits += s.stats.cache_hits;
                self.solver_cache_misses += s.stats.cache_misses;
                Ok(Accepted {
                    lease: s.lease,
                    cost: s.cost,
                })
            }
            Err(e) => {
                self.rejected += 1;
                Err(e)
            }
        }
    }

    /// Counts a request turned away before it reached a solver
    /// (queue-full backpressure, admission precheck).
    pub fn count_admission_rejection(&mut self) {
        self.rejected += 1;
    }

    /// Releases a lease's resources back to the pool.
    pub fn release(&mut self, lease: LeaseId) -> NetResult<()> {
        self.ledger.release(lease)
    }

    /// Whether `lease` is currently outstanding.
    pub fn is_active(&self, lease: LeaseId) -> bool {
        self.ledger.is_active(lease)
    }

    /// Leases currently outstanding.
    pub fn active_leases(&self) -> usize {
        self.ledger.active_leases()
    }

    /// Assembles the stats report; the caller supplies the queue view
    /// and the shared admission-oracle counters it owns.
    pub fn stats(
        &self,
        queue_depth: usize,
        queue_capacity: usize,
        oracle: crate::protocol::OracleCounters,
    ) -> StatsReport {
        let offered = self.accepted + self.rejected;
        StatsReport {
            accepted: self.accepted,
            rejected: self.rejected,
            acceptance_ratio: if offered == 0 {
                0.0
            } else {
                self.accepted as f64 / offered as f64
            },
            total_cost: self.total_cost,
            active_leases: self.ledger.active_leases() as u64,
            released: self.ledger.released_total(),
            queue_depth: queue_depth as u64,
            queue_capacity: queue_capacity as u64,
            epoch: self.ledger.epoch(),
            outstanding_load: self.ledger.outstanding_load(),
            oracle,
            solver_cache_hits: self.solver_cache_hits,
            solver_cache_misses: self.solver_cache_misses,
            audits_run: self.audits_run,
            audits_failed: self.audits_failed,
            per_algo: self
                .per_algo
                .iter()
                .map(|(name, acc)| AlgoLatency {
                    algo: name.to_string(),
                    solves: acc.solves,
                    total_micros: acc.total.as_micros() as u64,
                    mean_micros: if acc.solves == 0 {
                        0.0
                    } else {
                        acc.total.as_micros() as f64 / acc.solves as f64
                    },
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::OracleCounters;
    use dagsfc_sim::runner::{instance_network, instance_request};
    use dagsfc_sim::{arrival_seed, SimConfig};

    fn cfg() -> SimConfig {
        SimConfig {
            network_size: 24,
            sfc_size: 3,
            vnf_capacity: 8.0,
            link_capacity: 8.0,
            seed: 0xE46,
            ..SimConfig::default()
        }
    }

    #[test]
    fn embed_release_cycle_updates_counters() {
        let c = cfg();
        let net = instance_network(&c);
        let mut engine = Engine::new(&net);
        let (sfc, flow) = instance_request(&c, &net, 0);
        let a = engine
            .embed(&sfc, &flow, Algo::Minv, arrival_seed(c.seed, 0))
            .expect("fresh network admits");
        assert!(engine.is_active(a.lease));
        assert_eq!(engine.active_leases(), 1);

        let stats = engine.stats(0, 16, OracleCounters::default());
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.acceptance_ratio, 1.0);
        assert_eq!(stats.audits_run, 1, "every commit is audited");
        assert_eq!(stats.audits_failed, 0);
        assert!(stats.total_cost > 0.0);
        assert!(stats.outstanding_load > 0.0);
        assert_eq!(stats.per_algo.len(), 1);
        assert_eq!(stats.per_algo[0].algo, "MINV");
        assert_eq!(stats.per_algo[0].solves, 1);

        engine.release(a.lease).unwrap();
        let stats = engine.stats(0, 16, OracleCounters::default());
        assert_eq!(stats.active_leases, 0);
        assert_eq!(stats.released, 1);
        assert!(stats.outstanding_load.abs() < 1e-12);
    }

    #[test]
    fn residual_cache_tracks_epoch() {
        let c = cfg();
        let net = instance_network(&c);
        let mut engine = Engine::new(&net);
        let before = engine.residual();
        // No state change: the same snapshot is reused.
        assert!(Arc::ptr_eq(&before, &engine.residual()));
        let (sfc, flow) = instance_request(&c, &net, 0);
        engine
            .embed(&sfc, &flow, Algo::Minv, arrival_seed(c.seed, 0))
            .unwrap();
        // The commit bumped the epoch: a new snapshot must be built.
        assert!(!Arc::ptr_eq(&before, &engine.residual()));
    }

    #[test]
    fn every_commit_is_audited_and_clean_under_load() {
        // Drive the engine to saturation: every accepted commit must
        // have been audited, and none may fail.
        let c = cfg();
        let net = instance_network(&c);
        let mut engine = Engine::new(&net);
        for arrival in 0..30 {
            let (sfc, flow) = instance_request(&c, &net, arrival);
            let _ = engine.embed(&sfc, &flow, Algo::Mbbe, arrival_seed(c.seed, arrival));
        }
        let stats = engine.stats(0, 16, OracleCounters::default());
        assert!(stats.accepted > 0);
        assert_eq!(stats.audits_run, stats.accepted);
        assert_eq!(stats.audits_failed, 0);
    }

    #[test]
    fn engine_matches_lifecycle_kernel_decisions() {
        // Saturate a tiny network: the engine must reject exactly when
        // the kernel rejects, because it IS the kernel.
        let c = SimConfig {
            network_size: 12,
            sfc_size: 3,
            vnf_capacity: 2.0,
            link_capacity: 2.0,
            seed: 0xE47,
            ..SimConfig::default()
        };
        let net = instance_network(&c);
        let mut engine = Engine::new(&net);
        let mut ledger = CommitLedger::new(&net);
        for arrival in 0..20 {
            let (sfc, flow) = instance_request(&c, &net, arrival);
            let seed = arrival_seed(c.seed, arrival);
            let direct = {
                let residual = ledger.residual();
                embed_and_commit(&mut ledger, &residual, &sfc, &flow, Algo::Minv, seed)
            };
            let served = engine.embed(&sfc, &flow, Algo::Minv, seed);
            assert_eq!(direct.is_ok(), served.is_ok(), "arrival {arrival}");
            if let (Ok(d), Ok(s)) = (direct, served) {
                assert_eq!(d.cost.total(), s.cost.total(), "arrival {arrival}");
            }
        }
    }
}
