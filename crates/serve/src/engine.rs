//! The serving engine: one mutable residual state behind a
//! commit/release ledger, plus the counters the `stats` endpoint
//! reports.
//!
//! The engine is deliberately single-threaded — the server wraps it in
//! a mutex and serializes solve+commit in ticket order, which is what
//! makes a replayed trace bit-for-bit equal to the in-process
//! simulation regardless of worker-pool size (see `docs/SERVICE.md`).
//! Every embed routes through [`dagsfc_sim::embed_and_commit`], the
//! exact kernel `sim::lifecycle` runs: the serving path and the
//! research path cannot drift apart.

use crate::protocol::{AlgoLatency, StatsReport};
use dagsfc_audit::ConstraintAuditor;
use dagsfc_core::{DagSfc, Flow};
use dagsfc_net::{CommitLedger, FaultEvent, LeaseId, NetResult, Network};
use dagsfc_sim::{embed_and_commit, Algo, EmbedRejection};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bounded retry budget for transient commit failures: the residual is
/// force-refreshed and the request re-solved at most this many extra
/// times before the rejection is surfaced.
pub const MAX_COMMIT_RETRIES: u32 = 2;

/// An accepted embed, as the engine reports it to the wire layer.
#[derive(Debug, Clone, Copy)]
pub struct Accepted {
    /// Handle the client releases on departure.
    pub lease: LeaseId,
    /// Objective cost of the embedding.
    pub cost: dagsfc_core::CostBreakdown,
}

#[derive(Debug, Default, Clone, Copy)]
struct LatencyAcc {
    solves: u64,
    total: Duration,
}

/// Ledger, residual-network cache, and counters for one daemon.
pub struct Engine<'n> {
    ledger: CommitLedger<'n>,
    /// The residual network the solvers see, rebuilt only when the
    /// ledger's epoch moves (each commit/release bumps it). `Arc` so
    /// the borrow is decoupled from `&mut self.ledger` during a solve.
    residual: Arc<Network>,
    residual_epoch: u64,
    accepted: u64,
    rejected: u64,
    rejected_deadline: u64,
    rejected_rule: u64,
    rejected_capacity: u64,
    total_cost: f64,
    solver_cache_hits: u64,
    solver_cache_misses: u64,
    per_algo: BTreeMap<&'static str, LatencyAcc>,
    auditor: ConstraintAuditor,
    audits_run: u64,
    audits_failed: u64,
    /// Per-request solve time budget. `None` (the default) disables the
    /// check; enabling it makes accept/reject decisions depend on wall
    /// time and therefore non-reproducible — deterministic replay and
    /// chaos scenarios leave it off.
    solve_timeout: Option<Duration>,
    solve_timeouts: u64,
    commit_retries: u64,
}

impl<'n> Engine<'n> {
    /// A fresh engine over `net` with all capacities available.
    pub fn new(net: &'n Network) -> Self {
        let ledger = CommitLedger::new(net);
        let residual = Arc::new(ledger.residual());
        Engine {
            ledger,
            residual,
            residual_epoch: 0,
            accepted: 0,
            rejected: 0,
            rejected_deadline: 0,
            rejected_rule: 0,
            rejected_capacity: 0,
            total_cost: 0.0,
            solver_cache_hits: 0,
            solver_cache_misses: 0,
            per_algo: BTreeMap::new(),
            auditor: ConstraintAuditor::new(),
            audits_run: 0,
            audits_failed: 0,
            solve_timeout: None,
            solve_timeouts: 0,
            commit_retries: 0,
        }
    }

    /// Sets the per-request solve time budget (`None` disables). Solves
    /// that exceed it are rolled back and rejected with
    /// [`EmbedRejection::Timeout`]. Wall-clock dependent: never enable
    /// it in deterministic replay or chaos verification runs.
    pub fn set_solve_timeout(&mut self, timeout: Option<Duration>) {
        self.solve_timeout = timeout;
    }

    /// The base (full-capacity) network.
    pub fn network(&self) -> &'n Network {
        self.ledger.network()
    }

    /// The residual network at the current epoch (shared snapshot).
    pub fn residual(&mut self) -> Arc<Network> {
        if self.ledger.epoch() != self.residual_epoch {
            self.residual = Arc::new(self.ledger.residual());
            self.residual_epoch = self.ledger.epoch();
        }
        Arc::clone(&self.residual)
    }

    /// Solves and commits one request: the whole admission-to-lease
    /// path, counted either way.
    ///
    /// Transient [`EmbedRejection::Commit`] failures (the residual
    /// snapshot raced a fault or release) are retried up to
    /// [`MAX_COMMIT_RETRIES`] times with a force-refreshed residual —
    /// deterministic, because the engine is serialized behind its mutex
    /// and the retry re-solves with the same seed over the actual
    /// current state.
    pub fn embed(
        &mut self,
        sfc: &DagSfc,
        flow: &Flow,
        algo: Algo,
        seed: u64,
    ) -> Result<Accepted, EmbedRejection> {
        let mut attempt = 0u32;
        loop {
            let residual = self.residual();
            let started = Instant::now();
            let result = embed_and_commit(&mut self.ledger, &residual, sfc, flow, algo, seed);
            let elapsed = started.elapsed();
            let acc = self.per_algo.entry(algo.name()).or_default();
            acc.solves += 1;
            acc.total += elapsed;
            match result {
                Ok(s) => {
                    // Graceful degradation: a solve that blew its time
                    // budget is rolled back rather than served late.
                    if let Some(limit) = self.solve_timeout {
                        if elapsed > limit {
                            self.solve_timeouts += 1;
                            // lint:allow(expect) — invariant: fresh lease is active
                            self.ledger.release(s.lease).expect("fresh lease is active");
                            self.rejected += 1;
                            return Err(EmbedRejection::Timeout {
                                elapsed_millis: elapsed.as_millis() as u64,
                            });
                        }
                    }
                    // Audit-on-commit: re-derive every paper constraint from
                    // the residual the solver saw. A violating embedding is
                    // rolled back — the daemon never serves resources an
                    // independent check refuses to certify.
                    self.audits_run += 1;
                    let report = self.auditor.audit_outcome(&residual, sfc, flow, &s.outcome);
                    if !report.is_clean() {
                        self.audits_failed += 1;
                        // lint:allow(expect) — invariant: fresh lease is active
                        self.ledger.release(s.lease).expect("fresh lease is active");
                        self.rejected += 1;
                        return Err(EmbedRejection::Audit(report.summary()));
                    }
                    self.accepted += 1;
                    self.total_cost += s.cost.total();
                    self.solver_cache_hits += s.stats.cache_hits;
                    self.solver_cache_misses += s.stats.cache_misses;
                    return Ok(Accepted {
                        lease: s.lease,
                        cost: s.cost,
                    });
                }
                Err(EmbedRejection::Commit(_)) if attempt < MAX_COMMIT_RETRIES => {
                    attempt += 1;
                    self.commit_retries += 1;
                    // Force the next residual() to rebuild even if the
                    // epoch looks current.
                    self.residual_epoch = u64::MAX;
                }
                Err(e) => {
                    self.rejected += 1;
                    // Split solver rejections so operators can tell an
                    // over-tight SLA or an unsatisfiable placement rule
                    // from a saturated substrate.
                    if e.is_deadline_infeasible() {
                        self.rejected_deadline += 1;
                    } else if e.is_rule_infeasible() {
                        self.rejected_rule += 1;
                    } else if matches!(e, EmbedRejection::Solve(_)) {
                        self.rejected_capacity += 1;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Applies one substrate fault to the ledger (epoch-bumping, so the
    /// next solve sees the faulted residual) and reports whether the
    /// state changed. The caller is responsible for mirroring
    /// reachability events into its admission `PathOracle` — see
    /// [`dagsfc_net::PathOracle::apply_fault`].
    pub fn apply_fault(&mut self, event: &FaultEvent) -> NetResult<bool> {
        self.ledger.apply_fault(event)
    }

    /// Sets the owner tag for subsequent commits (wrapped around each
    /// request by the server; `None` clears).
    pub fn set_request_owner(&mut self, owner: Option<u64>) {
        self.ledger.set_default_owner(owner);
    }

    /// Releases every lease committed under `owner` (orphan reclaim
    /// after a client vanished). Returns the reclaimed lease ids.
    pub fn reclaim_owner(&mut self, owner: u64) -> Vec<LeaseId> {
        self.ledger.reclaim_owner(owner)
    }

    /// Counts a request turned away before it reached a solver
    /// (queue-full backpressure, admission precheck).
    pub fn count_admission_rejection(&mut self) {
        self.rejected += 1;
    }

    /// Releases a lease's resources back to the pool.
    pub fn release(&mut self, lease: LeaseId) -> NetResult<()> {
        self.ledger.release(lease)
    }

    /// Whether `lease` is currently outstanding.
    pub fn is_active(&self, lease: LeaseId) -> bool {
        self.ledger.is_active(lease)
    }

    /// Leases currently outstanding.
    pub fn active_leases(&self) -> usize {
        self.ledger.active_leases()
    }

    /// Assembles the stats report; the caller supplies the queue view
    /// and the shared admission-oracle counters it owns.
    pub fn stats(
        &self,
        queue_depth: usize,
        queue_capacity: usize,
        oracle: crate::protocol::OracleCounters,
    ) -> StatsReport {
        let offered = self.accepted + self.rejected;
        StatsReport {
            accepted: self.accepted,
            rejected: self.rejected,
            rejected_deadline: self.rejected_deadline,
            rejected_rule: self.rejected_rule,
            rejected_capacity: self.rejected_capacity,
            acceptance_ratio: if offered == 0 {
                0.0
            } else {
                self.accepted as f64 / offered as f64
            },
            total_cost: self.total_cost,
            active_leases: self.ledger.active_leases() as u64,
            released: self.ledger.released_total(),
            queue_depth: queue_depth as u64,
            queue_capacity: queue_capacity as u64,
            epoch: self.ledger.epoch(),
            outstanding_load: self.ledger.outstanding_load(),
            oracle,
            solver_cache_hits: self.solver_cache_hits,
            solver_cache_misses: self.solver_cache_misses,
            audits_run: self.audits_run,
            audits_failed: self.audits_failed,
            faults_applied: self.ledger.faults_applied(),
            orphans_reclaimed: self.ledger.orphans_reclaimed(),
            solve_timeouts: self.solve_timeouts,
            commit_retries: self.commit_retries,
            shards: 1,
            cross_shard_offered: 0,
            cross_shard_accepted: 0,
            per_shard: Vec::new(),
            per_algo: self
                .per_algo
                .iter()
                .map(|(name, acc)| AlgoLatency {
                    algo: name.to_string(),
                    solves: acc.solves,
                    total_micros: acc.total.as_micros() as u64,
                    mean_micros: if acc.solves == 0 {
                        0.0
                    } else {
                        acc.total.as_micros() as f64 / acc.solves as f64
                    },
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::OracleCounters;
    use dagsfc_sim::runner::{instance_network, instance_request};
    use dagsfc_sim::{arrival_seed, SimConfig};

    fn cfg() -> SimConfig {
        SimConfig {
            network_size: 24,
            sfc_size: 3,
            vnf_capacity: 8.0,
            link_capacity: 8.0,
            seed: 0xE46,
            ..SimConfig::default()
        }
    }

    #[test]
    fn embed_release_cycle_updates_counters() {
        let c = cfg();
        let net = instance_network(&c);
        let mut engine = Engine::new(&net);
        let (sfc, flow) = instance_request(&c, &net, 0);
        let a = engine
            .embed(&sfc, &flow, Algo::Minv, arrival_seed(c.seed, 0))
            .expect("fresh network admits");
        assert!(engine.is_active(a.lease));
        assert_eq!(engine.active_leases(), 1);

        let stats = engine.stats(0, 16, OracleCounters::default());
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.acceptance_ratio, 1.0);
        assert_eq!(stats.audits_run, 1, "every commit is audited");
        assert_eq!(stats.audits_failed, 0);
        assert!(stats.total_cost > 0.0);
        assert!(stats.outstanding_load > 0.0);
        assert_eq!(stats.per_algo.len(), 1);
        assert_eq!(stats.per_algo[0].algo, "MINV");
        assert_eq!(stats.per_algo[0].solves, 1);

        engine.release(a.lease).unwrap();
        let stats = engine.stats(0, 16, OracleCounters::default());
        assert_eq!(stats.active_leases, 0);
        assert_eq!(stats.released, 1);
        assert!(stats.outstanding_load.abs() < 1e-12);
    }

    #[test]
    fn residual_cache_tracks_epoch() {
        let c = cfg();
        let net = instance_network(&c);
        let mut engine = Engine::new(&net);
        let before = engine.residual();
        // No state change: the same snapshot is reused.
        assert!(Arc::ptr_eq(&before, &engine.residual()));
        let (sfc, flow) = instance_request(&c, &net, 0);
        engine
            .embed(&sfc, &flow, Algo::Minv, arrival_seed(c.seed, 0))
            .unwrap();
        // The commit bumped the epoch: a new snapshot must be built.
        assert!(!Arc::ptr_eq(&before, &engine.residual()));
    }

    #[test]
    fn every_commit_is_audited_and_clean_under_load() {
        // Drive the engine to saturation: every accepted commit must
        // have been audited, and none may fail.
        let c = cfg();
        let net = instance_network(&c);
        let mut engine = Engine::new(&net);
        for arrival in 0..30 {
            let (sfc, flow) = instance_request(&c, &net, arrival);
            let _ = engine.embed(&sfc, &flow, Algo::Mbbe, arrival_seed(c.seed, arrival));
        }
        let stats = engine.stats(0, 16, OracleCounters::default());
        assert!(stats.accepted > 0);
        assert_eq!(stats.audits_run, stats.accepted);
        assert_eq!(stats.audits_failed, 0);
    }

    #[test]
    fn fault_flips_epoch_and_blocks_then_recovers() {
        let c = cfg();
        let net = instance_network(&c);
        let mut engine = Engine::new(&net);
        let (sfc, flow) = instance_request(&c, &net, 0);
        let seed = arrival_seed(c.seed, 0);

        // Take every node down: no embedding can possibly commit.
        for n in 0..net.node_count() {
            let changed = engine
                .apply_fault(&FaultEvent::NodeDown {
                    node: dagsfc_net::NodeId(n as u32),
                })
                .unwrap();
            assert!(changed);
        }
        let before = engine.residual();
        assert!(engine.embed(&sfc, &flow, Algo::Minv, seed).is_err());

        // Recovery: bring everything back, and the same request embeds.
        for n in 0..net.node_count() {
            engine
                .apply_fault(&FaultEvent::NodeUp {
                    node: dagsfc_net::NodeId(n as u32),
                })
                .unwrap();
        }
        // Faults bump the epoch, so the residual snapshot was rebuilt.
        assert!(!Arc::ptr_eq(&before, &engine.residual()));
        engine
            .embed(&sfc, &flow, Algo::Minv, seed)
            .expect("recovered substrate admits");
        let stats = engine.stats(0, 16, OracleCounters::default());
        assert_eq!(stats.faults_applied, 2 * net.node_count() as u64);
        assert_eq!(stats.audits_failed, 0);
    }

    #[test]
    fn reclaim_owner_releases_only_that_owners_leases() {
        let c = cfg();
        let net = instance_network(&c);
        let mut engine = Engine::new(&net);

        engine.set_request_owner(Some(7));
        let (sfc, flow) = instance_request(&c, &net, 0);
        let a = engine
            .embed(&sfc, &flow, Algo::Minv, arrival_seed(c.seed, 0))
            .unwrap();
        engine.set_request_owner(Some(8));
        let (sfc, flow) = instance_request(&c, &net, 1);
        let b = engine
            .embed(&sfc, &flow, Algo::Minv, arrival_seed(c.seed, 1))
            .unwrap();
        engine.set_request_owner(None);

        let reclaimed = engine.reclaim_owner(7);
        assert_eq!(reclaimed, vec![a.lease]);
        assert!(!engine.is_active(a.lease));
        assert!(engine.is_active(b.lease), "other owner untouched");
        let stats = engine.stats(0, 16, OracleCounters::default());
        assert_eq!(stats.orphans_reclaimed, 1);
        // A second reclaim of the same owner finds nothing.
        assert!(engine.reclaim_owner(7).is_empty());
    }

    #[test]
    fn solve_timeout_rolls_back_the_lease() {
        let c = cfg();
        let net = instance_network(&c);
        let mut engine = Engine::new(&net);
        // A zero budget trips on any solve; the lease must be rolled
        // back and the rejection counted.
        engine.set_solve_timeout(Some(Duration::from_secs(0)));
        let (sfc, flow) = instance_request(&c, &net, 0);
        let r = engine.embed(&sfc, &flow, Algo::Minv, arrival_seed(c.seed, 0));
        assert!(matches!(r, Err(EmbedRejection::Timeout { .. })));
        assert_eq!(engine.active_leases(), 0, "timed-out lease rolled back");
        let stats = engine.stats(0, 16, OracleCounters::default());
        assert_eq!(stats.solve_timeouts, 1);
        assert_eq!(stats.rejected, 1);
        assert!(stats.outstanding_load.abs() < 1e-12);

        // Disabled again, the same request goes through.
        engine.set_solve_timeout(None);
        engine
            .embed(&sfc, &flow, Algo::Minv, arrival_seed(c.seed, 0))
            .expect("no budget, no timeout");
    }

    #[test]
    fn rejection_stats_split_deadline_rule_and_capacity() {
        let c = cfg();
        let net = instance_network(&c);
        let mut engine = Engine::new(&net);
        let (sfc, flow) = instance_request(&c, &net, 0);

        // An unmeetable delay budget: generated links carry ~10 µs each,
        // so 0.001 µs end-to-end is provably deadline-infeasible.
        let mut strict = flow;
        strict.delay_budget_us = Some(0.001);
        let r = engine.embed(&sfc, &strict, Algo::Mbbe, arrival_seed(c.seed, 0));
        assert!(r.is_err());
        assert!(r.unwrap_err().is_deadline_infeasible());

        // An unmeetable rate with no budget: capacity-infeasible.
        let mut heavy = flow;
        heavy.rate = 1e9;
        let r = engine.embed(&sfc, &heavy, Algo::Mbbe, arrival_seed(c.seed, 0));
        assert!(r.is_err());
        assert!(!r.unwrap_err().is_deadline_infeasible());

        // An unsatisfiable placement rule: a reflexive anti-affinity
        // pair over an embedded kind can never hold, so the rejection
        // must classify as rule-infeasible.
        let kind = sfc.layers()[0].vnfs()[0];
        let ruled = sfc.clone().with_rules(dagsfc_core::PlacementRules {
            affinity: vec![],
            anti_affinity: vec![(kind, kind)],
        });
        let r = engine.embed(&ruled, &flow, Algo::Mbbe, arrival_seed(c.seed, 0));
        assert!(r.is_err());
        let e = r.unwrap_err();
        assert!(e.is_rule_infeasible(), "{e}");
        assert!(!e.is_deadline_infeasible());

        let stats = engine.stats(0, 16, OracleCounters::default());
        assert_eq!(stats.rejected, 3);
        assert_eq!(stats.rejected_deadline, 1);
        assert_eq!(stats.rejected_rule, 1);
        assert_eq!(stats.rejected_capacity, 1);

        // The original best-effort request still embeds, untouched by
        // the rejected attempts.
        engine
            .embed(&sfc, &flow, Algo::Mbbe, arrival_seed(c.seed, 0))
            .expect("best-effort request admits");
    }

    #[test]
    fn engine_matches_lifecycle_kernel_decisions() {
        // Saturate a tiny network: the engine must reject exactly when
        // the kernel rejects, because it IS the kernel.
        let c = SimConfig {
            network_size: 12,
            sfc_size: 3,
            vnf_capacity: 2.0,
            link_capacity: 2.0,
            seed: 0xE47,
            ..SimConfig::default()
        };
        let net = instance_network(&c);
        let mut engine = Engine::new(&net);
        let mut ledger = CommitLedger::new(&net);
        for arrival in 0..20 {
            let (sfc, flow) = instance_request(&c, &net, arrival);
            let seed = arrival_seed(c.seed, arrival);
            let direct = {
                let residual = ledger.residual();
                embed_and_commit(&mut ledger, &residual, &sfc, &flow, Algo::Minv, seed)
            };
            let served = engine.embed(&sfc, &flow, Algo::Minv, seed);
            assert_eq!(direct.is_ok(), served.is_ok(), "arrival {arrival}");
            if let (Ok(d), Ok(s)) = (direct, served) {
                assert_eq!(d.cost.total(), s.cost.total(), "arrival {arrival}");
            }
        }
    }
}
