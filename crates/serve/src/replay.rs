//! Trace replay: feeds a `sim`-frozen arrival/departure schedule
//! through a live daemon and records exactly what the in-process
//! lifecycle simulation records, so the two can be compared
//! bit-for-bit.
//!
//! The replayer regenerates the network and every per-arrival request
//! locally from the trace's `SimConfig` (both are pure functions of the
//! seed), drives the daemon lock-step — one request, one reply — and
//! schedules departures from the trace's precomputed holding times.
//! Lock-step means the daemon's queue never exceeds depth one and jobs
//! are ticketed in arrival order, which together with the server's
//! ticket gate makes the outcome independent of the worker-pool size.

use crate::client::{Client, ClientError, EmbedReply};
use dagsfc_net::LeaseId;
use dagsfc_sim::runner::{instance_network, instance_request};
use dagsfc_sim::DepartureQueue;
use dagsfc_sim::{arrival_seed, ArrivalOutcome, ReplayTrace};

/// What a replay run observed — field-for-field comparable with
/// `dagsfc_sim::LifecycleOutcome`.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Requests the daemon accepted.
    pub accepted: usize,
    /// Requests the daemon rejected.
    pub rejected: usize,
    /// Per-arrival fate, in arrival order.
    pub per_arrival: Vec<ArrivalOutcome>,
    /// Arrival indices in release order (including the final drain).
    pub departure_order: Vec<usize>,
}

impl ReplayReport {
    /// Sum of accepted costs, in arrival order (bit-identical to the
    /// simulation's).
    pub fn total_cost(&self) -> f64 {
        self.per_arrival.iter().map(|a| a.cost).sum()
    }

    /// Accepted / offered.
    pub fn acceptance_ratio(&self) -> f64 {
        let total = self.accepted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.accepted as f64 / total as f64
        }
    }
}

/// Replays `trace` through the daemon behind `client`.
///
/// The daemon must be serving the network `instance_network(&trace.base)`
/// generates — the CLI and tests launch it that way.
pub fn replay(client: &mut Client, trace: &ReplayTrace) -> Result<ReplayReport, ClientError> {
    let net = instance_network(&trace.base);
    let mut departures = DepartureQueue::new();
    let mut leases: Vec<Option<LeaseId>> = vec![None; trace.arrivals];
    let mut per_arrival = Vec::with_capacity(trace.arrivals);
    let mut departure_order = Vec::new();
    let mut accepted = 0usize;
    let mut rejected = 0usize;

    for arrival in 0..trace.arrivals {
        let now = dagsfc_sim::lifecycle::to_fixed(arrival as f64);
        while let Some(id) = departures.pop_due(now) {
            // lint:allow(expect) — invariant: departs once
            let lease = leases[id].take().expect("departs once");
            client.release(lease)?;
            departure_order.push(id);
        }

        let (sfc, flow) = instance_request(&trace.base, &net, arrival);
        let reply = client.embed(
            &sfc,
            &flow,
            Some(trace.algo),
            arrival_seed(trace.base.seed, arrival),
        )?;
        match reply {
            EmbedReply::Accepted { lease, cost } => {
                leases[arrival] = Some(lease);
                departures.schedule(trace.depart_at[arrival], arrival);
                accepted += 1;
                per_arrival.push(ArrivalOutcome {
                    accepted: true,
                    cost: cost.total(),
                });
            }
            EmbedReply::Rejected(_) => {
                rejected += 1;
                per_arrival.push(ArrivalOutcome {
                    accepted: false,
                    cost: 0.0,
                });
            }
        }
    }

    while let Some((_, id)) = departures.pop() {
        // lint:allow(expect) — invariant: departs once
        let lease = leases[id].take().expect("departs once");
        client.release(lease)?;
        departure_order.push(id);
    }

    Ok(ReplayReport {
        accepted,
        rejected,
        per_arrival,
        departure_order,
    })
}
