//! The event-driven batched server: one front-end poll thread, request
//! batching, and per-shard worker pools over a [`ShardedEngine`].
//!
//! ## Why not thread-per-connection?
//!
//! The original daemon ([`crate::server`]) spawns one handler thread
//! per connection; every request takes the engine lock at least once
//! for admission, and under hundreds of connections the daemon spends
//! its time context-switching and lock-bouncing rather than serving.
//! This server inverts the model:
//!
//! * a single **front-end thread** polls every connection with
//!   non-blocking reads, tolerating partial lines (bytes accumulate in
//!   a per-connection buffer until a `\n` completes a request);
//! * all requests that arrived in one poll pass form a **batch**:
//!   admission prechecks for the whole batch run under *one* engine
//!   lock acquisition, and the residual-view refresh is warmed once and
//!   amortized across the batch instead of once per request;
//! * admitted embeds are **ticketed** by the front end (a plain counter
//!   — no atomics needed, one thread) and dispatched to their home
//!   shard's bounded queue, where that shard's **worker pool** serves
//!   them;
//! * replies flow back through per-connection ordered queues, so a
//!   client that pipelines N requests gets N replies in request order —
//!   the same wire contract as the thread-per-connection daemon.
//!
//! ## Determinism
//!
//! The global [`TicketGate`] is shared by *all* shard pools: solve +
//! commit still happens in exactly admission order, one at a time, no
//! matter how many shards or workers exist. Admission prechecks run
//! against the **base** network (never the residual), so their outcome
//! cannot depend on how requests happened to be grouped into batches.
//! Together these make a replayed trace bit-for-bit independent of the
//! worker count, the shard-pool layout, and the batch boundaries — the
//! property the differential tests pin.
//!
//! Deadlock-freedom of the shared gate: the front end hands out tickets
//! in increasing order and each shard queue is FIFO, so the globally
//! next ticket is always at the head of some shard's queue, and the
//! worker that pops it never waits.

use crate::protocol::{
    fault_event_from_wire, parse_algo, ShardLane, StatsReport, WireRequest, WireResponse,
};
use crate::server::{hello_response, lock_recover, preset_chain, ServerHandle, TicketGate};
use dagsfc_core::solvers::precheck;
use dagsfc_core::{DagSfc, Flow};
use dagsfc_net::{FaultEvent, Network, PathOracle};
use dagsfc_shard::{RoutePolicy, ShardPlan, ShardRouter, ShardedEngine, StitchId};
use dagsfc_sim::Algo;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Batched-server configuration.
#[derive(Debug, Clone)]
pub struct BatchConfig {
    /// Region shards to partition the substrate into (1 = unsharded;
    /// the 1-shard configuration is bit-for-bit identical to the
    /// thread-per-connection daemon).
    pub shards: usize,
    /// Worker threads per shard pool (≥ 1; results are identical for
    /// any value by construction).
    pub workers_per_shard: usize,
    /// Bounded capacity of each shard's queue; admission rejects with
    /// `queue full` beyond it (backpressure).
    pub queue_capacity: usize,
    /// Default algorithm when a request names none.
    pub algo: Algo,
    /// Reclaim a connection's leases when it disconnects (see
    /// [`crate::ServeConfig::reclaim_on_disconnect`]).
    pub reclaim_on_disconnect: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            shards: 1,
            workers_per_shard: 2,
            queue_capacity: 64,
            algo: Algo::Mbbe,
            reclaim_on_disconnect: false,
        }
    }
}

/// One queued job for a shard's worker pool.
enum BatchJob {
    Embed {
        sfc: DagSfc,
        flow: Flow,
        algo: Algo,
        seed: u64,
        owner: u64,
    },
    Fault(FaultEvent),
    Reclaim {
        owner: u64,
    },
}

struct Ticketed {
    ticket: u64,
    job: BatchJob,
    reply: mpsc::Sender<WireResponse>,
}

/// One shard's bounded FIFO queue. Unlike the legacy queue, tickets are
/// assigned by the (single-threaded) front end, not at enqueue — the
/// queue only carries them.
struct ShardQueue {
    inner: Mutex<(VecDeque<Ticketed>, bool)>,
    ready: Condvar,
}

impl ShardQueue {
    fn new() -> Self {
        ShardQueue {
            inner: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, job: Ticketed) {
        lock_recover(&self.inner).0.push_back(job);
        self.ready.notify_one();
    }

    /// Next job, blocking; `None` once closed **and** empty — the drain
    /// guarantee.
    fn pop(&self) -> Option<Ticketed> {
        let mut inner = lock_recover(&self.inner);
        loop {
            if let Some(job) = inner.0.pop_front() {
                return Some(job);
            }
            if inner.1 {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(inner, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    fn close(&self) {
        lock_recover(&self.inner).1 = true;
        self.ready.notify_all();
    }

    fn depth(&self) -> usize {
        lock_recover(&self.inner).0.len()
    }
}

/// A reply owed to a connection, in request order.
// Ready responses stay inline: boxing would put an allocation on the
// admission hot path, and a connection holds at most a handful of
// pending replies at once.
#[allow(clippy::large_enum_variant)]
enum Pending {
    /// Computed at admission time (immediate commands, rejections).
    Ready(WireResponse),
    /// Owed by a shard worker.
    Wait(mpsc::Receiver<WireResponse>),
}

/// One client connection's front-end state.
struct Conn {
    stream: TcpStream,
    owner: u64,
    /// Bytes read but not yet terminated by `\n` (partial-line
    /// tolerance — slow or chunking clients).
    buf: Vec<u8>,
    /// Replies owed, in request order (pipelining support).
    pending: VecDeque<Pending>,
    /// Read side finished (EOF, IO error, or a served `shutdown`/`bye`);
    /// the connection is dropped once `pending` drains.
    closed: bool,
}

/// Everything the front end and the shard workers share.
struct SharedBatch<'n> {
    engine: Mutex<ShardedEngine<'n>>,
    oracle: PathOracle<'n>,
    queues: Vec<ShardQueue>,
    gate: TicketGate,
    shutdown: Arc<AtomicBool>,
    default_algo: Algo,
    queue_capacity: usize,
}

/// Runs the batched daemon over `net`, partitioned by `plan`, until
/// `shutdown` is raised; drains and returns the final stats. Blocking —
/// see [`spawn_batched`] for the owned-thread variant.
pub fn run_batched(
    net: &Network,
    plan: ShardPlan,
    cfg: &BatchConfig,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
) -> StatsReport {
    listener
        .set_nonblocking(true)
        // lint:allow(expect) — fatal at startup, before any request is admitted
        .expect("nonblocking listener");
    let shards = plan.shards();
    let shared = SharedBatch {
        engine: Mutex::new(ShardedEngine::new(
            net,
            plan,
            ShardRouter::new(RoutePolicy::SourceAffinity),
        )),
        oracle: PathOracle::new(net),
        queues: (0..shards).map(|_| ShardQueue::new()).collect(),
        gate: TicketGate::new(),
        shutdown: Arc::clone(&shutdown),
        default_algo: cfg.algo,
        queue_capacity: cfg.queue_capacity,
    };
    crossbeam::thread::scope(|s| {
        for queue in &shared.queues {
            for _ in 0..cfg.workers_per_shard.max(1) {
                s.spawn(|| shard_worker_loop(queue, &shared));
            }
        }
        poll_loop(&listener, cfg, &shared);
        // Stop admission; workers drain what is already queued, then
        // exit — every `Pending::Wait` receiver resolves.
        for queue in &shared.queues {
            queue.close();
        }
    });
    let engine = shared
        .engine
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    stats_report(&engine, &shared.queues, cfg.queue_capacity, &shared.oracle)
}

/// Binds `bind` and runs the batched daemon on a background thread that
/// owns `net`. Fails with `InvalidInput` when `shards` cannot partition
/// the network.
pub fn spawn_batched(
    net: Network,
    shards: usize,
    cfg: BatchConfig,
    bind: &str,
) -> std::io::Result<ServerHandle> {
    let plan = ShardPlan::partition(&net, shards)
        .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e.to_string()))?;
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let thread = std::thread::spawn(move || run_batched(&net, plan, &cfg, listener, flag));
    Ok(ServerHandle {
        addr,
        shutdown,
        thread,
    })
}

/// The front-end event loop: accept, read, batch-admit, flush replies.
fn poll_loop(listener: &TcpListener, cfg: &BatchConfig, shared: &SharedBatch<'_>) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut next_owner: u64 = 1;
    let mut next_ticket: u64 = 0;
    let mut scratch = [0u8; 4096];
    // Consecutive pass count without progress, for the idle backoff.
    let mut idle_passes: u32 = 0;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let mut progressed = false;

        // Accept everything waiting.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    conns.push(Conn {
                        stream,
                        owner: next_owner,
                        buf: Vec::new(),
                        pending: VecDeque::new(),
                        closed: false,
                    });
                    next_owner += 1;
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }

        // Read every connection; collect the complete lines that
        // arrived this pass — they are the batch.
        let mut batch: Vec<(usize, String)> = Vec::new();
        for (idx, conn) in conns.iter_mut().enumerate() {
            if conn.closed {
                continue;
            }
            loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        conn.closed = true;
                        if cfg.reclaim_on_disconnect && !shared.shutdown.load(Ordering::SeqCst) {
                            // Fire-and-forget, like the legacy server: the
                            // reply channel is dropped unread.
                            let (tx, _rx) = mpsc::channel();
                            let owner = conn.owner;
                            enqueue_reclaim(owner, &mut next_ticket, tx, shared);
                        }
                        break;
                    }
                    Ok(n) => {
                        conn.buf.extend_from_slice(&scratch[..n]);
                        progressed = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        conn.closed = true;
                        break;
                    }
                }
            }
            while let Some(pos) = conn.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = conn.buf.drain(..=pos).collect();
                batch.push((idx, String::from_utf8_lossy(&line).into_owned()));
            }
        }

        // Batched admission: one engine lock acquisition serves every
        // request that arrived this pass, and the residual-view warm-up
        // is amortized across the batch's embeds.
        if !batch.is_empty() {
            progressed = true;
            let mut engine = lock_recover(&shared.engine);
            if batch.iter().any(|(_, l)| l.contains("\"embed")) {
                engine.unpartitioned_residual();
            }
            for (idx, line) in batch {
                let owner = conns[idx].owner;
                let pending = admit(&line, owner, &mut engine, &mut next_ticket, shared);
                conns[idx].pending.push_back(pending);
            }
        }

        // Flush replies in request order; drop drained dead connections.
        for conn in &mut conns {
            if flush_pending(conn) {
                progressed = true;
            }
        }
        conns.retain(|c| !(c.closed && c.pending.is_empty()));

        // Idle backoff: lock-step clients reply within microseconds of
        // a flush, so spin-yield through short gaps (sleeping even 1ms
        // here would put a millisecond floor under every request's
        // round trip) and only sleep once the lull is real.
        if progressed {
            idle_passes = 0;
        } else {
            idle_passes += 1;
            if idle_passes < 256 {
                std::thread::yield_now();
            } else if idle_passes < 512 {
                std::thread::sleep(Duration::from_micros(50));
            } else {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    // Drain: workers finish every queued job, so every owed reply
    // resolves; deliver them before closing the sockets.
    for conn in &mut conns {
        while let Some(p) = conn.pending.pop_front() {
            let resp = match p {
                Pending::Ready(r) => r,
                Pending::Wait(rx) => rx
                    .recv()
                    .unwrap_or_else(|_| WireResponse::error("server shutting down")),
            };
            if write_response(&mut conn.stream, &resp).is_err() {
                break;
            }
        }
    }
}

/// Writes owed replies whose results are in, stopping at the first
/// still-pending one (order preserved). Returns whether anything was
/// written; marks the connection closed after a `bye`.
fn flush_pending(conn: &mut Conn) -> bool {
    let mut wrote = false;
    while let Some(front) = conn.pending.front_mut() {
        let resp = match front {
            Pending::Ready(_) => {
                // lint:allow(expect) — invariant: front() just returned Some
                let Pending::Ready(r) = conn.pending.pop_front().expect("front exists") else {
                    unreachable!()
                };
                r
            }
            Pending::Wait(rx) => match rx.try_recv() {
                Ok(r) => {
                    conn.pending.pop_front();
                    r
                }
                Err(mpsc::TryRecvError::Empty) => break,
                Err(mpsc::TryRecvError::Disconnected) => {
                    conn.pending.pop_front();
                    WireResponse::error("server shutting down")
                }
            },
        };
        let bye = resp.status == "bye";
        if write_response(&mut conn.stream, &resp).is_err() || bye {
            conn.closed = true;
        }
        wrote = true;
        if conn.closed {
            break;
        }
    }
    wrote
}

/// Serializes and writes one reply line, retrying on `WouldBlock` (the
/// socket is non-blocking; replies are small, so a full send buffer is
/// transient).
fn write_response(stream: &mut TcpStream, resp: &WireResponse) -> std::io::Result<()> {
    let mut payload =
        serde_json::to_string(resp).unwrap_or_else(|_| "{\"status\":\"error\"}".into());
    payload.push('\n');
    let mut bytes = payload.as_bytes();
    while !bytes.is_empty() {
        match stream.write(bytes) {
            Ok(0) => return Err(ErrorKind::WriteZero.into()),
            Ok(n) => bytes = &bytes[n..],
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Admits one request under the batch's engine lock: immediate commands
/// answer now; embeds/faults/reclaims are ticketed into a shard queue.
fn admit(
    line: &str,
    owner: u64,
    engine: &mut ShardedEngine<'_>,
    next_ticket: &mut u64,
    shared: &SharedBatch<'_>,
) -> Pending {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Pending::Ready(WireResponse::error("empty request line"));
    }
    let mut req: WireRequest = match serde_json::from_str(trimmed) {
        Ok(r) => r,
        Err(e) => return Pending::Ready(WireResponse::error(format!("bad request: {e}"))),
    };
    match req.cmd.as_str() {
        "ping" => Pending::Ready(WireResponse {
            status: "ok".into(),
            owner: Some(owner),
            ..WireResponse::default()
        }),
        "hello" => Pending::Ready(hello_response(req.proto, owner)),
        "stats" => Pending::Ready(WireResponse {
            status: "ok".into(),
            stats: Some(stats_report(
                engine,
                &shared.queues,
                shared.queue_capacity,
                &shared.oracle,
            )),
            ..WireResponse::default()
        }),
        "release" => {
            let Some(lease) = req.lease else {
                return Pending::Ready(WireResponse::error("release requires 'lease'"));
            };
            Pending::Ready(match engine.release(StitchId(lease)) {
                Ok(()) => WireResponse::ok(),
                Err(e) => WireResponse::error(e.to_string()),
            })
        }
        "shutdown" => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Pending::Ready(WireResponse {
                status: "bye".into(),
                ..WireResponse::default()
            })
        }
        "fault" => {
            let event = match fault_event_from_wire(&req) {
                Ok(e) => e,
                Err(e) => return Pending::Ready(WireResponse::error(e)),
            };
            // Faults are region-local: ticket the event into the owner
            // shard's queue, so it lands between the embeds admitted
            // before and after it — deterministically, via the global
            // gate — while loading only that shard's pool.
            let shard = match event {
                FaultEvent::LinkDown { link }
                | FaultEvent::LinkUp { link }
                | FaultEvent::LinkCapacity { link, .. } => {
                    if engine.network().try_link(link).is_err() {
                        return Pending::Ready(WireResponse::error(format!("unknown link {link}")));
                    }
                    engine.plan().owner_of(link)
                }
                FaultEvent::NodeDown { node }
                | FaultEvent::NodeUp { node }
                | FaultEvent::VnfCapacity { node, .. } => {
                    if engine.network().try_node(node).is_err() {
                        return Pending::Ready(WireResponse::error(format!("unknown node {node}")));
                    }
                    engine.plan().shard_of(node)
                }
            };
            enqueue(shard, BatchJob::Fault(event), engine, next_ticket, shared)
        }
        "reclaim" => {
            let target = req.owner.unwrap_or(owner);
            let (tx, rx) = mpsc::channel();
            if enqueue_reclaim(target, next_ticket, tx, shared) {
                Pending::Wait(rx)
            } else {
                engine.count_admission_rejection();
                Pending::Ready(WireResponse::rejected("queue full"))
            }
        }
        "embed" => {
            let Some(sfc) = req.sfc.take() else {
                return Pending::Ready(WireResponse::error("embed requires 'sfc'"));
            };
            let Some(flow) = req.flow else {
                return Pending::Ready(WireResponse::error("embed requires 'flow'"));
            };
            admit_embed(
                sfc,
                flow,
                req.algo.take(),
                req.seed,
                owner,
                engine,
                next_ticket,
                shared,
            )
        }
        "embed_preset" => {
            let Some(name) = req.preset.as_deref() else {
                return Pending::Ready(WireResponse::error("embed_preset requires 'preset'"));
            };
            let Some(flow) = req.flow else {
                return Pending::Ready(WireResponse::error("embed_preset requires 'flow'"));
            };
            let sfc = match preset_chain(name, req.max_width) {
                Ok(s) => s,
                Err(e) => return Pending::Ready(WireResponse::error(e)),
            };
            admit_embed(
                sfc,
                flow,
                req.algo.take(),
                req.seed,
                owner,
                engine,
                next_ticket,
                shared,
            )
        }
        other => Pending::Ready(WireResponse::error(format!("unknown command '{other}'"))),
    }
}

/// The embed admission path — the exact checks of the legacy server
/// (`precheck` against the **base** network, oracle reachability,
/// bounded-queue backpressure), then a ticket into the home shard's
/// queue. Prechecking against the base network (never the residual) is
/// what keeps admission outcomes independent of batch composition.
#[allow(clippy::too_many_arguments)]
fn admit_embed(
    sfc: DagSfc,
    flow: Flow,
    algo: Option<String>,
    seed: Option<u64>,
    owner: u64,
    engine: &mut ShardedEngine<'_>,
    next_ticket: &mut u64,
    shared: &SharedBatch<'_>,
) -> Pending {
    let algo = match algo.as_deref() {
        None => shared.default_algo,
        Some(name) => match parse_algo(name) {
            Some(a) => a,
            None => {
                return Pending::Ready(WireResponse::error(format!("unknown algorithm '{name}'")))
            }
        },
    };
    let seed = seed.unwrap_or(0);
    if let Err(e) = precheck(engine.network(), &sfc, &flow) {
        engine.count_admission_rejection();
        return Pending::Ready(WireResponse::rejected(format!("infeasible: {e}")));
    }
    if flow.src != flow.dst
        && shared
            .oracle
            .tree(flow.src, flow.rate)
            .path_to(flow.dst)
            .is_none()
    {
        engine.count_admission_rejection();
        return Pending::Ready(WireResponse::rejected(format!(
            "infeasible: no path {} -> {} at rate {}",
            flow.src, flow.dst, flow.rate
        )));
    }
    let shard = engine.home_shard(&flow);
    enqueue(
        shard,
        BatchJob::Embed {
            sfc,
            flow,
            algo,
            seed,
            owner,
        },
        engine,
        next_ticket,
        shared,
    )
}

/// Tickets `job` into `shard`'s queue, honoring its bounded capacity.
fn enqueue(
    shard: usize,
    job: BatchJob,
    engine: &mut ShardedEngine<'_>,
    next_ticket: &mut u64,
    shared: &SharedBatch<'_>,
) -> Pending {
    if shared.queues[shard].depth() >= shared.queue_capacity {
        engine.count_admission_rejection();
        return Pending::Ready(WireResponse::rejected("queue full"));
    }
    let (tx, rx) = mpsc::channel();
    let ticket = *next_ticket;
    *next_ticket += 1;
    shared.queues[shard].push(Ticketed {
        ticket,
        job,
        reply: tx,
    });
    Pending::Wait(rx)
}

/// Tickets a reclaim. Reclaims span every shard's ledger, so they are
/// routed through shard 0's queue by convention — the global ticket
/// gate serializes them against everything else regardless. Returns
/// `false` on backpressure.
fn enqueue_reclaim(
    owner: u64,
    next_ticket: &mut u64,
    reply: mpsc::Sender<WireResponse>,
    shared: &SharedBatch<'_>,
) -> bool {
    if shared.queues[0].depth() >= shared.queue_capacity {
        return false;
    }
    let ticket = *next_ticket;
    *next_ticket += 1;
    shared.queues[0].push(Ticketed {
        ticket,
        job: BatchJob::Reclaim { owner },
        reply,
    });
    true
}

/// One shard worker: pop FIFO from the shard's queue, wait for the
/// global turn, serve, advance.
fn shard_worker_loop(queue: &ShardQueue, shared: &SharedBatch<'_>) {
    while let Some(job) = queue.pop() {
        shared.gate.wait_for(job.ticket);
        let resp = match job.job {
            BatchJob::Embed {
                sfc,
                flow,
                algo,
                seed,
                owner,
            } => {
                let outcome = {
                    let mut engine = lock_recover(&shared.engine);
                    engine.set_request_owner(Some(owner));
                    let outcome = engine.embed(&sfc, &flow, algo, seed);
                    engine.set_request_owner(None);
                    outcome
                };
                match outcome {
                    Ok(a) => WireResponse {
                        status: "accepted".into(),
                        lease: Some(a.lease.0),
                        cost: Some(a.cost),
                        ..WireResponse::default()
                    },
                    Err(e @ dagsfc_sim::EmbedRejection::Audit(_)) => {
                        WireResponse::error(e.to_string())
                    }
                    Err(e) => WireResponse::rejected(e.to_string()),
                }
            }
            BatchJob::Fault(event) => {
                let applied = {
                    let mut engine = lock_recover(&shared.engine);
                    engine.apply_fault(&event)
                };
                match applied {
                    Ok(changed) => {
                        shared.oracle.apply_fault(&event);
                        WireResponse {
                            status: "ok".into(),
                            changed: Some(changed),
                            ..WireResponse::default()
                        }
                    }
                    Err(e) => WireResponse::error(e.to_string()),
                }
            }
            BatchJob::Reclaim { owner } => {
                let reclaimed = {
                    let mut engine = lock_recover(&shared.engine);
                    engine.reclaim_owner(owner)
                };
                WireResponse {
                    status: "ok".into(),
                    reclaimed: Some(reclaimed.len() as u64),
                    ..WireResponse::default()
                }
            }
        };
        shared.gate.advance();
        let _ = job.reply.send(resp);
    }
}

/// Maps the sharded engine's counters into the wire-level report. Field
/// semantics match [`crate::engine::Engine::stats`] exactly in the
/// 1-shard case.
fn stats_report(
    engine: &ShardedEngine<'_>,
    queues: &[ShardQueue],
    queue_capacity: usize,
    oracle: &PathOracle<'_>,
) -> StatsReport {
    let s = engine.stats();
    let o = oracle.stats();
    let offered = s.accepted + s.rejected;
    StatsReport {
        accepted: s.accepted,
        rejected: s.rejected,
        rejected_deadline: s.rejected_deadline,
        rejected_rule: s.rejected_rule,
        rejected_capacity: s.rejected_capacity,
        acceptance_ratio: if offered == 0 {
            0.0
        } else {
            s.accepted as f64 / offered as f64
        },
        total_cost: s.total_cost,
        active_leases: s.active_leases,
        released: s.released,
        queue_depth: queues.iter().map(|q| q.depth() as u64).sum(),
        queue_capacity: queue_capacity as u64,
        epoch: s.epoch,
        outstanding_load: s.outstanding_load,
        oracle: crate::protocol::OracleCounters {
            hits: o.hits,
            misses: o.misses,
            evictions: o.evictions,
            invalidations: o.invalidations,
            hit_rate: o.hit_rate(),
        },
        solver_cache_hits: s.solver_cache_hits,
        solver_cache_misses: s.solver_cache_misses,
        audits_run: s.audits_run,
        audits_failed: s.audits_failed,
        faults_applied: s.faults_applied,
        orphans_reclaimed: s.orphans_reclaimed,
        solve_timeouts: 0,
        commit_retries: s.commit_retries,
        shards: engine.plan().shards() as u64,
        cross_shard_offered: s.cross_shard_offered,
        cross_shard_accepted: s.cross_shard_accepted,
        per_shard: s
            .per_shard
            .iter()
            .map(|l| ShardLane {
                shard: l.shard,
                queue_depth: queues[l.shard as usize].depth() as u64,
                active_leases: l.active_leases,
                released: l.released,
                epoch: l.epoch,
                outstanding_load: l.outstanding_load,
                faults_applied: l.faults_applied,
                gateways: l.gateways,
            })
            .collect(),
        per_algo: s
            .per_algo
            .iter()
            .map(|(name, solves, total)| crate::protocol::AlgoLatency {
                algo: name.to_string(),
                solves: *solves,
                total_micros: total.as_micros() as u64,
                mean_micros: if *solves == 0 {
                    0.0
                } else {
                    total.as_micros() as f64 / *solves as f64
                },
            })
            .collect(),
    }
}
