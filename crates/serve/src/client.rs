//! `dagsfc-client`: a line-oriented client for the `dagsfc-serve`
//! protocol, used by the CLI subcommand, the trace replayer, and the
//! integration tests.

use crate::protocol::{algo_wire_name, StatsReport, WireRequest, WireResponse};
use dagsfc_core::{DagSfc, Flow};
use dagsfc_net::LeaseId;
use dagsfc_sim::Algo;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure.
    Io(std::io::Error),
    /// The server's reply was not valid JSON.
    Json(serde_json::Error),
    /// The server closed the connection mid-request.
    Disconnected,
    /// The server answered `status: "error"`.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Json(e) => write!(f, "bad server reply: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Server(reason) => write!(f, "server error: {reason}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<serde_json::Error> for ClientError {
    fn from(e: serde_json::Error) -> Self {
        ClientError::Json(e)
    }
}

/// The fate of one embed request, as seen over the wire.
#[derive(Debug, Clone)]
pub enum EmbedReply {
    /// Committed: the lease handle and the embedding's cost.
    Accepted {
        /// Release this on departure.
        lease: LeaseId,
        /// Objective cost (vnf + link terms).
        cost: dagsfc_core::CostBreakdown,
    },
    /// Turned away (admission, backpressure, or solver), with cause.
    Rejected(String),
}

/// A connected protocol client. One request/response at a time, in
/// order — exactly the lock-step discipline the trace replayer needs.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends one raw request and reads its reply.
    pub fn request(&mut self, req: &WireRequest) -> Result<WireResponse, ClientError> {
        let mut line = serde_json::to_string(req)?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Disconnected);
        }
        Ok(serde_json::from_str(reply.trim())?)
    }

    /// Embeds an explicit chain; `algo`/`seed` default server-side when
    /// `None`.
    pub fn embed(
        &mut self,
        sfc: &DagSfc,
        flow: &Flow,
        algo: Option<Algo>,
        seed: u64,
    ) -> Result<EmbedReply, ClientError> {
        let resp = self.request(&WireRequest {
            cmd: "embed".into(),
            sfc: Some(sfc.clone()),
            flow: Some(*flow),
            seed: Some(seed),
            algo: algo.map(|a| algo_wire_name(a).to_string()),
            ..WireRequest::default()
        })?;
        Self::embed_reply(resp)
    }

    /// Embeds a named `nfp` chain preset.
    pub fn embed_preset(
        &mut self,
        preset: &str,
        flow: &Flow,
        max_width: Option<usize>,
        algo: Option<Algo>,
        seed: u64,
    ) -> Result<EmbedReply, ClientError> {
        let resp = self.request(&WireRequest {
            cmd: "embed_preset".into(),
            preset: Some(preset.to_string()),
            flow: Some(*flow),
            seed: Some(seed),
            max_width,
            algo: algo.map(|a| algo_wire_name(a).to_string()),
            ..WireRequest::default()
        })?;
        Self::embed_reply(resp)
    }

    fn embed_reply(resp: WireResponse) -> Result<EmbedReply, ClientError> {
        match resp.status.as_str() {
            "accepted" => {
                let lease = resp
                    .lease
                    .ok_or_else(|| ClientError::Server("accepted without lease".into()))?;
                let cost = resp
                    .cost
                    .ok_or_else(|| ClientError::Server("accepted without cost".into()))?;
                Ok(EmbedReply::Accepted {
                    lease: LeaseId(lease),
                    cost,
                })
            }
            "rejected" => Ok(EmbedReply::Rejected(
                resp.reason.unwrap_or_else(|| "unspecified".into()),
            )),
            _ => Err(ClientError::Server(resp.reason.unwrap_or(resp.status))),
        }
    }

    /// Releases a lease; `Err(ClientError::Server(..))` on unknown or
    /// double release.
    pub fn release(&mut self, lease: LeaseId) -> Result<(), ClientError> {
        let resp = self.request(&WireRequest {
            cmd: "release".into(),
            lease: Some(lease.0),
            ..WireRequest::default()
        })?;
        match resp.status.as_str() {
            "ok" => Ok(()),
            _ => Err(ClientError::Server(resp.reason.unwrap_or(resp.status))),
        }
    }

    /// Fetches the daemon's counter report.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        let resp = self.request(&WireRequest {
            cmd: "stats".into(),
            ..WireRequest::default()
        })?;
        resp.stats
            .ok_or_else(|| ClientError::Server("stats reply without stats".into()))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let resp = self.request(&WireRequest {
            cmd: "ping".into(),
            ..WireRequest::default()
        })?;
        match resp.status.as_str() {
            "ok" => Ok(()),
            other => Err(ClientError::Server(other.to_string())),
        }
    }

    /// Asks the daemon to shut down (it drains queued work first).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let resp = self.request(&WireRequest {
            cmd: "shutdown".into(),
            ..WireRequest::default()
        })?;
        match resp.status.as_str() {
            "bye" => Ok(()),
            other => Err(ClientError::Server(other.to_string())),
        }
    }
}
