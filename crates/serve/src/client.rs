//! `dagsfc-client`: a line-oriented client for the `dagsfc-serve`
//! protocol, used by the CLI subcommand, the trace replayer, and the
//! integration tests.

use crate::protocol::{
    algo_wire_name, fault_event_to_wire, StatsReport, WireRequest, WireResponse, PROTOCOL_VERSION,
};
use dagsfc_core::{DagSfc, Flow};
use dagsfc_net::{FaultEvent, LeaseId};
use dagsfc_sim::Algo;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket failure.
    Io(std::io::Error),
    /// The server's reply was not valid JSON.
    Json(serde_json::Error),
    /// The server closed the connection mid-request.
    Disconnected,
    /// The server answered `status: "error"`.
    Server(String),
    /// The `hello` handshake found incompatible protocol versions.
    /// `server` is `None` when the daemon predates versioning entirely
    /// (it rejected `hello` as an unknown command).
    ProtocolMismatch {
        /// The version this client speaks ([`PROTOCOL_VERSION`]).
        client: u32,
        /// The version the daemon reported, if it reported one.
        server: Option<u32>,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Json(e) => write!(f, "bad server reply: {e}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::Server(reason) => write!(f, "server error: {reason}"),
            ClientError::ProtocolMismatch { client, server } => match server {
                Some(s) => write!(f, "protocol mismatch: client v{client}, server v{s}"),
                None => write!(f, "protocol mismatch: client v{client}, unversioned server"),
            },
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<serde_json::Error> for ClientError {
    fn from(e: serde_json::Error) -> Self {
        ClientError::Json(e)
    }
}

/// The fate of one embed request, as seen over the wire.
#[derive(Debug, Clone)]
pub enum EmbedReply {
    /// Committed: the lease handle and the embedding's cost.
    Accepted {
        /// Release this on departure.
        lease: LeaseId,
        /// Objective cost (vnf + link terms).
        cost: dagsfc_core::CostBreakdown,
    },
    /// Turned away (admission, backpressure, or solver), with cause.
    Rejected(String),
}

/// A connected protocol client. One request/response at a time, in
/// order — exactly the lock-step discipline the trace replayer needs.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running daemon and performs the `hello` version
    /// handshake. A version mismatch — or a pre-versioning daemon that
    /// rejects `hello` outright — fails fast with
    /// [`ClientError::ProtocolMismatch`] before any request is sent.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let mut client = Self::connect_unversioned(addr)?;
        client.hello()?;
        Ok(client)
    }

    /// Connects without the version handshake — for protocol-level
    /// tests that need to speak raw lines (including malformed ones) to
    /// the daemon. Normal clients use [`Client::connect`].
    pub fn connect_unversioned(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Sends the `hello` handshake on an already-open connection.
    pub fn hello(&mut self) -> Result<(), ClientError> {
        let resp = self.request(&WireRequest {
            cmd: "hello".into(),
            proto: Some(PROTOCOL_VERSION),
            ..WireRequest::default()
        })?;
        match resp.status.as_str() {
            "ok" if resp.proto == Some(PROTOCOL_VERSION) => Ok(()),
            // An "error" carrying a version is a versioned daemon we
            // disagree with; one without (e.g. "unknown command
            // 'hello'") is a daemon from before versioning existed.
            _ => Err(ClientError::ProtocolMismatch {
                client: PROTOCOL_VERSION,
                server: resp.proto,
            }),
        }
    }

    /// Sends one raw request and reads its reply.
    pub fn request(&mut self, req: &WireRequest) -> Result<WireResponse, ClientError> {
        let mut line = serde_json::to_string(req)?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.read_reply()
    }

    /// Sends one raw request in `chunk`-byte slices with a flush after
    /// each — a deterministic "slow client" that exercises the server's
    /// partial-line read path — then reads the reply normally.
    pub fn request_chunked(
        &mut self,
        req: &WireRequest,
        chunk: usize,
    ) -> Result<WireResponse, ClientError> {
        let mut line = serde_json::to_string(req)?;
        line.push('\n');
        let bytes = line.as_bytes();
        for piece in bytes.chunks(chunk.max(1)) {
            self.writer.write_all(piece)?;
            self.writer.flush()?;
        }
        self.read_reply()
    }

    /// Sends the first `prefix` bytes of a request and then drops the
    /// connection without finishing the line — a misbehaving client the
    /// server must survive without leaking a worker or a lease.
    pub fn abandon_mid_request(
        mut self,
        req: &WireRequest,
        prefix: usize,
    ) -> Result<(), ClientError> {
        let line = serde_json::to_string(req)?;
        let bytes = line.as_bytes();
        let cut = prefix.min(bytes.len());
        self.writer.write_all(&bytes[..cut])?;
        self.writer.flush()?;
        Ok(())
        // `self` drops here, closing both halves of the socket.
    }

    fn read_reply(&mut self) -> Result<WireResponse, ClientError> {
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Disconnected);
        }
        Ok(serde_json::from_str(reply.trim())?)
    }

    /// Embeds an explicit chain; `algo`/`seed` default server-side when
    /// `None`.
    pub fn embed(
        &mut self,
        sfc: &DagSfc,
        flow: &Flow,
        algo: Option<Algo>,
        seed: u64,
    ) -> Result<EmbedReply, ClientError> {
        let resp = self.request(&WireRequest {
            cmd: "embed".into(),
            sfc: Some(sfc.clone()),
            flow: Some(*flow),
            seed: Some(seed),
            algo: algo.map(|a| algo_wire_name(a).to_string()),
            ..WireRequest::default()
        })?;
        Self::embed_reply(resp)
    }

    /// Embeds a named `nfp` chain preset.
    pub fn embed_preset(
        &mut self,
        preset: &str,
        flow: &Flow,
        max_width: Option<usize>,
        algo: Option<Algo>,
        seed: u64,
    ) -> Result<EmbedReply, ClientError> {
        let resp = self.request(&WireRequest {
            cmd: "embed_preset".into(),
            preset: Some(preset.to_string()),
            flow: Some(*flow),
            seed: Some(seed),
            max_width,
            algo: algo.map(|a| algo_wire_name(a).to_string()),
            ..WireRequest::default()
        })?;
        Self::embed_reply(resp)
    }

    fn embed_reply(resp: WireResponse) -> Result<EmbedReply, ClientError> {
        match resp.status.as_str() {
            "accepted" => {
                let lease = resp
                    .lease
                    .ok_or_else(|| ClientError::Server("accepted without lease".into()))?;
                let cost = resp
                    .cost
                    .ok_or_else(|| ClientError::Server("accepted without cost".into()))?;
                Ok(EmbedReply::Accepted {
                    lease: LeaseId(lease),
                    cost,
                })
            }
            "rejected" => Ok(EmbedReply::Rejected(
                resp.reason.unwrap_or_else(|| "unspecified".into()),
            )),
            _ => Err(ClientError::Server(resp.reason.unwrap_or(resp.status))),
        }
    }

    /// Releases a lease; `Err(ClientError::Server(..))` on unknown or
    /// double release.
    pub fn release(&mut self, lease: LeaseId) -> Result<(), ClientError> {
        let resp = self.request(&WireRequest {
            cmd: "release".into(),
            lease: Some(lease.0),
            ..WireRequest::default()
        })?;
        match resp.status.as_str() {
            "ok" => Ok(()),
            _ => Err(ClientError::Server(resp.reason.unwrap_or(resp.status))),
        }
    }

    /// Fetches the daemon's counter report.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        let resp = self.request(&WireRequest {
            cmd: "stats".into(),
            ..WireRequest::default()
        })?;
        resp.stats
            .ok_or_else(|| ClientError::Server("stats reply without stats".into()))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.owner().map(|_| ())
    }

    /// Liveness probe that also returns this connection's owner id —
    /// the tag the server stamps on every lease committed through this
    /// connection (used by `reclaim`).
    pub fn owner(&mut self) -> Result<u64, ClientError> {
        let resp = self.request(&WireRequest {
            cmd: "ping".into(),
            ..WireRequest::default()
        })?;
        match resp.status.as_str() {
            "ok" => resp
                .owner
                .ok_or_else(|| ClientError::Server("ping reply without owner".into())),
            other => Err(ClientError::Server(other.to_string())),
        }
    }

    /// Injects a fault event into the serving substrate. Returns
    /// whether the event changed any state (idempotent re-sends return
    /// `false`).
    pub fn fault(&mut self, event: &FaultEvent) -> Result<bool, ClientError> {
        let resp = self.request(&fault_event_to_wire(event))?;
        match resp.status.as_str() {
            "ok" => Ok(resp.changed.unwrap_or(false)),
            "rejected" => Err(ClientError::Server(
                resp.reason.unwrap_or_else(|| "rejected".into()),
            )),
            _ => Err(ClientError::Server(resp.reason.unwrap_or(resp.status))),
        }
    }

    /// Releases every live lease committed under `owner` (`None` means
    /// this connection's own owner id). Returns the number reclaimed.
    pub fn reclaim(&mut self, owner: Option<u64>) -> Result<u64, ClientError> {
        let resp = self.request(&WireRequest {
            cmd: "reclaim".into(),
            owner,
            ..WireRequest::default()
        })?;
        match resp.status.as_str() {
            "ok" => Ok(resp.reclaimed.unwrap_or(0)),
            _ => Err(ClientError::Server(resp.reason.unwrap_or(resp.status))),
        }
    }

    /// Asks the daemon to shut down (it drains queued work first).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let resp = self.request(&WireRequest {
            cmd: "shutdown".into(),
            ..WireRequest::default()
        })?;
        match resp.status.as_str() {
            "bye" => Ok(()),
            other => Err(ClientError::Server(other.to_string())),
        }
    }
}
