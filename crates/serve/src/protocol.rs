//! The JSON-lines wire protocol spoken by `dagsfc-serve`.
//!
//! One JSON object per `\n`-terminated line, request → response, in
//! order, over a plain TCP stream. The shapes are deliberately *flat*
//! structs with optional fields rather than tagged enums: every client
//! in any language can build them with a dictionary literal, and absent
//! fields simply decode as `None`. `docs/SERVICE.md` is the normative
//! spec; this module is its executable form.

use dagsfc_core::{CostBreakdown, DagSfc, Flow};
use dagsfc_net::{FaultEvent, LinkId, NodeId, VnfTypeId};
use dagsfc_sim::Algo;
use serde::{Deserialize, Serialize};

/// The wire-protocol version this build speaks.
///
/// Clients open with `{"cmd":"hello","proto":N}`; the daemon replies
/// `ok` (echoing its own version in `proto`) when the versions match
/// and a `"protocol mismatch"` error otherwise, so incompatible pairs
/// fail fast with a typed error instead of a mid-session parse failure.
/// History: 1 — the unversioned JSON-lines protocol (no `hello`);
/// 2 — `hello` handshake, shard-aware stats (`shards`, `per_shard`,
/// cross-shard counters);
/// 3 — placement rules: `embed` chains may carry `rules`
/// (affinity / anti-affinity kind pairs) and `order` (precedence
/// edges), and stats split out `rejected_rule`.
pub const PROTOCOL_VERSION: u32 = 3;

/// A client → server command.
///
/// `cmd` selects the operation; the other fields are its operands:
///
/// | `cmd`           | required fields          | optional fields        |
/// |-----------------|--------------------------|------------------------|
/// | `"embed"`       | `sfc`, `flow`            | `algo`, `seed`         |
/// | `"embed_preset"`| `preset`, `flow`         | `algo`, `seed`, `max_width` |
/// | `"release"`     | `lease`                  |                        |
/// | `"stats"`       |                          |                        |
/// | `"ping"`        |                          |                        |
/// | `"shutdown"`    |                          |                        |
/// | `"fault"`       | `event`, + its operands  | see below              |
/// | `"reclaim"`     | `owner`                  |                        |
/// | `"hello"`       | `proto`                  |                        |
///
/// `fault` operands: `event` is one of `"link_down"`, `"link_up"`,
/// `"node_down"`, `"node_up"`, `"link_capacity"`, `"vnf_capacity"`;
/// `link`/`node`/`vnf` name the resource and `factor` scales capacity.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WireRequest {
    /// The operation to perform.
    pub cmd: String,
    /// `embed`: the chain to embed.
    pub sfc: Option<DagSfc>,
    /// `embed`/`embed_preset`: the flow to carry.
    pub flow: Option<Flow>,
    /// Solver seed (defaults to 0).
    pub seed: Option<u64>,
    /// Algorithm name (`"mbbe"`, `"bbe"`, …); defaults to the daemon's
    /// configured algorithm.
    pub algo: Option<String>,
    /// `embed_preset`: the chain-preset name from the `nfp` library.
    pub preset: Option<String>,
    /// `embed_preset`: optional parallel-width cap for the transform.
    pub max_width: Option<usize>,
    /// `release`: the lease to release.
    pub lease: Option<u64>,
    /// `fault`: the event kind (`"link_down"`, `"node_up"`, …).
    pub event: Option<String>,
    /// `fault`: target link index (for link events).
    pub link: Option<u32>,
    /// `fault`: target node index (for node and VNF events).
    pub node: Option<u32>,
    /// `fault`: target VNF type (for `vnf_capacity`).
    pub vnf: Option<u16>,
    /// `fault`: capacity multiplier (for `*_capacity`).
    pub factor: Option<f64>,
    /// `reclaim`: the owner session whose leases to reclaim.
    pub owner: Option<u64>,
    /// `hello`: the client's [`PROTOCOL_VERSION`].
    pub proto: Option<u32>,
}

/// A server → client reply. `status` is one of `"accepted"`,
/// `"rejected"`, `"ok"`, `"error"`, or `"bye"`; the optional fields are
/// populated per status (see `docs/SERVICE.md`).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WireResponse {
    /// Outcome class of the request.
    pub status: String,
    /// `accepted`: the lease handle for the committed resources.
    pub lease: Option<u64>,
    /// `accepted`: objective cost of the embedding.
    pub cost: Option<CostBreakdown>,
    /// `rejected`/`error`: human-readable cause.
    pub reason: Option<String>,
    /// `stats` replies: the full counter report.
    pub stats: Option<StatsReport>,
    /// `ping` replies: this connection's owner-session id (commits made
    /// over the connection are tagged with it; `reclaim` frees them).
    pub owner: Option<u64>,
    /// `fault` replies: whether the event changed the substrate state.
    pub changed: Option<bool>,
    /// `reclaim` replies: how many orphaned leases were released.
    pub reclaimed: Option<u64>,
    /// `hello` replies (and `hello` mismatch errors): the daemon's
    /// [`PROTOCOL_VERSION`].
    pub proto: Option<u32>,
}

impl WireResponse {
    /// An `"error"` reply with a reason.
    pub fn error(reason: impl Into<String>) -> Self {
        WireResponse {
            status: "error".into(),
            reason: Some(reason.into()),
            ..WireResponse::default()
        }
    }

    /// A `"rejected"` reply with a reason.
    pub fn rejected(reason: impl Into<String>) -> Self {
        WireResponse {
            status: "rejected".into(),
            reason: Some(reason.into()),
            ..WireResponse::default()
        }
    }

    /// A bare `"ok"` reply.
    pub fn ok() -> Self {
        WireResponse {
            status: "ok".into(),
            ..WireResponse::default()
        }
    }
}

/// Path-oracle counters, wire-shaped (mirrors
/// `dagsfc_net::OracleStats`, which the daemon reads from its shared
/// admission oracle).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OracleCounters {
    /// Shortest-path trees served from the cache.
    pub hits: u64,
    /// Shortest-path trees computed fresh.
    pub misses: u64,
    /// Trees evicted by the LRU bound.
    pub evictions: u64,
    /// Whole-cache invalidations.
    pub invalidations: u64,
    /// hits / (hits + misses), 0.0 when never queried.
    pub hit_rate: f64,
}

/// Per-algorithm solve-latency aggregate (wall-clock around the whole
/// solve-account-commit path, accepted and rejected alike).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AlgoLatency {
    /// Algorithm name as reported by the solver.
    pub algo: String,
    /// Number of solves routed to this algorithm.
    pub solves: u64,
    /// Total wall-clock microseconds across those solves.
    pub total_micros: u64,
    /// Mean wall-clock microseconds per solve.
    pub mean_micros: f64,
}

/// The full counter report returned by the `stats` command (and by the
/// daemon on exit).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatsReport {
    /// Requests embedded and committed.
    pub accepted: u64,
    /// Requests turned away (admission, queue-full, or solver).
    pub rejected: u64,
    /// Of `rejected`: solver rejections proven deadline-infeasible (the
    /// flow's delay budget cannot be met on the current residual).
    pub rejected_deadline: u64,
    /// Of `rejected`: solver rejections proven rule-infeasible (the
    /// request's affinity / anti-affinity pairs or precedence order
    /// cannot be satisfied on the current residual).
    pub rejected_rule: u64,
    /// Of `rejected`: solver rejections that are capacity/topology
    /// infeasibility (no feasible embedding irrespective of any SLA).
    pub rejected_capacity: u64,
    /// accepted / (accepted + rejected), 0.0 before any request.
    pub acceptance_ratio: f64,
    /// Sum of accepted embedding costs.
    pub total_cost: f64,
    /// Leases currently outstanding.
    pub active_leases: u64,
    /// Leases released over the daemon's lifetime.
    pub released: u64,
    /// Embed jobs waiting in the bounded queue right now.
    pub queue_depth: u64,
    /// The queue's capacity (admission rejects beyond it).
    pub queue_capacity: u64,
    /// The ledger's change epoch (commits + releases).
    pub epoch: u64,
    /// Committed-but-unreleased load across all resources.
    pub outstanding_load: f64,
    /// Counters of the shared admission path-oracle.
    pub oracle: OracleCounters,
    /// Path-cache hits summed over every solver run.
    pub solver_cache_hits: u64,
    /// Path-cache misses summed over every solver run.
    pub solver_cache_misses: u64,
    /// Solver commits re-checked by the constraint auditor (every one).
    pub audits_run: u64,
    /// Audits that found a violation (the commit was rolled back) —
    /// must be 0; anything else is a solver or accounting bug.
    pub audits_failed: u64,
    /// Substrate fault events that changed the state (chaos mode).
    pub faults_applied: u64,
    /// Leases reclaimed from vanished or misbehaving owners.
    pub orphans_reclaimed: u64,
    /// Solves rolled back for exceeding the per-request time budget
    /// (0 unless a solve timeout is configured).
    pub solve_timeouts: u64,
    /// Transient commit failures that were retried with a refreshed
    /// residual.
    pub commit_retries: u64,
    /// Per-algorithm solve latency, sorted by algorithm name.
    pub per_algo: Vec<AlgoLatency>,
    /// Number of region shards serving the substrate (1 = unsharded).
    pub shards: u64,
    /// Requests whose source and destination shards differed.
    pub cross_shard_offered: u64,
    /// Cross-shard requests that were stitched and committed.
    pub cross_shard_accepted: u64,
    /// Per-shard load figures (empty on the unsharded daemon).
    pub per_shard: Vec<ShardLane>,
}

/// One region shard's load figures inside a [`StatsReport`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ShardLane {
    /// Shard index.
    pub shard: u64,
    /// Embed jobs waiting in this shard's queue right now.
    pub queue_depth: u64,
    /// Sub-leases outstanding in this shard's ledger.
    pub active_leases: u64,
    /// Sub-leases released over the shard's lifetime.
    pub released: u64,
    /// The shard ledger's change epoch.
    pub epoch: u64,
    /// Committed-but-unreleased load in this shard.
    pub outstanding_load: f64,
    /// Fault events that changed this shard's state.
    pub faults_applied: u64,
    /// Gateway nodes of this shard.
    pub gateways: u64,
}

/// Decodes the flat `fault` operand fields of a [`WireRequest`] into a
/// typed [`FaultEvent`], validating that the operands the event kind
/// needs are present.
pub fn fault_event_from_wire(req: &WireRequest) -> Result<FaultEvent, String> {
    let kind = req.event.as_deref().ok_or("fault requires an event kind")?;
    let link = || {
        req.link
            .map(LinkId)
            .ok_or_else(|| format!("{kind} requires a link"))
    };
    let node = || {
        req.node
            .map(NodeId)
            .ok_or_else(|| format!("{kind} requires a node"))
    };
    let factor = || {
        req.factor
            .ok_or_else(|| format!("{kind} requires a factor"))
    };
    Ok(match kind {
        "link_down" => FaultEvent::LinkDown { link: link()? },
        "link_up" => FaultEvent::LinkUp { link: link()? },
        "node_down" => FaultEvent::NodeDown { node: node()? },
        "node_up" => FaultEvent::NodeUp { node: node()? },
        "link_capacity" => FaultEvent::LinkCapacity {
            link: link()?,
            factor: factor()?,
        },
        "vnf_capacity" => FaultEvent::VnfCapacity {
            node: node()?,
            vnf: VnfTypeId(req.vnf.ok_or("vnf_capacity requires a vnf")?),
            factor: factor()?,
        },
        other => return Err(format!("unknown fault event {other:?}")),
    })
}

/// Encodes a typed [`FaultEvent`] into the flat wire operand fields
/// (inverse of [`fault_event_from_wire`]).
pub fn fault_event_to_wire(event: &FaultEvent) -> WireRequest {
    let mut req = WireRequest {
        cmd: "fault".into(),
        ..WireRequest::default()
    };
    match *event {
        FaultEvent::LinkDown { link } => {
            req.event = Some("link_down".into());
            req.link = Some(link.0);
        }
        FaultEvent::LinkUp { link } => {
            req.event = Some("link_up".into());
            req.link = Some(link.0);
        }
        FaultEvent::NodeDown { node } => {
            req.event = Some("node_down".into());
            req.node = Some(node.0);
        }
        FaultEvent::NodeUp { node } => {
            req.event = Some("node_up".into());
            req.node = Some(node.0);
        }
        FaultEvent::LinkCapacity { link, factor } => {
            req.event = Some("link_capacity".into());
            req.link = Some(link.0);
            req.factor = Some(factor);
        }
        FaultEvent::VnfCapacity { node, vnf, factor } => {
            req.event = Some("vnf_capacity".into());
            req.node = Some(node.0);
            req.vnf = Some(vnf.0);
            req.factor = Some(factor);
        }
    }
    req
}

/// Parses a lowercase algorithm name as used on the wire and the CLI.
pub fn parse_algo(name: &str) -> Option<Algo> {
    Some(match name {
        "bbe" => Algo::Bbe,
        "mbbe" => Algo::Mbbe,
        "mbbe-st" => Algo::MbbeSt,
        "ranv" => Algo::Ranv,
        "minv" => Algo::Minv,
        "grasp" => Algo::Grasp,
        "exact" => Algo::Exact,
        _ => return None,
    })
}

/// The wire name of an algorithm (inverse of [`parse_algo`]).
pub fn algo_wire_name(algo: Algo) -> &'static str {
    match algo {
        Algo::Bbe => "bbe",
        Algo::Mbbe => "mbbe",
        Algo::MbbeSt => "mbbe-st",
        Algo::Ranv => "ranv",
        Algo::Minv => "minv",
        Algo::Grasp => "grasp",
        Algo::Exact => "exact",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_with_absent_fields() {
        let line = r#"{"cmd":"stats"}"#;
        let req: WireRequest = serde_json::from_str(line).unwrap();
        assert_eq!(req.cmd, "stats");
        assert!(req.sfc.is_none());
        assert!(req.lease.is_none());
    }

    #[test]
    fn release_carries_lease() {
        let req: WireRequest = serde_json::from_str(r#"{"cmd":"release","lease":7}"#).unwrap();
        assert_eq!(req.lease, Some(7));
    }

    #[test]
    fn responses_roundtrip() {
        let resp = WireResponse {
            status: "accepted".into(),
            lease: Some(3),
            cost: Some(CostBreakdown {
                vnf: 1.25,
                link: 0.5,
            }),
            ..WireResponse::default()
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: WireResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.status, "accepted");
        assert_eq!(back.lease, Some(3));
        assert_eq!(back.cost.unwrap().total(), 1.75);
    }

    #[test]
    fn fault_operands_roundtrip() {
        let events = [
            FaultEvent::LinkDown { link: LinkId(4) },
            FaultEvent::NodeUp { node: NodeId(2) },
            FaultEvent::LinkCapacity {
                link: LinkId(1),
                factor: 0.5,
            },
            FaultEvent::VnfCapacity {
                node: NodeId(3),
                vnf: VnfTypeId(1),
                factor: 1.5,
            },
        ];
        for e in events {
            let wire = fault_event_to_wire(&e);
            assert_eq!(wire.cmd, "fault");
            let back = fault_event_from_wire(&wire).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn fault_decoding_rejects_missing_operands() {
        let req = WireRequest {
            cmd: "fault".into(),
            event: Some("link_down".into()),
            ..WireRequest::default()
        };
        assert!(fault_event_from_wire(&req).is_err());
        let req = WireRequest {
            cmd: "fault".into(),
            event: Some("meteor_strike".into()),
            ..WireRequest::default()
        };
        assert!(fault_event_from_wire(&req)
            .unwrap_err()
            .contains("meteor_strike"));
        let req = WireRequest {
            cmd: "fault".into(),
            ..WireRequest::default()
        };
        assert!(fault_event_from_wire(&req).is_err());
    }

    #[test]
    fn algo_names_roundtrip() {
        for algo in [
            Algo::Bbe,
            Algo::Mbbe,
            Algo::MbbeSt,
            Algo::Ranv,
            Algo::Minv,
            Algo::Grasp,
            Algo::Exact,
        ] {
            assert_eq!(parse_algo(algo_wire_name(algo)), Some(algo));
        }
        assert_eq!(parse_algo("simulated-annealing"), None);
    }
}
