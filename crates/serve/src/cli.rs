//! Command-line entry points shared by the `dagsfc-serve` binary and
//! the root `dagsfc` CLI's `serve`/`client`/`trace`/`replay`
//! subcommands — one implementation, two front doors.

use crate::batch::{self, BatchConfig};
use crate::client::{Client, EmbedReply};
use crate::protocol::parse_algo;
use crate::replay::replay;
use crate::server::{self, ServeConfig};
use dagsfc_net::LeaseId;
use dagsfc_sim::runner::instance_network;
use dagsfc_sim::{
    export_trace, io as sim_io, run_lifecycle_detailed, Algo, LifecycleConfig, SimConfig,
};
use std::collections::HashMap;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Minimal `--key value` flag parser (mirrors the root CLI's).
struct Flags {
    map: HashMap<String, String>,
    positional: Vec<String>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut map = HashMap::new();
        let mut positional = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                match key {
                    // boolean flags
                    "verify" | "reclaim-on-disconnect" | "batch" | "legacy" => {
                        map.insert(key.to_string(), "true".to_string());
                    }
                    _ => {
                        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                        map.insert(key.to_string(), value.clone());
                    }
                }
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Flags { map, positional })
    }

    fn str(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.str(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad integer '{v}'")),
        }
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.str(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad integer '{v}'")),
        }
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.str(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number '{v}'")),
        }
    }

    fn f64_opt(&self, key: &str) -> Result<Option<f64>, String> {
        match self.str(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key}: bad number '{v}'")),
        }
    }

    fn algo_or(&self, key: &str, default: Algo) -> Result<Algo, String> {
        match self.str(key) {
            None => Ok(default),
            Some(v) => parse_algo(v).ok_or_else(|| format!("--{key}: unknown algorithm '{v}'")),
        }
    }

    fn has(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }
}

fn sim_config(flags: &Flags) -> Result<SimConfig, String> {
    Ok(SimConfig {
        network_size: flags.usize_or("nodes", 60)?,
        connectivity: flags.f64_or("degree", 6.0)?,
        vnf_kinds: flags.usize_or("kinds", 12)?,
        sfc_size: flags.usize_or("sfc-size", 5)?,
        seed: flags.u64_or("seed", SimConfig::default().seed)?,
        vnf_capacity: flags.f64_or("capacity", 8.0)?,
        link_capacity: flags.f64_or("capacity", 8.0)?,
        link_delay_us: flags.f64_opt("link-delay")?,
        delay_budget_us: flags.f64_opt("delay-budget")?,
        affinity_rate: flags.f64_opt("affinity-rate")?,
        anti_affinity_rate: flags.f64_opt("anti-affinity-rate")?,
        ..SimConfig::default()
    })
}

fn serve_config(flags: &Flags) -> Result<ServeConfig, String> {
    Ok(ServeConfig {
        workers: flags.usize_or("workers", 2)?.max(1),
        queue_capacity: flags.usize_or("queue", 64)?,
        algo: flags.algo_or("algo", Algo::Mbbe)?,
        reclaim_on_disconnect: flags.has("reclaim-on-disconnect"),
    })
}

/// `dagsfc-serve` / `dagsfc serve`: run the daemon until a client sends
/// `shutdown` (or the process is killed).
///
/// Serves through the event-driven batched front end by default
/// (`--shards N` partitions the substrate into N region shards;
/// `--workers` sizes each shard's pool). `--legacy` selects the
/// original thread-per-connection server.
///
/// ```text
/// dagsfc-serve [--addr 127.0.0.1:4600] [--workers 2] [--queue 64] [--algo mbbe]
///              [--shards 1] [--legacy]
///              [--network FILE | --nodes N --seed S --capacity C ...]
/// ```
pub fn daemon_main(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let net = match flags.str("network") {
        Some(path) => sim_io::load_network(&PathBuf::from(path)).map_err(|e| e.to_string())?,
        None => instance_network(&sim_config(&flags)?),
    };
    let addr = flags.str("addr").unwrap_or("127.0.0.1:4600");
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    // Parsed by scripts (and the CI smoke job): keep this line stable.
    println!("dagsfc-serve listening on {local}");
    let report = if flags.has("legacy") {
        let cfg = serve_config(&flags)?;
        server::run(&net, &cfg, listener, Arc::new(AtomicBool::new(false)))
    } else {
        let shards = flags.usize_or("shards", 1)?.max(1);
        let plan = dagsfc_shard::ShardPlan::partition(&net, shards).map_err(|e| e.to_string())?;
        let cfg = BatchConfig {
            shards,
            workers_per_shard: flags.usize_or("workers", 2)?.max(1),
            queue_capacity: flags.usize_or("queue", 64)?,
            algo: flags.algo_or("algo", Algo::Mbbe)?,
            reclaim_on_disconnect: flags.has("reclaim-on-disconnect"),
        };
        batch::run_batched(&net, plan, &cfg, listener, Arc::new(AtomicBool::new(false)))
    };
    println!(
        "{}",
        serde_json::to_string(&report).map_err(|e| e.to_string())?
    );
    Ok(())
}

/// `dagsfc trace`: freeze a lifecycle schedule to a JSON file for
/// replay.
///
/// ```text
/// dagsfc trace --out trace.json [--arrivals 50] [--mean-holding 8]
///              [--algo mbbe] [--nodes N --seed S --capacity C ...]
/// ```
pub fn trace_main(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let out = flags
        .str("out")
        .ok_or("trace requires --out FILE".to_string())?;
    let cfg = LifecycleConfig {
        base: sim_config(&flags)?,
        arrivals: flags.usize_or("arrivals", 50)?,
        mean_holding: flags.f64_or("mean-holding", 8.0)?,
        algo: flags.algo_or("algo", Algo::Mbbe)?,
    };
    let trace = export_trace(&cfg);
    sim_io::save_trace(&PathBuf::from(out), &trace).map_err(|e| e.to_string())?;
    println!(
        "trace: {} arrivals, mean holding {}, algo {} -> {out}",
        trace.arrivals,
        trace.mean_holding,
        trace.algo.name()
    );
    Ok(())
}

/// `dagsfc client`: one-shot protocol operations against a daemon.
///
/// ```text
/// dagsfc client ping     --addr HOST:PORT
/// dagsfc client stats    --addr HOST:PORT
/// dagsfc client embed    --addr HOST:PORT --preset NAME [--src A --dst B]
///                        [--algo mbbe] [--seed S] [--max-width W]
/// dagsfc client release  --addr HOST:PORT --lease ID
/// dagsfc client replay   --addr HOST:PORT --trace FILE
/// dagsfc client shutdown --addr HOST:PORT
/// ```
pub fn client_main(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let op = flags
        .positional
        .first()
        .map(String::as_str)
        .ok_or("client requires an operation (ping|stats|embed|release|replay|shutdown)")?;
    let addr = flags
        .str("addr")
        .ok_or("client requires --addr HOST:PORT".to_string())?;
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    match op {
        "ping" => {
            client.ping().map_err(|e| e.to_string())?;
            println!("ok");
        }
        "stats" => {
            let stats = client.stats().map_err(|e| e.to_string())?;
            println!(
                "{}",
                serde_json::to_string_pretty(&stats).map_err(|e| e.to_string())?
            );
        }
        "embed" => {
            let preset = flags
                .str("preset")
                .ok_or("client embed requires --preset NAME".to_string())?;
            let flow = dagsfc_core::Flow::unit(
                dagsfc_net::NodeId(flags.usize_or("src", 0)? as u32),
                dagsfc_net::NodeId(flags.usize_or("dst", 1)? as u32),
            );
            let algo = flags
                .str("algo")
                .map(|a| parse_algo(a).ok_or_else(|| format!("unknown algorithm '{a}'")));
            let algo = match algo {
                Some(r) => Some(r?),
                None => None,
            };
            let max_width = match flags.str("max-width") {
                Some(_) => Some(flags.usize_or("max-width", 3)?),
                None => None,
            };
            let reply = client
                .embed_preset(preset, &flow, max_width, algo, flags.u64_or("seed", 0)?)
                .map_err(|e| e.to_string())?;
            match reply {
                EmbedReply::Accepted { lease, cost } => {
                    println!("accepted: {lease}, cost {cost}");
                }
                EmbedReply::Rejected(reason) => println!("rejected: {reason}"),
            }
        }
        "release" => {
            let lease = flags
                .str("lease")
                .ok_or("client release requires --lease ID".to_string())?
                .parse::<u64>()
                .map_err(|_| "bad --lease".to_string())?;
            client.release(LeaseId(lease)).map_err(|e| e.to_string())?;
            println!("released lease#{lease}");
        }
        "replay" => {
            let path = flags
                .str("trace")
                .ok_or("client replay requires --trace FILE".to_string())?;
            let trace = sim_io::load_trace(&PathBuf::from(path)).map_err(|e| e.to_string())?;
            let report = replay(&mut client, &trace).map_err(|e| e.to_string())?;
            println!(
                "replayed {} arrivals: {} accepted, {} rejected (ratio {:.3}), total cost {:.6}",
                trace.arrivals,
                report.accepted,
                report.rejected,
                report.acceptance_ratio(),
                report.total_cost()
            );
            if report.accepted == 0 {
                return Err("replay accepted zero requests".into());
            }
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            println!("server draining");
        }
        other => return Err(format!("unknown client operation '{other}'")),
    }
    Ok(())
}

/// `dagsfc replay`: the self-contained equivalence harness — spawn an
/// in-process daemon, replay the trace through a real socket, and
/// verify the outcome against the in-process simulation.
///
/// `--batch` routes the replay through the event-driven batched front
/// end; `--shards N` (implies `--batch`) partitions the substrate into
/// N region shards with gateway stitching. The final stats are checked
/// in-process: `audits_failed` must be zero, and a multi-shard replay
/// must actually exercise cross-shard stitching.
///
/// ```text
/// dagsfc replay --trace FILE [--workers 2] [--queue 64] [--verify]
///               [--batch] [--shards N]
/// ```
pub fn replay_main(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let path = flags
        .str("trace")
        .ok_or("replay requires --trace FILE".to_string())?;
    let trace = sim_io::load_trace(&PathBuf::from(path)).map_err(|e| e.to_string())?;
    let shards = flags.usize_or("shards", 1)?.max(1);
    let batched = flags.has("batch") || flags.has("shards");
    let net = instance_network(&trace.base);
    let handle = if batched {
        let cfg = BatchConfig {
            shards,
            workers_per_shard: flags.usize_or("workers", 2)?.max(1),
            queue_capacity: flags.usize_or("queue", 64)?,
            algo: trace.algo,
            reclaim_on_disconnect: false,
        };
        batch::spawn_batched(net, shards, cfg, "127.0.0.1:0")
            .map_err(|e| format!("spawn batched server: {e}"))?
    } else {
        let cfg = ServeConfig {
            workers: flags.usize_or("workers", 2)?.max(1),
            queue_capacity: flags.usize_or("queue", 64)?,
            algo: trace.algo,
            reclaim_on_disconnect: false,
        };
        server::spawn(net, cfg, "127.0.0.1:0").map_err(|e| format!("spawn server: {e}"))?
    };
    let mut client = Client::connect(handle.addr()).map_err(|e| e.to_string())?;
    let report = replay(&mut client, &trace).map_err(|e| e.to_string())?;
    drop(client);
    let final_stats = handle.join();
    println!(
        "replayed {} arrivals over TCP: {} accepted, {} rejected (ratio {:.3}), total cost {:.6}",
        trace.arrivals,
        report.accepted,
        report.rejected,
        report.acceptance_ratio(),
        report.total_cost()
    );
    println!(
        "server: oracle {}h/{}m, solver cache {}h/{}m, {} leases released",
        final_stats.oracle.hits,
        final_stats.oracle.misses,
        final_stats.solver_cache_hits,
        final_stats.solver_cache_misses,
        final_stats.released
    );
    if batched {
        println!(
            "shards: {} regions, cross-shard {}/{} accepted, audits_failed {}",
            final_stats.shards,
            final_stats.cross_shard_accepted,
            final_stats.cross_shard_offered,
            final_stats.audits_failed
        );
        if final_stats.audits_failed != 0 {
            return Err(format!(
                "constraint auditor rejected {} committed embeddings",
                final_stats.audits_failed
            ));
        }
        if shards > 1 && final_stats.cross_shard_accepted == 0 {
            return Err("multi-shard replay accepted zero cross-shard embeddings; \
                 the gateway-stitching path was never exercised"
                .into());
        }
    }
    if flags.has("verify") {
        let sim = run_lifecycle_detailed(&LifecycleConfig {
            base: trace.base.clone(),
            arrivals: trace.arrivals,
            mean_holding: trace.mean_holding,
            algo: trace.algo,
        });
        let sim_per: &[_] = &sim.per_arrival;
        if sim_per != report.per_arrival.as_slice() || sim.departure_order != report.departure_order
        {
            return Err(format!(
                "replay DIVERGED from simulation: sim accepted {} (cost {:.6}), \
                 replay accepted {} (cost {:.6})",
                sim.metrics.accepted,
                sim.total_cost(),
                report.accepted,
                report.total_cost()
            ));
        }
        println!(
            "verified: bit-for-bit equal to in-process lifecycle \
             ({} accepted, total cost {:.6})",
            sim.metrics.accepted,
            sim.total_cost()
        );
    }
    Ok(())
}
