//! The `dagsfc-serve` daemon: JSON-lines over TCP, bounded queue with
//! backpressure, admission control, a deterministic worker pool, and
//! graceful drain on shutdown.
//!
//! ## Threading model
//!
//! * the **accept loop** (the thread that called [`run`]) polls a
//!   non-blocking listener and spawns one handler per connection;
//! * **handlers** parse lines, run admission control (shared
//!   static-capacity [`PathOracle`] + `dagsfc_core::solvers::precheck`),
//!   and either answer immediately (`stats`, `release`, rejections) or
//!   enqueue an embed job and wait for its reply;
//! * **workers** pop jobs FIFO and serve them through a ticket gate, so
//!   solve+commit happens in exactly the admission order no matter how
//!   many workers run — the property behind the trace-replay
//!   equivalence guarantee.
//!
//! Shutdown (flag or `shutdown` command) stops admission, drains every
//! queued embed to its reply, keeps all committed leases on the books,
//! and returns the final [`StatsReport`].

use crate::engine::Engine;
use crate::protocol::{
    fault_event_from_wire, parse_algo, OracleCounters, StatsReport, WireRequest, WireResponse,
    PROTOCOL_VERSION,
};
use dagsfc_core::solvers::precheck;
use dagsfc_core::{DagSfc, Flow, VnfCatalog};
use dagsfc_net::{FaultEvent, LeaseId, Network, PathOracle};
use dagsfc_nfp::transform::TransformOptions;
use dagsfc_sim::Algo;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Locks `m`, recovering the data if a previous holder panicked — one
/// crashed connection handler must not wedge the whole daemon.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads solving embeds (≥ 1; results are identical for
    /// any value by construction).
    pub workers: usize,
    /// Bounded queue capacity; admission rejects with `queue full`
    /// beyond it (backpressure).
    pub queue_capacity: usize,
    /// Default algorithm when a request names none.
    pub algo: Algo,
    /// When a connection drops (EOF or IO error), automatically enqueue
    /// a reclaim of every lease that connection still owns. Off by
    /// default: the one-shot CLI client opens a fresh connection per
    /// operation, which would make every normal workflow self-destruct.
    pub reclaim_on_disconnect: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            algo: Algo::Mbbe,
            reclaim_on_disconnect: false,
        }
    }
}

/// The payload of one queued job. Faults and reclaims flow through the
/// same ticketed queue as embeds so the interleaving of "substrate
/// changed" and "request solved" is fixed by admission order — the
/// property chaos replay's determinism rests on.
enum JobKind {
    Embed {
        sfc: DagSfc,
        flow: Flow,
        algo: Algo,
        seed: u64,
        /// The admitting connection's owner id (tags the lease).
        owner: u64,
    },
    Fault(FaultEvent),
    Reclaim {
        owner: u64,
    },
}

/// One queued job, ticketed at admission.
struct Job {
    ticket: u64,
    kind: JobKind,
    reply: mpsc::Sender<WireResponse>,
}

#[derive(Default)]
struct QueueInner {
    jobs: VecDeque<Job>,
    next_ticket: u64,
    closed: bool,
}

/// Bounded FIFO job queue (std `Mutex` + `Condvar`; the `parking_lot`
/// shim has no condvar).
struct JobQueue {
    capacity: usize,
    inner: Mutex<QueueInner>,
    ready: Condvar,
}

enum EnqueueError {
    Full,
    Closed,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        JobQueue {
            capacity,
            inner: Mutex::new(QueueInner::default()),
            ready: Condvar::new(),
        }
    }

    /// Admits a job if there is room, assigning its serving ticket
    /// under the same lock so FIFO order and ticket order coincide.
    fn try_enqueue(&self, kind: JobKind) -> Result<mpsc::Receiver<WireResponse>, EnqueueError> {
        let mut inner = lock_recover(&self.inner);
        if inner.closed {
            return Err(EnqueueError::Closed);
        }
        if inner.jobs.len() >= self.capacity {
            return Err(EnqueueError::Full);
        }
        let (tx, rx) = mpsc::channel();
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        inner.jobs.push_back(Job {
            ticket,
            kind,
            reply: tx,
        });
        self.ready.notify_one();
        Ok(rx)
    }

    /// Next job, blocking; `None` once the queue is closed **and**
    /// empty — the drain guarantee.
    fn pop(&self) -> Option<Job> {
        let mut inner = lock_recover(&self.inner);
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            let (guard, _) = self
                .ready
                .wait_timeout(inner, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
        }
    }

    fn close(&self) {
        lock_recover(&self.inner).closed = true;
        self.ready.notify_all();
    }

    fn depth(&self) -> usize {
        lock_recover(&self.inner).jobs.len()
    }
}

/// Serializes job completion in ticket order: a worker may hold job
/// *n+1* solved-ready, but commits only after *n* has been served.
/// Shared with the batched server, where it additionally serializes
/// *across* the per-shard worker pools.
pub(crate) struct TicketGate {
    next: Mutex<u64>,
    turn: Condvar,
}

impl TicketGate {
    pub(crate) fn new() -> Self {
        TicketGate {
            next: Mutex::new(0),
            turn: Condvar::new(),
        }
    }

    pub(crate) fn wait_for(&self, ticket: u64) {
        let mut next = lock_recover(&self.next);
        while *next != ticket {
            next = self.turn.wait(next).unwrap_or_else(PoisonError::into_inner);
        }
    }

    pub(crate) fn advance(&self) {
        *lock_recover(&self.next) += 1;
        self.turn.notify_all();
    }
}

/// Everything the handler and worker threads share.
struct Shared<'n> {
    engine: Mutex<Engine<'n>>,
    /// Static-capacity path oracle over the base network, shared across
    /// every handler thread for admission prechecks.
    oracle: PathOracle<'n>,
    queue: JobQueue,
    gate: TicketGate,
    shutdown: Arc<AtomicBool>,
    default_algo: Algo,
    /// Monotonic owner-id source: every connection gets one at accept
    /// time, its commits are tagged with it, and `reclaim` (or
    /// disconnect, when configured) frees everything it still holds.
    next_owner: AtomicU64,
    reclaim_on_disconnect: bool,
}

impl Shared<'_> {
    fn oracle_counters(&self) -> OracleCounters {
        let s = self.oracle.stats();
        OracleCounters {
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            invalidations: s.invalidations,
            hit_rate: s.hit_rate(),
        }
    }
}

/// Runs the daemon over `net` until `shutdown` is raised (by a client's
/// `shutdown` command or externally), then drains and returns the final
/// stats. Blocking; bind the listener first so the caller knows the
/// address — see [`spawn`] for the owned-thread variant.
pub fn run(
    net: &Network,
    cfg: &ServeConfig,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
) -> StatsReport {
    listener
        .set_nonblocking(true)
        // lint:allow(expect) — fatal at startup, before any request is admitted
        .expect("nonblocking listener");
    let shared = Shared {
        engine: Mutex::new(Engine::new(net)),
        oracle: PathOracle::new(net),
        queue: JobQueue::new(cfg.queue_capacity),
        gate: TicketGate::new(),
        shutdown: Arc::clone(&shutdown),
        default_algo: cfg.algo,
        next_owner: AtomicU64::new(1),
        reclaim_on_disconnect: cfg.reclaim_on_disconnect,
    };
    crossbeam::thread::scope(|s| {
        for _ in 0..cfg.workers.max(1) {
            s.spawn(|| worker_loop(&shared));
        }
        loop {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    s.spawn(|| handle_connection(stream, &shared));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => break,
            }
        }
        // Stop admission; workers drain what is already queued.
        shared.queue.close();
    });
    let engine = shared
        .engine
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    engine.stats(0, cfg.queue_capacity, {
        let s = shared.oracle.stats();
        OracleCounters {
            hits: s.hits,
            misses: s.misses,
            evictions: s.evictions,
            invalidations: s.invalidations,
            hit_rate: s.hit_rate(),
        }
    })
}

/// A running daemon with an owned network, for tests and the CLI (both
/// the thread-per-connection and the batched server return one).
pub struct ServerHandle {
    pub(crate) addr: SocketAddr,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) thread: std::thread::JoinHandle<StatsReport>,
}

impl ServerHandle {
    /// The bound address (use with `Client::connect`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Raises the shutdown flag without waiting.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Raises the shutdown flag and waits for the drain, returning the
    /// final stats report.
    pub fn join(self) -> StatsReport {
        self.shutdown.store(true, Ordering::SeqCst);
        // lint:allow(expect) — the daemon thread panicked; there is no report to return
        self.thread.join().expect("server thread")
    }
}

/// Binds `bind` (e.g. `"127.0.0.1:0"`) and runs the daemon on a
/// background thread that owns `net`.
pub fn spawn(net: Network, cfg: ServeConfig, bind: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let thread = std::thread::spawn(move || run(&net, &cfg, listener, flag));
    Ok(ServerHandle {
        addr,
        shutdown,
        thread,
    })
}

fn worker_loop(shared: &Shared<'_>) {
    while let Some(job) = shared.queue.pop() {
        // Ticket gate: serve strictly in admission order, so results
        // are independent of the worker-pool size. Faults and reclaims
        // ride the same gate, pinning their interleaving with embeds.
        shared.gate.wait_for(job.ticket);
        let resp = match job.kind {
            JobKind::Embed {
                sfc,
                flow,
                algo,
                seed,
                owner,
            } => {
                let outcome = {
                    let mut engine = lock_recover(&shared.engine);
                    engine.set_request_owner(Some(owner));
                    let outcome = engine.embed(&sfc, &flow, algo, seed);
                    engine.set_request_owner(None);
                    outcome
                };
                match outcome {
                    Ok(a) => WireResponse {
                        status: "accepted".into(),
                        lease: Some(a.lease.0),
                        cost: Some(a.cost),
                        ..WireResponse::default()
                    },
                    // An audit failure is a server-side bug (a solver emitted a
                    // constraint-violating embedding), not an ordinary capacity
                    // rejection — surface it as a protocol error.
                    Err(e @ dagsfc_sim::EmbedRejection::Audit(_)) => {
                        WireResponse::error(e.to_string())
                    }
                    Err(e) => WireResponse::rejected(e.to_string()),
                }
            }
            JobKind::Fault(event) => {
                let applied = {
                    let mut engine = lock_recover(&shared.engine);
                    engine.apply_fault(&event)
                };
                match applied {
                    Ok(changed) => {
                        // Mirror reachability changes into the admission
                        // oracle so a partitioned substrate rejects at
                        // admission instead of queueing doomed solves.
                        shared.oracle.apply_fault(&event);
                        WireResponse {
                            status: "ok".into(),
                            changed: Some(changed),
                            ..WireResponse::default()
                        }
                    }
                    Err(e) => WireResponse::error(e.to_string()),
                }
            }
            JobKind::Reclaim { owner } => {
                let reclaimed = {
                    let mut engine = lock_recover(&shared.engine);
                    engine.reclaim_owner(owner)
                };
                WireResponse {
                    status: "ok".into(),
                    reclaimed: Some(reclaimed.len() as u64),
                    ..WireResponse::default()
                }
            }
        };
        shared.gate.advance();
        // A vanished client (dropped receiver) is not a server error.
        let _ = job.reply.send(resp);
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared<'_>) {
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let owner = shared.next_owner.fetch_add(1, Ordering::SeqCst);
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                let resp = dispatch(&line, owner, shared);
                let done = resp.status == "bye";
                let mut payload = serde_json::to_string(&resp)
                    .unwrap_or_else(|_| "{\"status\":\"error\"}".into());
                payload.push('\n');
                if writer.write_all(payload.as_bytes()).is_err() {
                    break;
                }
                line.clear();
                if done {
                    break;
                }
            }
            // Timeout mid-line: the bytes read so far stay in `line`;
            // keep appending on the next pass.
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    // A vanished client may leave committed leases behind. When the
    // operator opted in, queue an orphan reclaim (fire-and-forget: the
    // reply channel is dropped, and a closed queue at shutdown keeps the
    // books as-is for the final report).
    if shared.reclaim_on_disconnect && !shared.shutdown.load(Ordering::SeqCst) {
        let _ = shared.queue.try_enqueue(JobKind::Reclaim { owner });
    }
}

fn dispatch(line: &str, owner: u64, shared: &Shared<'_>) -> WireResponse {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return WireResponse::error("empty request line");
    }
    let mut req: WireRequest = match serde_json::from_str(trimmed) {
        Ok(r) => r,
        Err(e) => return WireResponse::error(format!("bad request: {e}")),
    };
    match req.cmd.as_str() {
        "ping" => WireResponse {
            status: "ok".into(),
            owner: Some(owner),
            ..WireResponse::default()
        },
        "hello" => hello_response(req.proto, owner),
        "stats" => {
            let engine = lock_recover(&shared.engine);
            let stats = engine.stats(
                shared.queue.depth(),
                shared.queue.capacity,
                shared.oracle_counters(),
            );
            WireResponse {
                status: "ok".into(),
                stats: Some(stats),
                ..WireResponse::default()
            }
        }
        "release" => {
            let Some(lease) = req.lease else {
                return WireResponse::error("release requires 'lease'");
            };
            let mut engine = lock_recover(&shared.engine);
            match engine.release(LeaseId(lease)) {
                Ok(()) => WireResponse::ok(),
                Err(e) => WireResponse::error(e.to_string()),
            }
        }
        "shutdown" => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue.close();
            WireResponse {
                status: "bye".into(),
                ..WireResponse::default()
            }
        }
        "fault" => {
            let event = match fault_event_from_wire(&req) {
                Ok(e) => e,
                Err(e) => return WireResponse::error(e),
            };
            // Through the ticketed queue: the fault lands between the
            // embeds admitted before and after it, deterministically.
            match shared.queue.try_enqueue(JobKind::Fault(event)) {
                Ok(reply) => reply
                    .recv()
                    .unwrap_or_else(|_| WireResponse::error("server shutting down")),
                Err(EnqueueError::Full) => WireResponse::rejected("queue full"),
                Err(EnqueueError::Closed) => WireResponse::error("server shutting down"),
            }
        }
        "reclaim" => {
            // Default to the requesting connection's own leases; an
            // explicit owner reclaims on behalf of a vanished client.
            let target = req.owner.unwrap_or(owner);
            match shared.queue.try_enqueue(JobKind::Reclaim { owner: target }) {
                Ok(reply) => reply
                    .recv()
                    .unwrap_or_else(|_| WireResponse::error("server shutting down")),
                Err(EnqueueError::Full) => WireResponse::rejected("queue full"),
                Err(EnqueueError::Closed) => WireResponse::error("server shutting down"),
            }
        }
        "embed" => {
            let Some(sfc) = req.sfc.take() else {
                return WireResponse::error("embed requires 'sfc'");
            };
            let Some(flow) = req.flow else {
                return WireResponse::error("embed requires 'flow'");
            };
            embed_via_queue(sfc, flow, req.algo.take(), req.seed, owner, shared)
        }
        "embed_preset" => {
            let Some(name) = req.preset.as_deref() else {
                return WireResponse::error("embed_preset requires 'preset'");
            };
            let Some(flow) = req.flow else {
                return WireResponse::error("embed_preset requires 'flow'");
            };
            let sfc = match preset_chain(name, req.max_width) {
                Ok(s) => s,
                Err(e) => return WireResponse::error(e),
            };
            embed_via_queue(sfc, flow, req.algo.take(), req.seed, owner, shared)
        }
        other => WireResponse::error(format!("unknown command '{other}'")),
    }
}

/// Builds the chain for a named `nfp` preset. A bad preset name or a
/// sparse catalog is a protocol-level error, never a panic
/// (`nfp::PresetError` is ordinary). Shared by the thread-per-connection
/// and batched servers.
pub(crate) fn preset_chain(name: &str, max_width: Option<usize>) -> Result<DagSfc, String> {
    let hybrid = dagsfc_nfp::hybrid_preset(name, TransformOptions { max_width })
        .map_err(|e| e.to_string())?;
    let catalog = VnfCatalog::new(dagsfc_nfp::enterprise_catalog().len() as u16);
    DagSfc::from_hybrid(&hybrid, catalog).map_err(|e| format!("preset chain invalid: {e}"))
}

/// Answers a `hello` handshake: `ok` (echoing the daemon's version and
/// the connection's owner id) on a version match, a `"protocol
/// mismatch"` error naming both versions otherwise — the fail-fast path
/// versioned clients rely on. Shared by both servers.
pub(crate) fn hello_response(client_proto: Option<u32>, owner: u64) -> WireResponse {
    match client_proto {
        Some(v) if v == PROTOCOL_VERSION => WireResponse {
            status: "ok".into(),
            owner: Some(owner),
            proto: Some(PROTOCOL_VERSION),
            ..WireResponse::default()
        },
        Some(v) => WireResponse {
            proto: Some(PROTOCOL_VERSION),
            ..WireResponse::error(format!(
                "protocol mismatch: client speaks v{v}, daemon speaks v{PROTOCOL_VERSION}"
            ))
        },
        None => WireResponse {
            proto: Some(PROTOCOL_VERSION),
            ..WireResponse::error(format!(
                "protocol mismatch: hello carried no version (daemon speaks v{PROTOCOL_VERSION})"
            ))
        },
    }
}

/// Admission control, then the bounded queue, then the worker's reply.
fn embed_via_queue(
    sfc: DagSfc,
    flow: Flow,
    algo: Option<String>,
    seed: Option<u64>,
    owner: u64,
    shared: &Shared<'_>,
) -> WireResponse {
    let algo = match algo.as_deref() {
        None => shared.default_algo,
        Some(name) => match parse_algo(name) {
            Some(a) => a,
            None => return WireResponse::error(format!("unknown algorithm '{name}'")),
        },
    };
    let seed = seed.unwrap_or(0);

    // Admission 1: the solvers' own feasibility screen, against the
    // base network (conservative: rejects only what every solver would
    // reject too, so replay equivalence is preserved).
    {
        let mut engine = lock_recover(&shared.engine);
        if let Err(e) = precheck(engine.network(), &sfc, &flow) {
            engine.count_admission_rejection();
            return WireResponse::rejected(format!("infeasible: {e}"));
        }
    }
    // Admission 2: static-capacity reachability via the shared oracle.
    // The oracle carries the fault overlay, so a substrate partitioned
    // by link/node failures rejects here — fast, and without blocking a
    // worker on a solve that cannot succeed.
    if flow.src != flow.dst
        && shared
            .oracle
            .tree(flow.src, flow.rate)
            .path_to(flow.dst)
            .is_none()
    {
        lock_recover(&shared.engine).count_admission_rejection();
        return WireResponse::rejected(format!(
            "infeasible: no path {} -> {} at rate {}",
            flow.src, flow.dst, flow.rate
        ));
    }
    // Admission 3: bounded queue (backpressure).
    match shared.queue.try_enqueue(JobKind::Embed {
        sfc,
        flow,
        algo,
        seed,
        owner,
    }) {
        Ok(reply) => reply
            .recv()
            .unwrap_or_else(|_| WireResponse::error("server shutting down")),
        Err(EnqueueError::Full) => {
            lock_recover(&shared.engine).count_admission_rejection();
            WireResponse::rejected("queue full")
        }
        Err(EnqueueError::Closed) => WireResponse::error("server shutting down"),
    }
}
