//! Standalone daemon binary — thin wrapper over [`dagsfc_serve::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "dagsfc-serve: long-lived DAG-SFC embedding daemon\n\n\
             usage: dagsfc-serve [--addr 127.0.0.1:4600] [--workers 2] [--queue 64]\n\
             \x20                 [--algo bbe|mbbe|mbbe-st|ranv|minv|grasp|exact]\n\
             \x20                 [--network FILE | --nodes N --seed S --capacity C\n\
             \x20                  --degree D --kinds K --sfc-size L]\n\n\
             The daemon prints `dagsfc-serve listening on ADDR`, serves the\n\
             JSON-lines protocol until a client sends `shutdown`, then prints\n\
             its final stats report as one JSON object."
        );
        return;
    }
    if let Err(e) = dagsfc_serve::cli::daemon_main(&args) {
        eprintln!("dagsfc-serve: {e}");
        std::process::exit(1);
    }
}
