//! The paper's random SFC generator (§5.1).
//!
//! "It generates SFC by a specific rule in which every three VNFs can be
//! assigned in the same layer … each SFC is generated using different VNF
//! sets. This means the SFC generator generates SFCs with similar
//! structures but different VNFs on corresponding positions."
//!
//! Concretely: an SFC of size `s` has the fixed layer shape
//! `[w, w, …, r]` with `w = max_layer_width` (3 in the paper) and a final
//! remainder layer, and each run draws a fresh set of *distinct* VNF
//! kinds placed onto that shape.

use crate::config::SimConfig;
use dagsfc_core::{DagSfc, Flow, Layer, PlacementRules};
use dagsfc_net::{Network, NodeId, VnfTypeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// The deterministic layer widths of a size-`size` SFC under the paper's
/// "every three VNFs share a layer" rule.
pub fn layer_shape(size: usize, max_width: usize) -> Vec<usize> {
    assert!(size > 0, "SFC size must be positive");
    assert!(max_width > 0, "layer width must be positive");
    let mut shape = Vec::with_capacity(size.div_ceil(max_width));
    let mut left = size;
    while left > 0 {
        let w = left.min(max_width);
        shape.push(w);
        left -= w;
    }
    shape
}

/// Draws a random DAG-SFC of `cfg.sfc_size` distinct VNF kinds on the
/// fixed layer shape.
///
/// # Panics
/// Panics if the SFC size exceeds the number of available kinds (the
/// paper's "different VNF sets" rule requires distinct kinds).
pub fn random_sfc<R: Rng + ?Sized>(cfg: &SimConfig, rng: &mut R) -> DagSfc {
    random_sfc_of_size(cfg, cfg.sfc_size, rng)
}

/// Same as [`random_sfc`] with an explicit size (used by the SFC-size
/// sweep).
pub fn random_sfc_of_size<R: Rng + ?Sized>(cfg: &SimConfig, size: usize, rng: &mut R) -> DagSfc {
    assert!(
        size <= cfg.vnf_kinds,
        "SFC size {size} exceeds available kinds {}",
        cfg.vnf_kinds
    );
    let mut kinds: Vec<VnfTypeId> = (0..cfg.vnf_kinds as u16).map(VnfTypeId).collect();
    kinds.shuffle(rng);
    kinds.truncate(size);
    let mut layers = Vec::new();
    let mut it = kinds.into_iter();
    for width in layer_shape(size, cfg.max_layer_width) {
        layers.push(Layer::new((&mut it).take(width).collect()));
    }
    // lint:allow(expect) — invariant: generated chain is valid
    DagSfc::new(layers, cfg.catalog()).expect("generated chain is valid")
}

/// Attaches randomly drawn placement rules to a generated chain, per
/// `cfg.affinity_rate` / `cfg.anti_affinity_rate`.
///
/// When both rates are `None` (every pre-rule profile) the chain is
/// returned untouched and **no random draws are consumed**, so request
/// streams of committed traces replay bit-identical. When armed, each
/// rate independently adds at most one pair of *distinct kinds drawn
/// from the chain itself* — a rule over absent kinds would be vacuous.
/// The two pairs deliberately may overlap: an anti-affinity pair
/// fighting an affinity pair is a legitimate infeasible-by-rule
/// request, which the rejection accounting must classify, not dodge.
pub fn random_rules<R: Rng + ?Sized>(cfg: &SimConfig, sfc: DagSfc, rng: &mut R) -> DagSfc {
    if cfg.affinity_rate.is_none() && cfg.anti_affinity_rate.is_none() {
        return sfc;
    }
    let kinds: Vec<VnfTypeId> = sfc
        .layers()
        .iter()
        .flat_map(|l| l.vnfs().iter().copied())
        .collect();
    let mut rules = PlacementRules::default();
    if let Some(rate) = cfg.affinity_rate {
        if kinds.len() >= 2 && rng.gen_bool(rate.clamp(0.0, 1.0)) {
            let mut pick = kinds.clone();
            pick.shuffle(rng);
            rules.affinity.push((pick[0], pick[1]));
        }
    }
    if let Some(rate) = cfg.anti_affinity_rate {
        if kinds.len() >= 2 && rng.gen_bool(rate.clamp(0.0, 1.0)) {
            let mut pick = kinds;
            pick.shuffle(rng);
            rules.anti_affinity.push((pick[0], pick[1]));
        }
    }
    sfc.with_rules(rules)
}

/// Draws a random source–destination flow over `net` (distinct endpoints
/// whenever the network has more than one node).
pub fn random_flow<R: Rng + ?Sized>(cfg: &SimConfig, net: &Network, rng: &mut R) -> Flow {
    let n = net.node_count() as u32;
    let src = NodeId(rng.gen_range(0..n));
    let dst = if n == 1 {
        src
    } else {
        loop {
            let d = NodeId(rng.gen_range(0..n));
            if d != src {
                break d;
            }
        }
    };
    Flow {
        src,
        dst,
        rate: cfg.rate,
        size: cfg.flow_size,
        delay_budget_us: cfg.delay_budget_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_follow_rule_of_three() {
        assert_eq!(layer_shape(1, 3), vec![1]);
        assert_eq!(layer_shape(3, 3), vec![3]);
        assert_eq!(layer_shape(5, 3), vec![3, 2]);
        assert_eq!(layer_shape(9, 3), vec![3, 3, 3]);
        assert_eq!(layer_shape(7, 3), vec![3, 3, 1]);
        assert_eq!(layer_shape(4, 2), vec![2, 2]);
    }

    #[test]
    fn sfc_has_distinct_kinds_and_right_shape() {
        let cfg = SimConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let sfc = random_sfc(&cfg, &mut rng);
            assert_eq!(sfc.size(), 5);
            let widths: Vec<usize> = sfc.layers().iter().map(|l| l.width()).collect();
            assert_eq!(widths, vec![3, 2]);
            let mut kinds: Vec<_> = sfc
                .layers()
                .iter()
                .flat_map(|l| l.vnfs().iter().copied())
                .collect();
            kinds.sort_unstable();
            kinds.dedup();
            assert_eq!(kinds.len(), 5, "kinds must be distinct");
        }
    }

    #[test]
    fn same_structure_different_kinds_across_runs() {
        let cfg = SimConfig::default();
        let mut rng = StdRng::seed_from_u64(4);
        let a = random_sfc(&cfg, &mut rng);
        let b = random_sfc(&cfg, &mut rng);
        let shape = |s: &DagSfc| s.layers().iter().map(|l| l.width()).collect::<Vec<_>>();
        assert_eq!(shape(&a), shape(&b));
        assert_ne!(
            a, b,
            "kind sets should differ with overwhelming probability"
        );
    }

    #[test]
    fn determinism_under_seed() {
        let cfg = SimConfig::default();
        let a = random_sfc(&cfg, &mut StdRng::seed_from_u64(9));
        let b = random_sfc(&cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_size_overrides_config() {
        let cfg = SimConfig::default();
        let mut rng = StdRng::seed_from_u64(5);
        let sfc = random_sfc_of_size(&cfg, 9, &mut rng);
        assert_eq!(sfc.size(), 9);
        assert_eq!(sfc.depth(), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds available kinds")]
    fn oversize_chain_panics() {
        let cfg = SimConfig::default();
        random_sfc_of_size(&cfg, 99, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn random_flow_endpoints_distinct() {
        let cfg = SimConfig::quick();
        let net =
            dagsfc_net::generator::generate(&cfg.net_gen(), &mut StdRng::seed_from_u64(1)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let f = random_flow(&cfg, &net, &mut rng);
            assert_ne!(f.src, f.dst);
            assert!(f.src.index() < net.node_count());
            assert_eq!(f.rate, 1.0);
        }
    }
}
