//! Online (multi-request) embedding — an extension beyond the paper.
//!
//! The paper embeds one chain at a time and never stresses its capacity
//! constraints (2)/(3); those constraints exist because real clouds
//! serve *sequences* of requests over shared resources. This module
//! simulates exactly that: requests arrive one by one, each is embedded
//! against the **residual** network (capacities minus everything already
//! committed), and accepted embeddings commit their multicast-aware
//! loads. Metrics: acceptance ratio, cost, and resource utilization —
//! the classic VNE evaluation axes.
//!
//! Cost-efficient embedders are also *bandwidth*-efficient here: an
//! algorithm that strands less bandwidth per request sustains a higher
//! acceptance ratio under pressure, which is how the paper's "MBBE
//! always results in a solution while the benchmark algorithms do not"
//! robustness claim manifests at system level.

use crate::config::SimConfig;
use crate::runner::{instance_network, instance_request, Algo};
use dagsfc_net::{LinkId, NetworkState};
use serde::Serialize;

/// Configuration of one online simulation.
#[derive(Debug, Clone, Serialize)]
pub struct OnlineConfig {
    /// Network/chain/flow parameters (capacities matter here — pick
    /// finite ones, e.g. `vnf_capacity: 8.0, link_capacity: 8.0`).
    pub base: SimConfig,
    /// Number of arriving requests.
    pub requests: usize,
    /// The embedding algorithm under test.
    pub algo: Algo,
}

/// Aggregate outcome of an online simulation.
#[derive(Debug, Clone, Serialize)]
pub struct OnlineMetrics {
    /// Algorithm name.
    pub algo: &'static str,
    /// Requests embedded successfully.
    pub accepted: usize,
    /// Requests rejected (no feasible embedding on the residual net).
    pub rejected: usize,
    /// Mean cost over accepted requests.
    pub mean_cost: f64,
    /// Total cost over accepted requests (the provider's revenue proxy).
    pub total_cost: f64,
    /// Fraction of total link bandwidth committed at the end.
    pub link_utilization: f64,
    /// Fraction of total VNF processing capability committed at the end.
    pub vnf_utilization: f64,
}

impl OnlineMetrics {
    /// Accepted / offered.
    pub fn acceptance_ratio(&self) -> f64 {
        let total = self.accepted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.accepted as f64 / total as f64
        }
    }
}

/// Runs one online simulation: a fixed arrival sequence (deterministic
/// in the config seed) embedded greedily against shared residual state.
pub fn run_online(cfg: &OnlineConfig) -> OnlineMetrics {
    let net = instance_network(&cfg.base);
    let mut state = NetworkState::new(&net);
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut total_cost = 0.0;

    let total_link_cap: f64 = net.link_ids().map(|l| net.link(l).capacity).sum();
    let total_vnf_cap: f64 = net
        .node_ids()
        .flat_map(|v| net.node(v).instances().iter().map(|i| i.capacity))
        .sum();

    for run in 0..cfg.requests {
        let (sfc, flow) = instance_request(&cfg.base, &net, run);
        // Embed against the residual network so the solver sees exactly
        // the capacity that is still available.
        let residual = state.to_residual_network();
        let solver = cfg.algo.build(cfg.base.seed ^ (run as u64) << 1);
        // A solver success whose embedding fails accounting (it should
        // never happen: solvers only place deployed instances) counts as
        // a rejection rather than aborting the sweep.
        let solved = solver.solve(&residual, &sfc, &flow).ok().and_then(|out| {
            let acct = out.embedding.try_account(&residual, &sfc, &flow).ok()?;
            Some((out, acct))
        });
        match solved {
            Some((out, acct)) => {
                // Commit the accepted embedding's loads. The solver
                // validated against the residual capacities, so all
                // reservations must succeed.
                for (&(node, kind), &load) in &acct.vnf_load {
                    state
                        .reserve_vnf(node, kind, load)
                        // lint:allow(expect) — invariant: solver respected residual VNF capacity
                        .expect("solver respected residual VNF capacity");
                }
                for (i, &load) in acct.link_load.iter().enumerate() {
                    if load > 0.0 {
                        state
                            .reserve_link(LinkId(i as u32), load)
                            // lint:allow(expect) — invariant: solver respected residual bandwidth
                            .expect("solver respected residual bandwidth");
                    }
                }
                accepted += 1;
                total_cost += out.cost.total();
            }
            None => rejected += 1,
        }
    }

    OnlineMetrics {
        algo: cfg.algo.name(),
        accepted,
        rejected,
        mean_cost: if accepted == 0 {
            0.0
        } else {
            total_cost / accepted as f64
        },
        total_cost,
        link_utilization: if total_link_cap == 0.0 {
            0.0
        } else {
            state.total_link_load() / total_link_cap
        },
        vnf_utilization: if total_vnf_cap == 0.0 {
            0.0
        } else {
            state.total_vnf_load() / total_vnf_cap
        },
    }
}

/// Runs the same arrival sequence through several algorithms (each with
/// its own fresh state) at several offered-load levels.
pub fn acceptance_sweep(
    base: &SimConfig,
    algos: &[Algo],
    request_counts: &[usize],
) -> Vec<(usize, Vec<OnlineMetrics>)> {
    request_counts
        .iter()
        .map(|&requests| {
            let metrics = algos
                .iter()
                .map(|&algo| {
                    run_online(&OnlineConfig {
                        base: base.clone(),
                        requests,
                        algo,
                    })
                })
                .collect();
            (requests, metrics)
        })
        .collect()
}

/// ASCII rendering of an acceptance sweep.
pub fn acceptance_table(rows: &[(usize, Vec<OnlineMetrics>)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "== online embedding — acceptance ratio / link utilization vs offered load =="
    )
    .ok();
    if let Some((_, first)) = rows.first() {
        write!(out, "{:>10}", "requests").ok();
        for m in first {
            write!(out, "{:>18}", m.algo).ok();
        }
        writeln!(out).ok();
    }
    for (requests, metrics) in rows {
        write!(out, "{requests:>10}").ok();
        for m in metrics {
            write!(
                out,
                "{:>11.1}%/{:>4.1}%",
                m.acceptance_ratio() * 100.0,
                m.link_utilization * 100.0
            )
            .ok();
        }
        writeln!(out).ok();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pressured_base() -> SimConfig {
        SimConfig {
            network_size: 30,
            sfc_size: 4,
            vnf_capacity: 6.0,
            link_capacity: 6.0,
            seed: 0xFEED,
            ..SimConfig::default()
        }
    }

    #[test]
    fn uncontended_run_accepts_everything() {
        let cfg = OnlineConfig {
            base: SimConfig {
                network_size: 30,
                sfc_size: 3,
                ..SimConfig::default() // effectively unbounded capacity
            },
            requests: 8,
            algo: Algo::Mbbe,
        };
        let m = run_online(&cfg);
        assert_eq!(m.accepted, 8);
        assert_eq!(m.rejected, 0);
        assert!((m.acceptance_ratio() - 1.0).abs() < 1e-12);
        assert!(m.mean_cost > 0.0);
        assert!(m.link_utilization > 0.0 && m.link_utilization < 1e-3);
    }

    #[test]
    fn pressure_eventually_rejects() {
        let cfg = OnlineConfig {
            base: pressured_base(),
            requests: 120,
            algo: Algo::Minv,
        };
        let m = run_online(&cfg);
        assert!(
            m.rejected > 0,
            "120 requests must overrun 6-unit capacities"
        );
        assert!(m.accepted > 0);
        assert!(m.link_utilization > 0.05);
        assert!(m.vnf_utilization > 0.0);
        assert_eq!(m.accepted + m.rejected, 120);
    }

    #[test]
    fn deterministic_across_invocations() {
        let cfg = OnlineConfig {
            base: pressured_base(),
            requests: 40,
            algo: Algo::Mbbe,
        };
        let a = run_online(&cfg);
        let b = run_online(&cfg);
        assert_eq!(a.accepted, b.accepted);
        assert!((a.total_cost - b.total_cost).abs() < 1e-9);
    }

    #[test]
    fn acceptance_monotone_in_capacity() {
        let tight = OnlineConfig {
            base: SimConfig {
                vnf_capacity: 3.0,
                link_capacity: 3.0,
                ..pressured_base()
            },
            requests: 60,
            algo: Algo::Mbbe,
        };
        let loose = OnlineConfig {
            base: SimConfig {
                vnf_capacity: 30.0,
                link_capacity: 30.0,
                ..pressured_base()
            },
            requests: 60,
            algo: Algo::Mbbe,
        };
        let t = run_online(&tight);
        let l = run_online(&loose);
        assert!(
            l.accepted >= t.accepted,
            "more capacity cannot reduce acceptance ({} vs {})",
            l.accepted,
            t.accepted
        );
    }

    #[test]
    fn efficient_embedder_sustains_more_load() {
        // Same arrival sequence, shared-capacity pressure: the
        // link-efficient MBBE should accept at least as many requests
        // as RANV, which scatters VNFs and burns bandwidth.
        let base = pressured_base();
        let rows = acceptance_sweep(&base, &[Algo::Mbbe, Algo::Ranv], &[100]);
        let (_, metrics) = &rows[0];
        let mbbe = &metrics[0];
        let ranv = &metrics[1];
        assert!(
            mbbe.accepted >= ranv.accepted,
            "MBBE accepted {} < RANV {}",
            mbbe.accepted,
            ranv.accepted
        );
    }

    #[test]
    fn sweep_and_table_render() {
        let base = pressured_base();
        let rows = acceptance_sweep(&base, &[Algo::Mbbe, Algo::Minv], &[10, 30]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1.len(), 2);
        let table = acceptance_table(&rows);
        assert!(table.contains("MBBE"));
        assert!(table.contains("MINV"));
        assert!(table.lines().count() >= 4);
    }
}
