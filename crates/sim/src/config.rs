//! Simulation configuration (paper Table 2).
//!
//! `SimConfig::default()` is exactly the paper's *basic configuration*:
//! network size 500, connectivity 6, VNF deploying ratio 50%, average
//! price ratio 20%, VNF price fluctuation ratio 5%, SFC size 5. Absolute
//! scales (mean VNF price, capacities, flow rate/size) are fixed at the
//! unit values the paper implies — only ratios matter for the reported
//! trends.

use dagsfc_core::VnfCatalog;
use dagsfc_net::NetGenConfig;
use serde::{Deserialize, Serialize};

/// Parameters of one simulation instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Network size: number of nodes (Table 2: 500).
    pub network_size: usize,
    /// Network connectivity: average node degree (Table 2: 6).
    pub connectivity: f64,
    /// VNF deploying ratio (Table 2: 50%).
    pub vnf_deploy_ratio: f64,
    /// Average price ratio: mean link price / mean VNF price
    /// (Table 2: 20%).
    pub avg_price_ratio: f64,
    /// VNF price fluctuation ratio (Table 2: 5%).
    pub vnf_price_fluctuation: f64,
    /// SFC size: number of VNFs in the chain (Table 2: 5).
    pub sfc_size: usize,
    /// Number of regular VNF kinds available from the providers.
    pub vnf_kinds: usize,
    /// "Every three VNFs can be assigned in the same layer" (§5.1): the
    /// SFC generator's maximum parallel-set width.
    pub max_layer_width: usize,
    /// Runs per instance — the paper averages 100 SFCs per point.
    pub runs: usize,
    /// Master seed; every run derives its own sub-seed deterministically.
    pub seed: u64,
    /// Flow delivery rate `R`.
    pub rate: f64,
    /// Flow size `z`.
    pub flow_size: f64,
    /// Processing capability per VNF instance. The paper's evaluation
    /// never saturates capacities; the default is effectively unbounded.
    pub vnf_capacity: f64,
    /// Bandwidth per link (same remark).
    pub link_capacity: f64,
    /// Average per-link propagation delay (µs) fed to the network
    /// generator; `None` uses the generator's default. `Option`
    /// because committed traces predate per-link delays and must keep
    /// deserializing.
    pub link_delay_us: Option<f64>,
    /// End-to-end delay budget (µs) attached to every generated flow;
    /// `None` runs best-effort (the paper's setting). `Option` for the
    /// same trace-compatibility reason.
    pub delay_budget_us: Option<f64>,
    /// Probability that a generated request carries one affinity pair
    /// (two distinct kinds of the chain that must co-locate). `None`
    /// generates rule-free requests with zero extra RNG draws, so
    /// committed traces predating placement rules replay bit-identical.
    pub affinity_rate: Option<f64>,
    /// Probability that a generated request carries one anti-affinity
    /// pair (two distinct kinds of the chain that must never share a
    /// node). Same `None` semantics as `affinity_rate`.
    pub anti_affinity_rate: Option<f64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            network_size: 500,
            connectivity: 6.0,
            vnf_deploy_ratio: 0.5,
            avg_price_ratio: 0.2,
            vnf_price_fluctuation: 0.05,
            sfc_size: 5,
            vnf_kinds: 12,
            max_layer_width: 3,
            runs: 100,
            seed: 0x5fc_d46,
            rate: 1.0,
            flow_size: 1.0,
            vnf_capacity: 1e6,
            link_capacity: 1e6,
            link_delay_us: None,
            delay_budget_us: None,
            affinity_rate: None,
            anti_affinity_rate: None,
        }
    }
}

impl SimConfig {
    /// A scaled-down profile for tests and quick demos: 60-node network,
    /// 10 runs, otherwise Table 2 ratios.
    pub fn quick() -> Self {
        SimConfig {
            network_size: 60,
            runs: 10,
            ..SimConfig::default()
        }
    }

    /// The VNF catalog implied by this configuration.
    pub fn catalog(&self) -> VnfCatalog {
        VnfCatalog::new(self.vnf_kinds as u16)
    }

    /// The network-generator configuration implied by this configuration
    /// (deployable kinds = regular kinds + the merger).
    pub fn net_gen(&self) -> NetGenConfig {
        NetGenConfig {
            nodes: self.network_size,
            avg_degree: self.connectivity,
            vnf_kinds: self.vnf_kinds + 1,
            deploy_ratio: self.vnf_deploy_ratio,
            avg_vnf_price: 1.0,
            vnf_price_fluctuation: self.vnf_price_fluctuation,
            avg_price_ratio: self.avg_price_ratio,
            link_price_fluctuation: self.vnf_price_fluctuation,
            vnf_capacity: self.vnf_capacity,
            link_capacity: self.link_capacity,
            avg_link_delay_us: self.link_delay_us.unwrap_or(DEFAULT_LINK_DELAY_US),
            link_delay_fluctuation: 0.05,
            ensure_full_coverage: true,
        }
    }
}

/// Generator default mean link delay (µs) when the profile does not pin
/// one; matches `NetGenConfig::default()`.
pub const DEFAULT_LINK_DELAY_US: f64 = 10.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let c = SimConfig::default();
        assert_eq!(c.network_size, 500);
        assert_eq!(c.connectivity, 6.0);
        assert_eq!(c.vnf_deploy_ratio, 0.5);
        assert_eq!(c.avg_price_ratio, 0.2);
        assert_eq!(c.vnf_price_fluctuation, 0.05);
        assert_eq!(c.sfc_size, 5);
        assert_eq!(c.runs, 100);
        assert_eq!(c.max_layer_width, 3);
    }

    #[test]
    fn net_gen_projection() {
        let c = SimConfig::default();
        let g = c.net_gen();
        assert_eq!(g.nodes, 500);
        assert_eq!(g.vnf_kinds, 13); // 12 regular + merger
        assert!((g.avg_link_price() - 0.2).abs() < 1e-12);
        assert!(g.ensure_full_coverage);
    }

    #[test]
    fn catalog_projection() {
        let c = SimConfig::default();
        let cat = c.catalog();
        assert_eq!(cat.regular_count(), 12);
        assert_eq!(cat.merger().0, 12);
    }

    #[test]
    fn quick_profile_shrinks_only_scale() {
        let q = SimConfig::quick();
        assert_eq!(q.network_size, 60);
        assert_eq!(q.runs, 10);
        assert_eq!(q.connectivity, 6.0);
        assert_eq!(q.sfc_size, 5);
    }
}
