//! The shared flow-departure queue.
//!
//! Every trace-driven executor in the workspace — the lifecycle runner,
//! the trace auditor, the serve-layer replayer, and both chaos runners —
//! walks arrivals in order and, at each time boundary, releases the
//! leases of flows whose holding time expired. They all used to carry a
//! private `BinaryHeap<Reverse<(u64, usize)>>` with the same
//! peek/pop-while-due loop; this module is that queue, written once:
//! min departure time first, ascending arrival index on ties, so the
//! release order every consumer observes (and some of them assert
//! against each other) is identical by construction.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Pending departures ordered by `(time, arrival index)` ascending.
///
/// Times are the fixed-point microsecond ticks of
/// [`crate::lifecycle::to_fixed`]; ids are arrival indices into the
/// caller's lease table.
#[derive(Debug, Default, Clone)]
pub struct DepartureQueue {
    heap: BinaryHeap<Reverse<(u64, usize)>>,
}

impl DepartureQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules arrival `id` to depart at fixed-point time `at`.
    pub fn schedule(&mut self, at: u64, id: usize) {
        self.heap.push(Reverse((at, id)));
    }

    /// Pops the next departure due at or before `now` (min time first,
    /// ascending id on ties), or `None` when nothing is due yet.
    pub fn pop_due(&mut self, now: u64) -> Option<usize> {
        let &Reverse((t, _)) = self.heap.peek()?;
        if t > now {
            return None;
        }
        // lint:allow(expect) — invariant: peek above proved non-empty
        let Reverse((_, id)) = self.heap.pop().expect("peeked entry");
        Some(id)
    }

    /// Pops the next departure unconditionally — the end-of-trace drain
    /// measuring leakage. Returns `(time, id)`.
    pub fn pop(&mut self) -> Option<(u64, usize)> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Number of scheduled departures.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no departures are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_id_order() {
        let mut q = DepartureQueue::new();
        q.schedule(30, 2);
        q.schedule(10, 7);
        q.schedule(20, 1);
        q.schedule(10, 3);
        assert_eq!(q.len(), 4);
        let mut order = Vec::new();
        while let Some(e) = q.pop() {
            order.push(e);
        }
        // Time ascending; equal times break ties on ascending id.
        assert_eq!(order, vec![(10, 3), (10, 7), (20, 1), (30, 2)]);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_due_respects_the_boundary() {
        let mut q = DepartureQueue::new();
        q.schedule(5, 0);
        q.schedule(10, 1);
        q.schedule(15, 2);
        assert_eq!(q.pop_due(4), None);
        assert_eq!(q.pop_due(10), Some(0));
        assert_eq!(q.pop_due(10), Some(1));
        assert_eq!(q.pop_due(10), None, "15 is beyond the boundary");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((15, 2)));
        assert_eq!(q.pop_due(u64::MAX), None, "empty queue yields nothing");
    }

    #[test]
    fn interleaved_schedule_and_drain() {
        // Schedule while draining, as the arrival loop does: departures
        // scheduled for later boundaries never surface early.
        let mut q = DepartureQueue::new();
        q.schedule(2, 0);
        assert_eq!(q.pop_due(2), Some(0));
        q.schedule(4, 1);
        q.schedule(3, 2);
        assert_eq!(q.pop_due(3), Some(2));
        assert_eq!(q.pop_due(3), None);
        assert_eq!(q.pop_due(4), Some(1));
        assert!(q.is_empty());
    }
}
