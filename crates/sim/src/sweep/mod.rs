//! Parameter sweeps regenerating every figure of the paper's evaluation
//! (Fig. 6(a)–(f)) plus the §4.5 runtime comparison.
//!
//! Each sweep varies one knob of the Table 2 basic configuration and
//! runs a full instance (new seeded network + `runs` SFC draws per
//! point) for every algorithm. Sub-modules hold the per-figure x-grids;
//! this module holds the shared machinery.

pub mod capacity;
pub mod connectivity;
pub mod delay_budget;
pub mod deploy_ratio;
pub mod fluctuation;
pub mod network_size;
pub mod price_ratio;
pub mod quality;
pub mod runtime;
pub mod sfc_size;
pub mod topology;

pub use capacity::{capacity_sweep, CapacityPoint};
pub use connectivity::fig6c;
pub use delay_budget::delay_sweep;
pub use deploy_ratio::fig6d;
pub use fluctuation::fig6f;
pub use network_size::fig6b;
pub use price_ratio::fig6e;
pub use quality::{quality_experiment, quality_table, QualityRow};
pub use runtime::runtime_sweep;
pub use sfc_size::fig6a;
pub use topology::{topology_sweep, topology_table, TopologyPoint};

use crate::config::SimConfig;
use crate::runner::{run_instance, run_instances_with_threads, Algo, AlgoResult, OracleSnapshot};
use serde::Serialize;

/// BBE's practical SFC-size limit: the paper stops plotting BBE at size
/// 5 because its complexity grows exponentially with the chain length.
pub const BBE_SFC_SIZE_LIMIT: usize = 5;

/// One evaluated x-point of a sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// The x value (e.g. SFC size, node count, ratio).
    pub x: f64,
    /// Per-algorithm aggregates at this point.
    pub algos: Vec<AlgoResult>,
    /// Shared path-oracle counters for this point's instance.
    pub oracle: OracleSnapshot,
}

impl SweepPoint {
    /// Mean cost of a named algorithm at this point, if it ran and
    /// succeeded at least once.
    pub fn mean_cost(&self, name: &str) -> Option<f64> {
        self.algos
            .iter()
            .find(|a| a.name == name && a.successes > 0)
            .map(|a| a.cost.mean)
    }
}

/// A complete sweep: the series behind one paper figure.
#[derive(Debug, Clone, Serialize)]
pub struct SweepResult {
    /// Experiment id ("fig6a", …).
    pub id: &'static str,
    /// Human-readable x-axis label.
    pub x_label: &'static str,
    /// Evaluated points in x order.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// The (x, mean cost) series of one algorithm, skipping points where
    /// it did not run or never succeeded.
    pub fn series(&self, name: &str) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .filter_map(|p| p.mean_cost(name).map(|c| (p.x, c)))
            .collect()
    }
}

/// Expands a sweep's x grid into per-point `(config, algorithms)` plans.
/// Both executors derive point seeds through this one function, which is
/// what keeps them interchangeable.
fn point_plans(
    base: &SimConfig,
    xs: &[f64],
    set: impl Fn(&mut SimConfig, f64),
    algos: impl Fn(f64) -> Vec<Algo>,
) -> Vec<(SimConfig, Vec<Algo>)> {
    xs.iter()
        .enumerate()
        .map(|(i, &x)| {
            let mut cfg = base.clone();
            // Decorrelate point seeds while keeping the sweep reproducible.
            cfg.seed = base.seed.wrapping_add(1 + i as u64);
            set(&mut cfg, x);
            let a = algos(x);
            (cfg, a)
        })
        .collect()
}

/// Generic sweep driver: for every `x`, clone the base config, apply
/// `set(cfg, x)`, pick the algorithm list via `algos(x)`, and run the
/// instance. Every point reseeds deterministically from the base seed.
///
/// Points execute on the deterministic parallel executor
/// ([`run_instances`]): every `(point, run)` pair goes through one
/// shared work queue and the reduction is index-ordered, so the result —
/// including the rendered CSV, byte for byte — is identical to the
/// serial reference [`sweep_serial`] regardless of thread interleaving.
pub fn sweep(
    id: &'static str,
    x_label: &'static str,
    base: &SimConfig,
    xs: &[f64],
    set: impl Fn(&mut SimConfig, f64),
    algos: impl Fn(f64) -> Vec<Algo>,
) -> SweepResult {
    sweep_with_threads(id, x_label, base, xs, set, algos, None)
}

/// [`sweep`] with an explicit worker count for the parallel executor
/// (`None` = available parallelism). The bench harness records scaling
/// curves by rerunning one sweep across thread counts; results are
/// bit-identical at every count.
#[allow(clippy::too_many_arguments)]
pub fn sweep_with_threads(
    id: &'static str,
    x_label: &'static str,
    base: &SimConfig,
    xs: &[f64],
    set: impl Fn(&mut SimConfig, f64),
    algos: impl Fn(f64) -> Vec<Algo>,
    threads: Option<usize>,
) -> SweepResult {
    let plans = point_plans(base, xs, set, algos);
    let points = run_instances_with_threads(&plans, threads)
        .into_iter()
        .zip(xs)
        .map(|(result, &x)| SweepPoint {
            x,
            algos: result.algos,
            oracle: result.oracle,
        })
        .collect();
    SweepResult {
        id,
        x_label,
        points,
    }
}

/// The serial reference executor: one instance at a time, in x order.
/// Kept as the differential baseline the parallel [`sweep`] is tested
/// against (bit-identical CSV output).
pub fn sweep_serial(
    id: &'static str,
    x_label: &'static str,
    base: &SimConfig,
    xs: &[f64],
    set: impl Fn(&mut SimConfig, f64),
    algos: impl Fn(f64) -> Vec<Algo>,
) -> SweepResult {
    let plans = point_plans(base, xs, set, algos);
    let points = plans
        .iter()
        .zip(xs)
        .map(|((cfg, a), &x)| {
            let result = run_instance(cfg, a);
            SweepPoint {
                x,
                algos: result.algos,
                oracle: result.oracle,
            }
        })
        .collect();
    SweepResult {
        id,
        x_label,
        points,
    }
}

/// The paper's four plotted algorithms.
pub fn paper_algos() -> Vec<Algo> {
    vec![Algo::Mbbe, Algo::Bbe, Algo::Minv, Algo::Ranv]
}

/// The paper's algorithms minus BBE (used beyond BBE's practical range).
pub fn paper_algos_no_bbe() -> Vec<Algo> {
    vec![Algo::Mbbe, Algo::Minv, Algo::Ranv]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SimConfig {
        SimConfig {
            network_size: 30,
            runs: 4,
            sfc_size: 3,
            ..SimConfig::default()
        }
    }

    #[test]
    fn sweep_driver_applies_knob_per_point() {
        let base = tiny();
        let r = sweep(
            "test",
            "sfc size",
            &base,
            &[2.0, 3.0],
            |cfg, x| cfg.sfc_size = x as usize,
            |_| vec![Algo::Minv],
        );
        assert_eq!(r.points.len(), 2);
        assert_eq!(r.points[0].algos.len(), 1);
        let series = r.series("MINV");
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, 2.0);
        // Longer chains cost more on average.
        assert!(series[1].1 > series[0].1);
    }

    #[test]
    fn series_skips_absent_algorithms() {
        let base = tiny();
        let r = sweep("test", "x", &base, &[1.0], |_, _| {}, |_| vec![Algo::Minv]);
        assert!(r.series("BBE").is_empty());
        assert!(r.points[0].mean_cost("MBBE").is_none());
    }

    #[test]
    fn thread_count_never_changes_results() {
        // The scaling-curve contract: any worker count (including the
        // auto-serial fallback at 1) yields the serial reference
        // bit-for-bit, so BENCH curves compare pure wall-time.
        let base = tiny();
        let xs = [2.0, 3.0, 4.0];
        let set = |cfg: &mut SimConfig, x: f64| cfg.sfc_size = x as usize;
        let algos = |_: f64| vec![Algo::Minv, Algo::Ranv];
        let reference = sweep_serial("t", "x", &base, &xs, set, algos);
        let want = crate::report::csv(&reference);
        for threads in [1, 2, 4] {
            let got = sweep_with_threads("t", "x", &base, &xs, set, algos, Some(threads));
            assert_eq!(
                crate::report::csv(&got),
                want,
                "threads={threads} diverged from serial"
            );
        }
    }

    #[test]
    fn algo_sets() {
        assert_eq!(paper_algos().len(), 4);
        assert_eq!(paper_algos_no_bbe().len(), 3);
        assert!(!paper_algos_no_bbe().contains(&Algo::Bbe));
    }
}
