//! Fig. 6(a): impact of the SFC size.
//!
//! "We gradually change the SFC size from 1 to 9 while the network
//! conditions are kept the same. … because the time complexity of BBE is
//! growing exponentially with the size of SFC, the inspection of BBE in
//! this simulation ends at 5."

use super::{paper_algos, paper_algos_no_bbe, sweep, SweepResult, BBE_SFC_SIZE_LIMIT};
use crate::config::SimConfig;

/// The paper's x grid: SFC sizes 1..=9.
pub const SFC_SIZES: [f64; 9] = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];

/// Runs the Fig. 6(a) sweep on the paper's grid.
pub fn fig6a(base: &SimConfig) -> SweepResult {
    fig6a_on(base, &SFC_SIZES)
}

/// Runs the Fig. 6(a) sweep on a custom grid (for scaled-down profiles).
pub fn fig6a_on(base: &SimConfig, xs: &[f64]) -> SweepResult {
    sweep(
        "fig6a",
        "SFC size",
        base,
        xs,
        |cfg, x| cfg.sfc_size = x as usize,
        |x| {
            if x as usize <= BBE_SFC_SIZE_LIMIT {
                paper_algos()
            } else {
                paper_algos_no_bbe()
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bbe_dropped_beyond_limit() {
        let base = SimConfig {
            network_size: 30,
            runs: 3,
            ..SimConfig::default()
        };
        let r = fig6a_on(&base, &[2.0, 6.0]);
        assert!(r.points[0].mean_cost("BBE").is_some());
        assert!(r.points[1].mean_cost("BBE").is_none());
        assert!(r.points[1].mean_cost("MBBE").is_some());
    }

    #[test]
    fn cost_increases_with_sfc_size() {
        let base = SimConfig {
            network_size: 40,
            runs: 6,
            ..SimConfig::default()
        };
        let r = fig6a_on(&base, &[1.0, 5.0]);
        let mbbe = r.series("MBBE");
        assert!(mbbe[1].1 > mbbe[0].1, "cost must grow with SFC size");
    }
}
