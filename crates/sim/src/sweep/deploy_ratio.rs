//! Fig. 6(d): impact of the VNF deploying ratio.
//!
//! "We gradually change the VNF deploying ratio of all VNFs in the
//! network from 10% to 70%."

use super::{paper_algos, sweep, SweepResult};
use crate::config::SimConfig;

/// The paper's x grid: deploying ratios 10%..70%.
pub const DEPLOY_RATIOS: [f64; 7] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7];

/// Runs the Fig. 6(d) sweep on the paper's grid.
pub fn fig6d(base: &SimConfig) -> SweepResult {
    fig6d_on(base, &DEPLOY_RATIOS)
}

/// Runs the Fig. 6(d) sweep on a custom grid.
pub fn fig6d_on(base: &SimConfig, xs: &[f64]) -> SweepResult {
    sweep(
        "fig6d",
        "VNF deploying ratio",
        base,
        xs,
        |cfg, x| cfg.vnf_deploy_ratio = x,
        |_| paper_algos(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_deployment_cuts_our_cost() {
        let base = SimConfig {
            network_size: 60,
            runs: 8,
            sfc_size: 4,
            ..SimConfig::default()
        };
        let r = fig6d_on(&base, &[0.1, 0.6]);
        let mbbe = r.series("MBBE");
        assert!(
            mbbe[1].1 < mbbe[0].1,
            "more adjacent VNF choices should shorten real-paths"
        );
    }
}
