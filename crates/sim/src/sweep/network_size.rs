//! Fig. 6(b): impact of the network size.
//!
//! "We set different network sizes as 10, 20, 50, 100, 200, 500, 1000
//! nodes, while other configurations are the same."

use super::{paper_algos, sweep, SweepResult};
use crate::config::SimConfig;

/// The paper's x grid: network sizes.
pub const NETWORK_SIZES: [f64; 7] = [10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0];

/// Runs the Fig. 6(b) sweep on the paper's grid.
pub fn fig6b(base: &SimConfig) -> SweepResult {
    fig6b_on(base, &NETWORK_SIZES)
}

/// Runs the Fig. 6(b) sweep on a custom grid.
pub fn fig6b_on(base: &SimConfig, xs: &[f64]) -> SweepResult {
    sweep(
        "fig6b",
        "network size (nodes)",
        base,
        xs,
        |cfg, x| cfg.network_size = x as usize,
        |_| paper_algos(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn our_solutions_stay_stable_while_baselines_grow() {
        let base = SimConfig {
            runs: 8,
            sfc_size: 4,
            ..SimConfig::default()
        };
        let r = fig6b_on(&base, &[15.0, 120.0]);
        let mbbe = r.series("MBBE");
        let ranv = r.series("RANV");
        assert_eq!(mbbe.len(), 2);
        // RANV's cost explodes with network size (random hosts drift
        // apart); MBBE grows far slower. Compare growth factors.
        let mbbe_growth = mbbe[1].1 / mbbe[0].1;
        let ranv_growth = ranv[1].1 / ranv[0].1;
        assert!(
            ranv_growth > mbbe_growth,
            "RANV growth {ranv_growth:.2} should exceed MBBE growth {mbbe_growth:.2}"
        );
    }
}
