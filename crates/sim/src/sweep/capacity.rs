//! Capacity-pressure sweep — acceptance ratio vs provisioned capacity.
//!
//! Complements [`crate::online`]: instead of fixing capacity and
//! sweeping offered load, this experiment fixes the arrival sequence and
//! sweeps how much capacity the substrate provisions, under a choice of
//! [`EndpointModel`]. The operator-facing question it answers: *how much
//! capacity does each embedding algorithm need to sustain a target
//! acceptance ratio?* — cost-efficient embedders need less.

use crate::config::SimConfig;
use crate::online::OnlineMetrics;
use crate::runner::{instance_network, Algo};
use crate::sfcgen::random_sfc_of_size;
use crate::workload::EndpointModel;
use dagsfc_net::{LinkId, NetworkState};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// One capacity level's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct CapacityPoint {
    /// Provisioned capacity (applied to both VNFs and links).
    pub capacity: f64,
    /// Per-algorithm metrics, in the order requested.
    pub algos: Vec<OnlineMetrics>,
}

/// Runs the capacity sweep: `requests` arrivals per point under
/// `endpoints`, shared residual state per algorithm.
pub fn capacity_sweep(
    base: &SimConfig,
    algos: &[Algo],
    capacities: &[f64],
    requests: usize,
    endpoints: &EndpointModel,
) -> Vec<CapacityPoint> {
    capacities
        .iter()
        .map(|&capacity| {
            let cfg = SimConfig {
                vnf_capacity: capacity,
                link_capacity: capacity,
                ..base.clone()
            };
            let net = instance_network(&cfg);
            let metrics = algos
                .iter()
                .map(|&algo| run_with_endpoints(&cfg, &net, algo, requests, endpoints))
                .collect();
            CapacityPoint {
                capacity,
                algos: metrics,
            }
        })
        .collect()
}

/// Online run with a custom endpoint model (the plain online runner uses
/// the uniform model baked into `instance_request`).
fn run_with_endpoints(
    cfg: &SimConfig,
    net: &dagsfc_net::Network,
    algo: Algo,
    requests: usize,
    endpoints: &EndpointModel,
) -> OnlineMetrics {
    let mut state = NetworkState::new(net);
    let (mut accepted, mut rejected) = (0usize, 0usize);
    let mut total_cost = 0.0;
    let total_link_cap: f64 = net.link_ids().map(|l| net.link(l).capacity).sum();
    let total_vnf_cap: f64 = net
        .node_ids()
        .flat_map(|v| net.node(v).instances().iter().map(|i| i.capacity))
        .sum();

    for run in 0..requests {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ (run as u64).wrapping_mul(0x9E37));
        let sfc = random_sfc_of_size(cfg, cfg.sfc_size, &mut rng);
        let flow = endpoints.draw(cfg, net, &mut rng);
        let residual = state.to_residual_network();
        let solver = algo.build(cfg.seed ^ run as u64);
        let solved = solver.solve(&residual, &sfc, &flow).ok().and_then(|out| {
            let acct = out.embedding.try_account(&residual, &sfc, &flow).ok()?;
            Some((out, acct))
        });
        match solved {
            Some((out, acct)) => {
                for (&(node, kind), &load) in &acct.vnf_load {
                    state
                        .reserve_vnf(node, kind, load)
                        // lint:allow(expect) — invariant: solver respected residual capacity
                        .expect("solver respected residual capacity");
                }
                for (i, &load) in acct.link_load.iter().enumerate() {
                    if load > 0.0 {
                        state
                            .reserve_link(LinkId(i as u32), load)
                            // lint:allow(expect) — invariant: solver respected residual bandwidth
                            .expect("solver respected residual bandwidth");
                    }
                }
                accepted += 1;
                total_cost += out.cost.total();
            }
            None => rejected += 1,
        }
    }
    OnlineMetrics {
        algo: algo.name(),
        accepted,
        rejected,
        mean_cost: if accepted == 0 {
            0.0
        } else {
            total_cost / accepted as f64
        },
        total_cost,
        link_utilization: if total_link_cap == 0.0 {
            0.0
        } else {
            state.total_link_load() / total_link_cap
        },
        vnf_utilization: if total_vnf_cap == 0.0 {
            0.0
        } else {
            state.total_vnf_load() / total_vnf_cap
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimConfig {
        SimConfig {
            network_size: 30,
            sfc_size: 3,
            seed: 0xCAFE,
            ..SimConfig::default()
        }
    }

    #[test]
    fn acceptance_monotone_in_capacity() {
        let points = capacity_sweep(
            &base(),
            &[Algo::Mbbe],
            &[2.0, 6.0, 20.0],
            40,
            &EndpointModel::Uniform,
        );
        assert_eq!(points.len(), 3);
        for w in points.windows(2) {
            assert!(
                w[1].algos[0].accepted >= w[0].algos[0].accepted,
                "capacity {} admits fewer than {}",
                w[1].capacity,
                w[0].capacity
            );
        }
        // Generous capacity admits everything.
        assert_eq!(points[2].algos[0].accepted, 40);
    }

    #[test]
    fn efficient_embedder_needs_less_capacity() {
        let points = capacity_sweep(
            &base(),
            &[Algo::Mbbe, Algo::Ranv],
            &[5.0],
            60,
            &EndpointModel::Uniform,
        );
        let mbbe = &points[0].algos[0];
        let ranv = &points[0].algos[1];
        assert!(
            mbbe.accepted >= ranv.accepted,
            "MBBE {} vs RANV {} at equal capacity",
            mbbe.accepted,
            ranv.accepted
        );
    }

    #[test]
    fn hotspot_traffic_saturates_earlier() {
        // Concentrated destinations exhaust the hot region's resources
        // sooner than uniform traffic at equal capacity.
        let uniform = capacity_sweep(&base(), &[Algo::Mbbe], &[4.0], 60, &EndpointModel::Uniform);
        let hotspot = capacity_sweep(
            &base(),
            &[Algo::Mbbe],
            &[4.0],
            60,
            &EndpointModel::Hotspot {
                hotspots: 2,
                bias: 0.9,
            },
        );
        assert!(
            hotspot[0].algos[0].accepted <= uniform[0].algos[0].accepted,
            "hotspot {} should not beat uniform {}",
            hotspot[0].algos[0].accepted,
            uniform[0].algos[0].accepted
        );
    }

    #[test]
    fn deterministic() {
        let a = capacity_sweep(&base(), &[Algo::Minv], &[5.0], 20, &EndpointModel::Gravity);
        let b = capacity_sweep(&base(), &[Algo::Minv], &[5.0], 20, &EndpointModel::Gravity);
        assert_eq!(a[0].algos[0].accepted, b[0].algos[0].accepted);
        assert!((a[0].algos[0].total_cost - b[0].algos[0].total_cost).abs() < 1e-9);
    }
}
