//! Fig. 6(c): impact of the network connectivity.
//!
//! "We gradually change the average connectivity from 2 to 14 while
//! other configurations are kept the same."

use super::{paper_algos, sweep, SweepResult};
use crate::config::SimConfig;

/// The paper's x grid: average node degrees 2..=14.
pub const CONNECTIVITIES: [f64; 7] = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0];

/// Runs the Fig. 6(c) sweep on the paper's grid.
pub fn fig6c(base: &SimConfig) -> SweepResult {
    fig6c_on(base, &CONNECTIVITIES)
}

/// Runs the Fig. 6(c) sweep on a custom grid.
pub fn fig6c_on(base: &SimConfig, xs: &[f64]) -> SweepResult {
    sweep(
        "fig6c",
        "network connectivity (avg degree)",
        base,
        xs,
        |cfg, x| cfg.connectivity = x,
        |_| paper_algos(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denser_networks_cost_less() {
        let base = SimConfig {
            network_size: 60,
            runs: 8,
            sfc_size: 4,
            ..SimConfig::default()
        };
        let r = fig6c_on(&base, &[2.0, 10.0]);
        let mbbe = r.series("MBBE");
        assert!(
            mbbe[1].1 < mbbe[0].1,
            "higher connectivity should shorten real-paths and cut cost"
        );
    }
}
