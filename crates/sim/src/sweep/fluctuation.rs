//! Fig. 6(f): impact of the VNF price fluctuation ratio.
//!
//! "We gradually change the VNF fluctuation ratio from 5% to 50% …
//! when the VNF price fluctuation ratio is rising, the cost gap between
//! the MINV and our algorithms becomes narrow" (MINV always grabs the
//! cheapest instances, which pays off when prices spread out).

use super::{paper_algos, sweep, SweepResult};
use crate::config::SimConfig;

/// The paper's x grid: fluctuation ratios 5%..50%.
pub const FLUCTUATIONS: [f64; 6] = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5];

/// Runs the Fig. 6(f) sweep on the paper's grid.
pub fn fig6f(base: &SimConfig) -> SweepResult {
    fig6f_on(base, &FLUCTUATIONS)
}

/// Runs the Fig. 6(f) sweep on a custom grid.
pub fn fig6f_on(base: &SimConfig, xs: &[f64]) -> SweepResult {
    sweep(
        "fig6f",
        "VNF price fluctuation ratio",
        base,
        xs,
        |cfg, x| cfg.vnf_price_fluctuation = x,
        |_| paper_algos(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbbe_never_worse_than_minv() {
        let base = SimConfig {
            network_size: 60,
            runs: 8,
            sfc_size: 4,
            ..SimConfig::default()
        };
        let r = fig6f_on(&base, &[0.05, 0.5]);
        for p in &r.points {
            let mbbe = p.mean_cost("MBBE").unwrap();
            let minv = p.mean_cost("MINV").unwrap();
            assert!(
                mbbe <= minv + 1e-9,
                "MBBE {mbbe:.3} worse than MINV {minv:.3} at x={}",
                p.x
            );
        }
    }
}
