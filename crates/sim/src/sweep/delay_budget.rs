//! Fig. 6-style extension: impact of the end-to-end delay budget.
//!
//! Not a figure of the source paper (which embeds best-effort); this
//! sweep attaches a per-flow delay budget and varies it from tight to
//! effectively unconstrained while keeping every other knob at the basic
//! configuration. Tight budgets force the LARAC-repaired search onto
//! faster (and usually pricier) routes or reject the request outright,
//! so cost and deadline-failure counts both trend down as the budget
//! loosens.

use super::{paper_algos_no_bbe, sweep, SweepResult};
use crate::config::{SimConfig, DEFAULT_LINK_DELAY_US};

/// Delay budgets (µs) from tight to effectively unconstrained, scaled to
/// the generator's default 10 µs mean link delay.
pub const DELAY_BUDGETS: [f64; 6] = [40.0, 60.0, 80.0, 120.0, 200.0, 400.0];

/// Runs the delay-budget sweep on the default grid.
pub fn delay_sweep(base: &SimConfig) -> SweepResult {
    delay_sweep_on(base, &DELAY_BUDGETS)
}

/// Runs the delay-budget sweep on a custom grid. The base's mean link
/// delay is pinned to the generator default so the x grid keeps its
/// meaning regardless of the caller's profile.
pub fn delay_sweep_on(base: &SimConfig, xs: &[f64]) -> SweepResult {
    sweep(
        "delay_budget",
        "end-to-end delay budget (us)",
        base,
        xs,
        |cfg, x| {
            cfg.link_delay_us = Some(cfg.link_delay_us.unwrap_or(DEFAULT_LINK_DELAY_US));
            cfg.delay_budget_us = Some(x);
        },
        |_| paper_algos_no_bbe(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::csv;
    use crate::sweep::sweep_serial;

    fn base() -> SimConfig {
        SimConfig {
            network_size: 50,
            runs: 8,
            sfc_size: 4,
            ..SimConfig::default()
        }
    }

    #[test]
    fn loose_budget_recovers_best_effort_behaviour() {
        // With an effectively unconstrained budget the sweep point must
        // match the same instance run without any budget at all.
        let b = base();
        let constrained = delay_sweep_on(&b, &[1e12]);
        let mut free = b.clone();
        free.seed = b.seed.wrapping_add(1); // same reseed as point 0
        free.link_delay_us = Some(DEFAULT_LINK_DELAY_US);
        let reference = crate::runner::run_instance(&free, &paper_algos_no_bbe());
        let point = &constrained.points[0];
        for (a, r) in point.algos.iter().zip(&reference.algos) {
            assert_eq!(a.name, r.name);
            assert_eq!(a.successes, r.successes, "{}", a.name);
            assert_eq!(a.deadline_failures, 0, "{}", a.name);
            if a.successes > 0 {
                assert!((a.cost.mean - r.cost.mean).abs() < 1e-12, "{}", a.name);
            }
        }
    }

    #[test]
    fn tight_budgets_reject_and_loosening_admits() {
        let r = delay_sweep_on(&base(), &[20.0, 1e12]);
        let tight = &r.points[0];
        let loose = &r.points[1];
        let t = tight.algos.iter().find(|a| a.name == "MBBE").unwrap();
        let l = loose.algos.iter().find(|a| a.name == "MBBE").unwrap();
        assert!(
            t.deadline_failures > 0,
            "a 20 us budget over 10 us links must reject some requests"
        );
        assert!(t.deadline_failures <= t.failures);
        assert_eq!(l.deadline_failures, 0);
        assert!(l.successes >= t.successes, "loosening must not lose admits");
    }

    #[test]
    fn csv_is_byte_stable_and_matches_serial_reference() {
        let b = base();
        let xs = [60.0, 200.0];
        let set = |cfg: &mut SimConfig, x: f64| {
            cfg.link_delay_us = Some(cfg.link_delay_us.unwrap_or(DEFAULT_LINK_DELAY_US));
            cfg.delay_budget_us = Some(x);
        };
        let a = delay_sweep_on(&b, &xs);
        let c = delay_sweep_on(&b, &xs);
        let s = sweep_serial(
            "delay_budget",
            "end-to-end delay budget (us)",
            &b,
            &xs,
            set,
            |_| paper_algos_no_bbe(),
        );
        assert_eq!(csv(&a), csv(&c), "parallel sweep must be run-to-run stable");
        assert_eq!(
            csv(&a),
            csv(&s),
            "parallel sweep must match serial reference"
        );
    }
}
