//! Fig. 6(e): impact of the price ratio between links and VNFs.
//!
//! "We change the price ratio from 1% to 50% while keeping other
//! configurations the same."

use super::{paper_algos, sweep, SweepResult};
use crate::config::SimConfig;

/// The paper's x grid: average price ratios 1%..50%.
pub const PRICE_RATIOS: [f64; 7] = [0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5];

/// Runs the Fig. 6(e) sweep on the paper's grid.
pub fn fig6e(base: &SimConfig) -> SweepResult {
    fig6e_on(base, &PRICE_RATIOS)
}

/// Runs the Fig. 6(e) sweep on a custom grid.
pub fn fig6e_on(base: &SimConfig, xs: &[f64]) -> SweepResult {
    sweep(
        "fig6e",
        "average price ratio (link/VNF)",
        base,
        xs,
        |cfg, x| cfg.avg_price_ratio = x,
        |_| paper_algos(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_grows_with_link_price_and_gap_widens() {
        let base = SimConfig {
            network_size: 60,
            runs: 8,
            sfc_size: 4,
            ..SimConfig::default()
        };
        let r = fig6e_on(&base, &[0.05, 0.5]);
        let mbbe = r.series("MBBE");
        let ranv = r.series("RANV");
        assert!(mbbe[1].1 > mbbe[0].1, "pricier links must raise cost");
        // The absolute gap to RANV expands as links get pricier.
        let gap_lo = ranv[0].1 - mbbe[0].1;
        let gap_hi = ranv[1].1 - mbbe[1].1;
        assert!(gap_hi > gap_lo, "gap {gap_lo:.3} → {gap_hi:.3} must widen");
    }
}
