//! §4.5 complexity claim: MBBE cuts BBE's computation time without an
//! apparent cost degradation.
//!
//! Sweeps the SFC size within BBE's practical range and reports mean
//! solve times and mean costs for both, plus the baselines for scale.

use super::{paper_algos, sweep, SweepResult};
use crate::config::SimConfig;

/// Default grid: SFC sizes within BBE's practical range.
pub const RUNTIME_SIZES: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];

/// Runs the runtime sweep on the default grid.
pub fn runtime_sweep(base: &SimConfig) -> SweepResult {
    runtime_sweep_on(base, &RUNTIME_SIZES)
}

/// Runs the runtime sweep on a custom grid.
pub fn runtime_sweep_on(base: &SimConfig, xs: &[f64]) -> SweepResult {
    sweep(
        "runtime",
        "SFC size",
        base,
        xs,
        |cfg, x| cfg.sfc_size = x as usize,
        |_| paper_algos(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbbe_cheap_and_close_to_bbe() {
        let base = SimConfig {
            network_size: 60,
            runs: 6,
            ..SimConfig::default()
        };
        let r = runtime_sweep_on(&base, &[4.0]);
        let p = &r.points[0];
        let bbe = p.algos.iter().find(|a| a.name == "BBE").unwrap();
        let mbbe = p.algos.iter().find(|a| a.name == "MBBE").unwrap();
        // §4.5: no apparent performance degradation.
        assert!(
            mbbe.cost.mean <= bbe.cost.mean * 1.10 + 1e-9,
            "MBBE {:.3} strays >10% above BBE {:.3}",
            mbbe.cost.mean,
            bbe.cost.mean
        );
        // And it explores far fewer candidates.
        assert!(
            mbbe.mean_explored <= bbe.mean_explored,
            "MBBE explored {} > BBE {}",
            mbbe.mean_explored,
            bbe.mean_explored
        );
    }
}
