//! Solution-quality experiment — absolute optimality gaps.
//!
//! The paper compares heuristics against each other; this extension
//! anchors them absolutely, two ways:
//!
//! * on **small** instances, against the certified optimum from the
//!   exact branch-and-bound solver;
//! * at **any** scale, against the certified lower bound of
//!   `dagsfc_core::bounds` (so the reported ratio *upper-bounds* the
//!   true approximation factor).

use crate::config::SimConfig;
use crate::runner::{instance_network, instance_request, Algo};
use dagsfc_core::bounds::cost_lower_bound;
use dagsfc_core::solvers::{ExactSolver, Solver};
use serde::Serialize;

/// Per-algorithm quality aggregate.
#[derive(Debug, Clone, Serialize)]
pub struct QualityRow {
    /// Algorithm name.
    pub name: &'static str,
    /// Mean cost / exact-optimum ratio (small instances; `None` when the
    /// exact solver was not run or never finished).
    pub mean_vs_optimum: Option<f64>,
    /// Mean cost / lower-bound ratio.
    pub mean_vs_bound: f64,
    /// Runs measured.
    pub runs: usize,
}

/// Measures quality ratios over `cfg.runs` requests.
///
/// Set `with_exact` only on small configurations (≤ ~12 nodes, short
/// chains); the exact solver is exponential.
pub fn quality_experiment(cfg: &SimConfig, algos: &[Algo], with_exact: bool) -> Vec<QualityRow> {
    let net = instance_network(cfg);
    let mut sums_opt: Vec<f64> = vec![0.0; algos.len()];
    let mut sums_lb: Vec<f64> = vec![0.0; algos.len()];
    let mut counted: Vec<usize> = vec![0; algos.len()];
    let mut opt_counted: Vec<usize> = vec![0; algos.len()];

    for run in 0..cfg.runs {
        let (sfc, flow) = instance_request(cfg, &net, run);
        let Some(lb) = cost_lower_bound(&net, &sfc, &flow) else {
            continue;
        };
        let optimum = if with_exact {
            ExactSolver::with_k(6)
                .solve(&net, &sfc, &flow)
                .ok()
                .map(|o| o.cost.total())
        } else {
            None
        };
        for (ai, &algo) in algos.iter().enumerate() {
            let solver = algo.build(cfg.seed ^ run as u64);
            if let Ok(out) = solver.solve(&net, &sfc, &flow) {
                sums_lb[ai] += out.cost.total() / lb.total();
                counted[ai] += 1;
                if let Some(opt) = optimum {
                    sums_opt[ai] += out.cost.total() / opt;
                    opt_counted[ai] += 1;
                }
            }
        }
    }

    algos
        .iter()
        .enumerate()
        .map(|(ai, &algo)| QualityRow {
            name: algo.name(),
            mean_vs_optimum: (opt_counted[ai] > 0).then(|| sums_opt[ai] / opt_counted[ai] as f64),
            mean_vs_bound: if counted[ai] == 0 {
                f64::NAN
            } else {
                sums_lb[ai] / counted[ai] as f64
            },
            runs: counted[ai],
        })
        .collect()
}

/// ASCII rendering.
pub fn quality_table(rows: &[QualityRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "== solution quality — mean ratios (lower is better) =="
    )
    .ok();
    writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>6}",
        "algo", "vs optimum", "vs bound", "runs"
    )
    .ok();
    for r in rows {
        writeln!(
            out,
            "{:>8} {:>12} {:>12.3} {:>6}",
            r.name,
            r.mean_vs_optimum
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "-".into()),
            r.mean_vs_bound,
            r.runs
        )
        .ok();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_instance_optimality_gaps() {
        let cfg = SimConfig {
            network_size: 9,
            connectivity: 4.0,
            vnf_kinds: 4,
            sfc_size: 2,
            runs: 5,
            vnf_deploy_ratio: 0.6,
            ..SimConfig::default()
        };
        let rows = quality_experiment(&cfg, &[Algo::Mbbe, Algo::Bbe, Algo::Minv], true);
        for r in &rows {
            assert!(r.runs > 0, "{} never ran", r.name);
            // No heuristic beats the optimum; bound never exceeds cost.
            if let Some(v) = r.mean_vs_optimum {
                assert!(v >= 1.0 - 1e-9, "{}: ratio vs optimum {v}", r.name);
            }
            assert!(r.mean_vs_bound >= 1.0 - 1e-9);
        }
        // BBE should be within a few percent of optimal on 9-node nets.
        let bbe = rows.iter().find(|r| r.name == "BBE").unwrap();
        assert!(
            bbe.mean_vs_optimum.unwrap() < 1.15,
            "BBE gap {:?} too large",
            bbe.mean_vs_optimum
        );
        // MINV is the weakest of the three.
        let minv = rows.iter().find(|r| r.name == "MINV").unwrap();
        assert!(minv.mean_vs_optimum.unwrap() >= bbe.mean_vs_optimum.unwrap() - 1e-9);
    }

    #[test]
    fn bound_ratios_at_scale() {
        let cfg = SimConfig {
            network_size: 60,
            runs: 6,
            sfc_size: 4,
            ..SimConfig::default()
        };
        let rows = quality_experiment(&cfg, &[Algo::Mbbe, Algo::Ranv], false);
        let mbbe = &rows[0];
        let ranv = &rows[1];
        assert!(mbbe.mean_vs_optimum.is_none());
        assert!(mbbe.mean_vs_bound >= 1.0);
        assert!(
            mbbe.mean_vs_bound < ranv.mean_vs_bound,
            "MBBE must sit closer to the bound than RANV"
        );
    }

    #[test]
    fn table_renders() {
        let rows = vec![QualityRow {
            name: "MBBE",
            mean_vs_optimum: Some(1.02),
            mean_vs_bound: 1.4,
            runs: 10,
        }];
        let t = quality_table(&rows);
        assert!(t.contains("MBBE"));
        assert!(t.contains("1.020"));
    }
}
