//! Topology robustness — an extension beyond the paper.
//!
//! The paper evaluates on uniform random graphs only. This sweep replays
//! the same comparison on structured substrates (ring, grid/torus,
//! fat-tree, Waxman, Barabási–Albert) to check that the algorithm
//! ordering — MBBE ≈ BBE below the baselines — is a property of the
//! *algorithms*, not of the random-graph model.

use crate::config::SimConfig;
use crate::runner::{run_instance_on, Algo, AlgoResult};
use dagsfc_net::analysis::{analyze, GraphMetrics};
use dagsfc_net::topologies::{build, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// One topology's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct TopologyPoint {
    /// Topology label ("ring", "torus", "fat-tree", …).
    pub label: &'static str,
    /// Node count actually built.
    pub nodes: usize,
    /// Structural metrics of the substrate.
    pub metrics: GraphMetrics,
    /// Per-algorithm aggregates.
    pub algos: Vec<AlgoResult>,
}

/// The default battery of structured topologies, sized near `n` nodes.
pub fn default_battery(n: usize) -> Vec<(&'static str, Topology)> {
    let side = (n as f64).sqrt().ceil() as usize;
    vec![
        ("ring", Topology::Ring { n }),
        (
            "torus",
            Topology::Grid {
                rows: side.max(3),
                cols: side.max(3),
                wrap: true,
            },
        ),
        ("fat-tree", Topology::FatTree { k: 6 }), // 9 + 36 = 45 nodes
        (
            "waxman",
            Topology::Waxman {
                n,
                alpha: 0.8,
                beta: 0.25,
            },
        ),
        ("scale-free", Topology::BarabasiAlbert { n, m: 3 }),
    ]
}

/// Runs the algorithm comparison over every topology in `battery`.
pub fn topology_sweep(
    base: &SimConfig,
    algos: &[Algo],
    battery: &[(&'static str, Topology)],
) -> Vec<TopologyPoint> {
    battery
        .iter()
        .map(|&(label, topology)| {
            let mut cfg = base.clone();
            cfg.network_size = topology.node_count();
            let net = build(
                topology,
                &cfg.net_gen(),
                &mut StdRng::seed_from_u64(cfg.seed),
            )
            // lint:allow(expect) — invariant: valid topology parameters
            .expect("valid topology parameters");
            let result = run_instance_on(&cfg, &net, algos);
            TopologyPoint {
                label,
                nodes: net.node_count(),
                metrics: analyze(&net),
                algos: result.algos,
            }
        })
        .collect()
}

/// ASCII rendering of a topology sweep.
pub fn topology_table(points: &[TopologyPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "== topology robustness — mean embedding cost per substrate =="
    )
    .ok();
    write!(
        out,
        "{:>12} {:>6} {:>5} {:>6}",
        "topology", "nodes", "diam", "deg"
    )
    .ok();
    if let Some(first) = points.first() {
        for a in &first.algos {
            write!(out, "{:>10}", a.name).ok();
        }
    }
    writeln!(out).ok();
    for p in points {
        write!(
            out,
            "{:>12} {:>6} {:>5} {:>6.1}",
            p.label,
            p.nodes,
            p.metrics
                .diameter
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
            p.metrics.avg_degree
        )
        .ok();
        for a in &p.algos {
            if a.successes > 0 {
                write!(out, "{:>10.3}", a.cost.mean).ok();
            } else {
                write!(out, "{:>10}", "-").ok();
            }
        }
        writeln!(out).ok();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimConfig {
        SimConfig {
            network_size: 36,
            runs: 5,
            sfc_size: 4,
            ..SimConfig::default()
        }
    }

    #[test]
    fn battery_builds_and_orders_hold() {
        let points = topology_sweep(&base(), &[Algo::Mbbe, Algo::Minv], &default_battery(36));
        assert_eq!(points.len(), 5);
        for p in &points {
            let mbbe = p.algos.iter().find(|a| a.name == "MBBE").unwrap();
            let minv = p.algos.iter().find(|a| a.name == "MINV").unwrap();
            assert!(mbbe.successes > 0, "{}: MBBE never succeeded", p.label);
            // The paper's ordering must hold on every substrate.
            assert!(
                mbbe.cost.mean <= minv.cost.mean + 1e-9,
                "{}: MBBE {} worse than MINV {}",
                p.label,
                mbbe.cost.mean,
                minv.cost.mean
            );
            assert!(p.metrics.diameter.is_some(), "{} disconnected", p.label);
        }
    }

    #[test]
    fn table_renders_every_row() {
        let points = topology_sweep(&base(), &[Algo::Minv], &default_battery(25)[..2]);
        let t = topology_table(&points);
        assert!(t.contains("ring"));
        assert!(t.contains("torus"));
        assert_eq!(t.lines().count(), 2 + points.len());
    }

    #[test]
    fn ring_costs_exceed_torus_costs() {
        // Rings have huge diameters → long real-paths → higher link
        // cost than the well-connected torus at equal node count.
        let points = topology_sweep(
            &base(),
            &[Algo::Mbbe],
            &[
                ("ring", Topology::Ring { n: 36 }),
                (
                    "torus",
                    Topology::Grid {
                        rows: 6,
                        cols: 6,
                        wrap: true,
                    },
                ),
            ],
        );
        let cost = |label: &str| {
            points.iter().find(|p| p.label == label).unwrap().algos[0]
                .cost
                .mean
        };
        assert!(
            cost("ring") > cost("torus"),
            "ring {} should exceed torus {}",
            cost("ring"),
            cost("torus")
        );
    }
}
