//! Exhaustive trace auditing: replay a frozen [`ReplayTrace`] and run
//! the solver-independent constraint auditor over **every** accepted
//! embedding (the lifecycle itself only samples — see
//! [`crate::lifecycle::AUDIT_SAMPLE_INTERVAL`]).
//!
//! The replay follows the exact event order of [`run_trace`]: before
//! arrival `i`, every departure with time `≤ i` fires (ties by
//! ascending arrival index), then arrival `i` is offered over the
//! ledger's residual. Each accepted embedding is audited against that
//! residual — the network state the solver actually saw — so capacity
//! findings reflect the online constraints, not the empty network.

use crate::departures::DepartureQueue;
use crate::lifecycle::{arrival_seed, embed_and_commit, run_trace, ReplayTrace};
use crate::runner::instance_request;
use dagsfc_audit::{ConstraintAuditor, Violation};
use dagsfc_net::{CommitLedger, LeaseId, Network};
use serde::Serialize;

/// The auditor's findings for one accepted arrival.
#[derive(Debug, Clone, Serialize)]
pub struct ArrivalAudit {
    /// Arrival index within the trace.
    pub arrival: usize,
    /// Objective cost the solver reported for this embedding.
    pub reported_cost: f64,
    /// The constraint violations found (non-empty by construction).
    pub violations: Vec<Violation>,
}

/// Aggregate outcome of an exhaustive trace audit.
#[derive(Debug, Clone, Serialize)]
pub struct TraceAuditOutcome {
    /// Algorithm the trace ran.
    pub algo: &'static str,
    /// Arrivals offered.
    pub arrivals: usize,
    /// Requests embedded (each one audited).
    pub accepted: usize,
    /// Requests rejected (nothing to audit).
    pub rejected: usize,
    /// Audited embeddings with zero violations.
    pub clean: usize,
    /// Largest |recomputed − reported| objective gap over clean audits —
    /// must stay within the auditor's cost tolerance.
    pub max_cost_drift: f64,
    /// Per-arrival findings for every audit that was *not* clean.
    pub findings: Vec<ArrivalAudit>,
}

impl TraceAuditOutcome {
    /// True when every accepted embedding passed every constraint check.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Replays `trace` against `net` auditing every accepted embedding.
///
/// The event order, solver seeds, and residual-network states match
/// [`run_trace`] exactly, so a clean audit here certifies the very
/// embeddings a lifecycle run (or the serve daemon replaying the same
/// trace) commits.
pub fn audit_trace(net: &Network, trace: &ReplayTrace) -> TraceAuditOutcome {
    let auditor = ConstraintAuditor::new();
    let mut ledger = CommitLedger::new(net);
    let mut departures = DepartureQueue::new();
    let mut leases: Vec<Option<LeaseId>> = vec![None; trace.arrivals];

    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut clean = 0usize;
    let mut max_cost_drift = 0.0f64;
    let mut findings = Vec::new();

    for arrival in 0..trace.arrivals {
        let now = crate::lifecycle::to_fixed(arrival as f64);
        while let Some(id) = departures.pop_due(now) {
            // lint:allow(expect) — invariant: departs once
            let lease = leases[id].take().expect("departs once");
            // lint:allow(expect) — invariant: lease is active
            ledger.release(lease).expect("lease is active");
        }

        let (sfc, flow) = instance_request(&trace.base, net, arrival);
        let residual = ledger.residual();
        match embed_and_commit(
            &mut ledger,
            &residual,
            &sfc,
            &flow,
            trace.algo,
            arrival_seed(trace.base.seed, arrival),
        ) {
            Ok(s) => {
                let report = auditor.audit_outcome(&residual, &sfc, &flow, &s.outcome);
                if report.is_clean() {
                    clean += 1;
                    max_cost_drift =
                        max_cost_drift.max((report.recomputed.total() - s.cost.total()).abs());
                } else {
                    findings.push(ArrivalAudit {
                        arrival,
                        reported_cost: s.cost.total(),
                        violations: report.violations,
                    });
                }
                leases[arrival] = Some(s.lease);
                departures.schedule(trace.depart_at[arrival], arrival);
                accepted += 1;
            }
            Err(_) => rejected += 1,
        }
    }

    TraceAuditOutcome {
        algo: trace.algo.name(),
        arrivals: trace.arrivals,
        accepted,
        rejected,
        clean,
        max_cost_drift,
        findings,
    }
}

/// Convenience: audit a trace and cross-check its acceptance counts
/// against an ordinary [`run_trace`] replay (they share every seed, so
/// any divergence is a determinism bug).
pub fn audit_trace_checked(net: &Network, trace: &ReplayTrace) -> TraceAuditOutcome {
    let out = audit_trace(net, trace);
    let lifecycle = run_trace(net, trace);
    debug_assert_eq!(out.accepted, lifecycle.metrics.accepted);
    debug_assert_eq!(out.rejected, lifecycle.metrics.rejected);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::lifecycle::{export_trace, LifecycleConfig};
    use crate::runner::{instance_network, Algo};

    fn cfg() -> LifecycleConfig {
        LifecycleConfig {
            base: SimConfig {
                network_size: 30,
                sfc_size: 4,
                vnf_capacity: 6.0,
                link_capacity: 6.0,
                seed: 0xBEEF,
                ..SimConfig::default()
            },
            arrivals: 50,
            mean_holding: 6.0,
            algo: Algo::Mbbe,
        }
    }

    #[test]
    fn full_audit_of_a_lifecycle_trace_is_clean() {
        let cfg = cfg();
        let net = instance_network(&cfg.base);
        let trace = export_trace(&cfg);
        let out = audit_trace(&net, &trace);
        assert!(out.accepted > 0, "trace must admit something");
        assert!(out.is_clean(), "findings: {:?}", out.findings);
        assert_eq!(out.clean, out.accepted);
        assert!(
            out.max_cost_drift <= dagsfc_audit::COST_TOLERANCE,
            "cost drift {}",
            out.max_cost_drift
        );
    }

    #[test]
    fn audit_replay_matches_lifecycle_acceptance() {
        let cfg = cfg();
        let net = instance_network(&cfg.base);
        let trace = export_trace(&cfg);
        let audit = audit_trace(&net, &trace);
        let lifecycle = run_trace(&net, &trace);
        assert_eq!(audit.accepted, lifecycle.metrics.accepted);
        assert_eq!(audit.rejected, lifecycle.metrics.rejected);
    }

    #[test]
    fn outcome_serializes_for_cli_reports() {
        let cfg = cfg();
        let net = instance_network(&cfg.base);
        let out = audit_trace(&net, &export_trace(&cfg));
        let json = serde_json::to_string(&out).unwrap();
        assert!(json.contains("max_cost_drift"), "{json}");
    }
}
