//! Workload models: how flows pick their endpoints.
//!
//! The paper draws source–destination pairs uniformly. Real traffic is
//! rarely uniform — gateways and popular services concentrate demand —
//! and endpoint skew changes which links saturate first in the online
//! experiments. This module provides the standard endpoint models:
//!
//! * [`EndpointModel::Uniform`] — the paper's choice (and the default
//!   everywhere else in this workspace);
//! * [`EndpointModel::Hotspot`] — a fraction of flows terminate at a
//!   small set of hot destination nodes (service concentration);
//! * [`EndpointModel::Gravity`] — endpoints drawn proportionally to node
//!   degree (hubs attract traffic), the classic gravity model on the
//!   structural proxy available here.

use crate::config::SimConfig;
use dagsfc_core::Flow;
use dagsfc_net::{Network, NodeId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How flow endpoints are drawn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EndpointModel {
    /// Uniform over all nodes (paper §5.1 behaviour).
    Uniform,
    /// With probability `bias`, the destination is one of the `hotspots`
    /// hottest-index nodes; sources stay uniform.
    Hotspot {
        /// Number of hot destination nodes (the first `hotspots` ids).
        hotspots: usize,
        /// Probability a flow targets a hotspot.
        bias: f64,
    },
    /// Both endpoints drawn with probability proportional to
    /// `degree + 1` (the +1 keeps isolated nodes reachable).
    Gravity,
}

impl EndpointModel {
    /// Draws a flow under this model (endpoints distinct whenever the
    /// network has more than one node).
    pub fn draw<R: Rng + ?Sized>(&self, cfg: &SimConfig, net: &Network, rng: &mut R) -> Flow {
        let n = net.node_count() as u32;
        assert!(n > 0, "cannot draw endpoints from an empty network");
        let src = self.draw_node(net, rng, None);
        let dst = if n == 1 {
            src
        } else {
            loop {
                let d = self.draw_node(net, rng, Some(self.is_destination_biased()));
                if d != src {
                    break d;
                }
            }
        };
        Flow {
            src,
            dst,
            rate: cfg.rate,
            size: cfg.flow_size,
            delay_budget_us: cfg.delay_budget_us,
        }
    }

    fn is_destination_biased(&self) -> bool {
        matches!(self, EndpointModel::Hotspot { .. })
    }

    fn draw_node<R: Rng + ?Sized>(
        &self,
        net: &Network,
        rng: &mut R,
        destination: Option<bool>,
    ) -> NodeId {
        let n = net.node_count() as u32;
        match self {
            EndpointModel::Uniform => NodeId(rng.gen_range(0..n)),
            EndpointModel::Hotspot { hotspots, bias } => {
                let hot = (*hotspots).clamp(1, n as usize) as u32;
                if destination == Some(true) && rng.gen_bool(bias.clamp(0.0, 1.0)) {
                    NodeId(rng.gen_range(0..hot))
                } else {
                    NodeId(rng.gen_range(0..n))
                }
            }
            EndpointModel::Gravity => {
                let total: usize = net.node_ids().map(|v| net.degree(v) + 1).sum();
                let mut ticket = rng.gen_range(0..total);
                for v in net.node_ids() {
                    let w = net.degree(v) + 1;
                    if ticket < w {
                        return v;
                    }
                    ticket -= w;
                }
                NodeId(n - 1) // unreachable in practice
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::instance_network;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SimConfig, Network) {
        let cfg = SimConfig {
            network_size: 40,
            ..SimConfig::default()
        };
        let net = instance_network(&cfg);
        (cfg, net)
    }

    #[test]
    fn uniform_matches_paper_conventions() {
        let (cfg, net) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let f = EndpointModel::Uniform.draw(&cfg, &net, &mut rng);
            assert_ne!(f.src, f.dst);
            assert!(f.src.index() < 40 && f.dst.index() < 40);
        }
    }

    #[test]
    fn hotspot_concentrates_destinations() {
        let (cfg, net) = setup();
        let model = EndpointModel::Hotspot {
            hotspots: 3,
            bias: 0.8,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let mut hot_hits = 0;
        let draws = 400;
        for _ in 0..draws {
            let f = model.draw(&cfg, &net, &mut rng);
            if f.dst.index() < 3 {
                hot_hits += 1;
            }
        }
        // Expected ≈ bias + (1-bias)·3/40 ≈ 81.5%; uniform would give 7.5%.
        let frac = hot_hits as f64 / draws as f64;
        assert!(
            frac > 0.6,
            "hotspot bias not visible: {frac:.2} of destinations hot"
        );
    }

    #[test]
    fn gravity_prefers_hubs() {
        let (cfg, net) = setup();
        // Find the highest- and lowest-degree nodes.
        let hub = net
            .node_ids()
            .max_by_key(|&v| net.degree(v))
            .expect("non-empty");
        let leaf = net
            .node_ids()
            .min_by_key(|&v| net.degree(v))
            .expect("non-empty");
        if net.degree(hub) <= net.degree(leaf) + 2 {
            return; // degenerate draw; generator made a regular graph
        }
        let mut rng = StdRng::seed_from_u64(3);
        let (mut hub_hits, mut leaf_hits) = (0, 0);
        for _ in 0..2000 {
            let f = EndpointModel::Gravity.draw(&cfg, &net, &mut rng);
            for e in [f.src, f.dst] {
                if e == hub {
                    hub_hits += 1;
                }
                if e == leaf {
                    leaf_hits += 1;
                }
            }
        }
        assert!(
            hub_hits > leaf_hits,
            "gravity should favour the hub: hub {hub_hits} vs leaf {leaf_hits}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let (cfg, net) = setup();
        let model = EndpointModel::Gravity;
        let a = model.draw(&cfg, &net, &mut StdRng::seed_from_u64(9));
        let b = model.draw(&cfg, &net, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.src, b.src);
        assert_eq!(a.dst, b.dst);
    }

    #[test]
    fn single_node_network_degenerates_gracefully() {
        let cfg = SimConfig {
            network_size: 1,
            connectivity: 0.0,
            ..SimConfig::default()
        };
        let net = instance_network(&cfg);
        let f = EndpointModel::Uniform.draw(&cfg, &net, &mut StdRng::seed_from_u64(0));
        assert_eq!(f.src, f.dst);
    }
}
