//! # dagsfc-sim — the paper's evaluation harness
//!
//! Reproduces the simulation study of §5: the Table 2 basic
//! configuration ([`SimConfig`]), the random SFC generator
//! ([`sfcgen`]), the 100-runs-per-instance protocol ([`runner`]), and
//! the six parameter sweeps behind Fig. 6(a)–(f) plus the §4.5 runtime
//! comparison ([`sweep`]). Results render as ASCII tables or CSV
//! ([`report`]).
//!
//! ```no_run
//! use dagsfc_sim::{report, sweep, SimConfig};
//!
//! let base = SimConfig::quick();
//! let fig = sweep::fig6c(&base);
//! println!("{}", report::ascii_table(&fig));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod config;
pub mod departures;
pub mod io;
pub mod lifecycle;
pub mod online;
pub mod report;
pub mod runner;
pub mod sfcgen;
pub mod stats;
pub mod sweep;
pub mod trace;
pub mod workload;

pub use audit::{audit_trace, audit_trace_checked, ArrivalAudit, TraceAuditOutcome};
pub use config::SimConfig;
pub use departures::DepartureQueue;
pub use lifecycle::{
    arrival_seed, embed_and_commit, export_trace, run_lifecycle, run_lifecycle_detailed, run_trace,
    ArrivalOutcome, EmbedRejection, EmbedSuccess, LifecycleConfig, LifecycleMetrics,
    LifecycleOutcome, ReplayTrace,
};
pub use online::{acceptance_sweep, run_online, OnlineConfig, OnlineMetrics};
pub use runner::{run_instance, run_instances_with_threads, Algo, AlgoResult, InstanceResult};
pub use stats::Summary;
pub use sweep::{SweepPoint, SweepResult};
pub use trace::{head_to_head, trace_instance, AlgoTrace, Percentiles, RunRecord};
pub use workload::EndpointModel;
