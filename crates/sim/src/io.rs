//! Instance and result persistence (JSON).
//!
//! Reproducibility plumbing: generated networks, full embedding
//! instances (network + chain + flow), and sweep results can be saved
//! to disk and reloaded, so a published experiment can ship its exact
//! inputs. JSON via `serde_json` (justified in DESIGN.md: results and
//! instances need a portable interchange format; everything else in the
//! workspace stays dependency-light).

use crate::config::SimConfig;
use crate::sweep::SweepResult;
use dagsfc_core::{CostBreakdown, DagSfc, Embedding, Flow};
use dagsfc_net::Network;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::Path;

/// A self-contained embedding instance: everything a solver needs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedInstance {
    /// Version tag for forward compatibility.
    pub format_version: u32,
    /// The configuration that generated the instance (provenance).
    pub config: SimConfig,
    /// The target network.
    pub network: Network,
    /// The chain to embed.
    pub sfc: DagSfc,
    /// The flow to carry.
    pub flow: Flow,
}

/// Current on-disk format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors from instance I/O.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io(io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// The file's format version is unsupported.
    UnsupportedVersion(u32),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

/// Saves an instance as pretty JSON.
pub fn save_instance(path: &Path, instance: &SavedInstance) -> Result<(), IoError> {
    let json = serde_json::to_string_pretty(instance)?;
    fs::write(path, json)?;
    Ok(())
}

/// Loads an instance, checking the format version.
pub fn load_instance(path: &Path) -> Result<SavedInstance, IoError> {
    let data = fs::read_to_string(path)?;
    let instance: SavedInstance = serde_json::from_str(&data)?;
    if instance.format_version != FORMAT_VERSION {
        return Err(IoError::UnsupportedVersion(instance.format_version));
    }
    Ok(instance)
}

/// Saves a network alone (e.g. for DOT-less visualization pipelines).
pub fn save_network(path: &Path, net: &Network) -> Result<(), IoError> {
    fs::write(path, serde_json::to_string_pretty(net)?)?;
    Ok(())
}

/// Loads a network saved by [`save_network`].
pub fn load_network(path: &Path) -> Result<Network, IoError> {
    Ok(serde_json::from_str(&fs::read_to_string(path)?)?)
}

/// Saves a sweep result as JSON (CSV/ASCII renderings live in
/// [`crate::report`]).
pub fn save_sweep(path: &Path, sweep: &SweepResult) -> Result<(), IoError> {
    fs::write(path, serde_json::to_string_pretty(sweep)?)?;
    Ok(())
}

/// Saves a replay trace (see [`crate::lifecycle::ReplayTrace`]) as
/// pretty JSON.
pub fn save_trace(path: &Path, trace: &crate::lifecycle::ReplayTrace) -> Result<(), IoError> {
    fs::write(path, serde_json::to_string_pretty(trace)?)?;
    Ok(())
}

/// Loads a replay trace saved by [`save_trace`], checking the version.
pub fn load_trace(path: &Path) -> Result<crate::lifecycle::ReplayTrace, IoError> {
    let trace: crate::lifecycle::ReplayTrace = serde_json::from_str(&fs::read_to_string(path)?)?;
    if trace.format_version != crate::lifecycle::TRACE_FORMAT_VERSION {
        return Err(IoError::UnsupportedVersion(trace.format_version));
    }
    Ok(trace)
}

/// A solved instance: the embedding a solver produced, with provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedSolution {
    /// Version tag for forward compatibility.
    pub format_version: u32,
    /// Name of the algorithm that produced the embedding.
    pub solver: String,
    /// The embedding itself.
    pub embedding: Embedding,
    /// Its objective value at save time.
    pub cost: CostBreakdown,
}

/// Saves a solver's solution next to its instance.
pub fn save_solution(path: &Path, solution: &SavedSolution) -> Result<(), IoError> {
    fs::write(path, serde_json::to_string_pretty(solution)?)?;
    Ok(())
}

/// Loads a solution saved by [`save_solution`], checking the version.
pub fn load_solution(path: &Path) -> Result<SavedSolution, IoError> {
    let solution: SavedSolution = serde_json::from_str(&fs::read_to_string(path)?)?;
    if solution.format_version != FORMAT_VERSION {
        return Err(IoError::UnsupportedVersion(solution.format_version));
    }
    Ok(solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Algo;
    use crate::runner::{instance_network, instance_request};
    use crate::sweep;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dagsfc-io-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::create_dir_all(&dir).expect("create tmp dir");
        dir
    }

    fn instance() -> SavedInstance {
        let cfg = SimConfig {
            network_size: 20,
            sfc_size: 3,
            ..SimConfig::default()
        };
        let network = instance_network(&cfg);
        let (sfc, flow) = instance_request(&cfg, &network, 0);
        SavedInstance {
            format_version: FORMAT_VERSION,
            config: cfg,
            network,
            sfc,
            flow,
        }
    }

    #[test]
    fn instance_roundtrip() {
        let dir = tmpdir();
        let path = dir.join("instance.json");
        let inst = instance();
        save_instance(&path, &inst).unwrap();
        let loaded = load_instance(&path).unwrap();
        assert_eq!(loaded.sfc, inst.sfc);
        assert_eq!(loaded.flow, inst.flow);
        assert_eq!(loaded.network.node_count(), inst.network.node_count());
        assert_eq!(loaded.network.link_count(), inst.network.link_count());
        // Loaded network answers the same queries.
        for l in inst.network.link_ids() {
            assert_eq!(inst.network.link(l), loaded.network.link(l));
        }
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn loaded_instance_is_solvable() {
        use dagsfc_core::solvers::{MbbeSolver, Solver};
        let dir = tmpdir();
        let path = dir.join("solve.json");
        let inst = instance();
        save_instance(&path, &inst).unwrap();
        let loaded = load_instance(&path).unwrap();
        let a = MbbeSolver::new()
            .solve(&inst.network, &inst.sfc, &inst.flow)
            .unwrap();
        let b = MbbeSolver::new()
            .solve(&loaded.network, &loaded.sfc, &loaded.flow)
            .unwrap();
        assert_eq!(a.embedding, b.embedding);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn version_check() {
        let dir = tmpdir();
        let path = dir.join("old.json");
        let mut inst = instance();
        inst.format_version = 99;
        save_instance(&path, &inst).unwrap();
        assert!(matches!(
            load_instance(&path),
            Err(IoError::UnsupportedVersion(99))
        ));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn network_roundtrip() {
        let dir = tmpdir();
        let path = dir.join("net.json");
        let net = instance().network;
        save_network(&path, &net).unwrap();
        let loaded = load_network(&path).unwrap();
        assert_eq!(net.stats(), loaded.stats());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn sweep_saves() {
        let dir = tmpdir();
        let path = dir.join("sweep.json");
        let base = SimConfig {
            network_size: 20,
            runs: 2,
            sfc_size: 2,
            ..SimConfig::default()
        };
        let result = sweep::sweep(
            "fig6a",
            "SFC size",
            &base,
            &[2.0],
            |cfg, x| cfg.sfc_size = x as usize,
            |_| vec![Algo::Minv],
        );
        save_sweep(&path, &result).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"fig6a\""));
        assert!(text.contains("MINV"));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn solution_roundtrip_revalidates() {
        use dagsfc_core::solvers::{MbbeSolver, Solver};
        use dagsfc_core::validate;
        let dir = tmpdir();
        let inst = instance();
        let out = MbbeSolver::new()
            .solve(&inst.network, &inst.sfc, &inst.flow)
            .unwrap();
        let path = dir.join("solution.json");
        save_solution(
            &path,
            &SavedSolution {
                format_version: FORMAT_VERSION,
                solver: "MBBE".into(),
                embedding: out.embedding.clone(),
                cost: out.cost,
            },
        )
        .unwrap();
        let loaded = load_solution(&path).unwrap();
        assert_eq!(loaded.solver, "MBBE");
        assert_eq!(loaded.embedding, out.embedding);
        // The reloaded embedding still validates against the instance and
        // reproduces the saved cost exactly.
        let cost = validate(&inst.network, &inst.sfc, &inst.flow, &loaded.embedding).unwrap();
        assert!((cost.total() - loaded.cost.total()).abs() < 1e-12);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn trace_roundtrip() {
        use crate::lifecycle::{export_trace, LifecycleConfig};
        let dir = tmpdir();
        let path = dir.join("trace.json");
        let trace = export_trace(&LifecycleConfig {
            base: SimConfig {
                network_size: 20,
                sfc_size: 3,
                ..SimConfig::default()
            },
            arrivals: 25,
            mean_holding: 4.0,
            algo: Algo::Mbbe,
        });
        save_trace(&path, &trace).unwrap();
        let loaded = load_trace(&path).unwrap();
        assert_eq!(loaded.depart_at, trace.depart_at);
        assert_eq!(loaded.arrivals, trace.arrivals);
        assert_eq!(loaded.algo, trace.algo);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_file_errors() {
        assert!(matches!(
            load_instance(Path::new("/nonexistent/dagsfc.json")),
            Err(IoError::Io(_))
        ));
    }
}
