//! Rendering sweep results as ASCII tables and CSV.
//!
//! The tables mirror the series of the paper's figures: one row per
//! x-point, one column per algorithm (mean embedding cost over the
//! successful runs), plus success counts so baseline failures — which
//! the paper remarks on — stay visible.

use crate::sweep::SweepResult;
use std::fmt::Write as _;

/// Algorithm column order used by all reports.
pub const ALGO_ORDER: [&str; 7] = ["MBBE", "MBBE-ST", "BBE", "GRASP", "MINV", "RANV", "EXACT"];

fn present_algos(result: &SweepResult) -> Vec<&'static str> {
    ALGO_ORDER
        .into_iter()
        .filter(|name| {
            result
                .points
                .iter()
                .any(|p| p.algos.iter().any(|a| a.name == *name))
        })
        .collect()
}

/// Renders a sweep as a fixed-width ASCII table of mean costs.
pub fn ascii_table(result: &SweepResult) -> String {
    let algos = present_algos(result);
    let mut out = String::new();
    writeln!(
        out,
        "== {} — mean embedding cost vs {} ==",
        result.id, result.x_label
    )
    .ok();
    write!(out, "{:>12}", result.x_label_short()).ok();
    for a in &algos {
        write!(out, "{a:>12}").ok();
    }
    writeln!(out).ok();
    for p in &result.points {
        write!(out, "{:>12}", trim_float(p.x)).ok();
        for a in &algos {
            match p.mean_cost(a) {
                Some(c) => write!(out, "{c:>12.3}").ok(),
                None => write!(out, "{:>12}", "-").ok(),
            };
        }
        writeln!(out).ok();
    }
    out
}

/// Renders a sweep as CSV: `x,<algo>_mean,<algo>_ok,...` per point.
pub fn csv(result: &SweepResult) -> String {
    let algos = present_algos(result);
    let mut out = String::from("x");
    for a in &algos {
        write!(
            out,
            ",{}_mean_cost,{}_successes",
            a.to_lowercase(),
            a.to_lowercase()
        )
        .ok();
    }
    out.push('\n');
    for p in &result.points {
        write!(out, "{}", trim_float(p.x)).ok();
        for a in &algos {
            let entry = p.algos.iter().find(|r| r.name == *a);
            match entry {
                Some(r) if r.successes > 0 => {
                    write!(out, ",{:.6},{}", r.cost.mean, r.successes).ok()
                }
                Some(r) => write!(out, ",,{}", r.successes).ok(),
                None => {
                    out.push_str(",,");
                    None
                }
            };
        }
        out.push('\n');
    }
    out
}

/// Renders a sweep as a GitHub-flavored markdown table (the format used
/// by EXPERIMENTS.md).
pub fn markdown(result: &SweepResult) -> String {
    let algos = present_algos(result);
    let mut out = String::new();
    write!(out, "| {} |", result.x_label).ok();
    for a in &algos {
        write!(out, " {a} |").ok();
    }
    out.push('\n');
    write!(out, "|---:|").ok();
    for _ in &algos {
        out.push_str("---:|");
    }
    out.push('\n');
    for p in &result.points {
        write!(out, "| {} |", trim_float(p.x)).ok();
        for a in &algos {
            match p.mean_cost(a) {
                Some(c) => {
                    write!(out, " {c:.2} |").ok();
                }
                None => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders the runtime view: mean solve time (µs) per algorithm.
pub fn runtime_table(result: &SweepResult) -> String {
    let algos = present_algos(result);
    let mut out = String::new();
    writeln!(
        out,
        "== {} — mean solve time (µs) vs {} ==",
        result.id, result.x_label
    )
    .ok();
    write!(out, "{:>12}", result.x_label_short()).ok();
    for a in &algos {
        write!(out, "{a:>12}").ok();
    }
    writeln!(out).ok();
    for p in &result.points {
        write!(out, "{:>12}", trim_float(p.x)).ok();
        for a in &algos {
            match p.algos.iter().find(|r| r.name == *a) {
                Some(r) => write!(out, "{:>12.1}", r.mean_elapsed.as_secs_f64() * 1e6).ok(),
                None => write!(out, "{:>12}", "-").ok(),
            };
        }
        writeln!(out).ok();
    }
    out
}

/// Renders the instrumentation view: per-algorithm shortest-path cache
/// hit rate and mean candidate counts, plus the shared oracle's hit rate
/// for the whole point (all algorithms pooled).
pub fn instrumentation_table(result: &SweepResult) -> String {
    let algos = present_algos(result);
    let mut out = String::new();
    writeln!(
        out,
        "== {} — path-cache hit rate (%) vs {} ==",
        result.id, result.x_label
    )
    .ok();
    write!(out, "{:>12}", result.x_label_short()).ok();
    for a in &algos {
        write!(out, "{a:>12}").ok();
    }
    write!(out, "{:>12}{:>14}", "oracle", "mean_cands").ok();
    writeln!(out).ok();
    for p in &result.points {
        write!(out, "{:>12}", trim_float(p.x)).ok();
        let mut cands = 0.0;
        for a in &algos {
            match p.algos.iter().find(|r| r.name == *a) {
                Some(r) => {
                    cands += r.mean_candidates_generated;
                    write!(out, "{:>12.1}", r.cache_hit_rate * 100.0).ok()
                }
                None => write!(out, "{:>12}", "-").ok(),
            };
        }
        write!(out, "{:>12.1}{cands:>14.1}", p.oracle.hit_rate * 100.0).ok();
        writeln!(out).ok();
    }
    out
}

impl SweepResult {
    fn x_label_short(&self) -> &'static str {
        match self.id {
            "fig6a" | "runtime" => "sfc_size",
            "fig6b" => "nodes",
            "fig6c" => "degree",
            "fig6d" => "deploy",
            "fig6e" => "ratio",
            "fig6f" => "fluct",
            _ => "x",
        }
    }
}

fn trim_float(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::runner::Algo;
    use crate::sweep::sweep;

    fn tiny_sweep() -> SweepResult {
        let base = SimConfig {
            network_size: 25,
            runs: 3,
            sfc_size: 3,
            ..SimConfig::default()
        };
        sweep(
            "fig6a",
            "SFC size",
            &base,
            &[2.0, 3.0],
            |cfg, x| cfg.sfc_size = x as usize,
            |_| vec![Algo::Mbbe, Algo::Minv],
        )
    }

    #[test]
    fn ascii_table_contains_all_points_and_algos() {
        let r = tiny_sweep();
        let t = ascii_table(&r);
        assert!(t.contains("fig6a"));
        let header: Vec<&str> = t.lines().nth(1).unwrap().split_whitespace().collect();
        assert!(header.contains(&"MBBE"));
        assert!(header.contains(&"MINV"));
        assert!(
            !header.contains(&"BBE"),
            "absent algorithms must not appear"
        );
        assert_eq!(t.lines().count(), 2 + r.points.len());
    }

    #[test]
    fn csv_shape() {
        let r = tiny_sweep();
        let c = csv(&r);
        let mut lines = c.lines();
        let header = lines.next().unwrap();
        assert_eq!(
            header,
            "x,mbbe_mean_cost,mbbe_successes,minv_mean_cost,minv_successes"
        );
        for line in lines {
            assert_eq!(line.split(',').count(), 5);
        }
    }

    #[test]
    fn markdown_table_shape() {
        let r = tiny_sweep();
        let md = markdown(&r);
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 2 + r.points.len());
        assert!(lines[0].starts_with("| SFC size |"));
        assert!(lines[1].starts_with("|---:|"));
        for l in &lines[2..] {
            assert_eq!(l.matches('|').count(), 4); // x + 2 algos + borders
        }
    }

    #[test]
    fn runtime_table_reports_microseconds() {
        let r = tiny_sweep();
        let t = runtime_table(&r);
        assert!(t.contains("solve time"));
        assert!(t.lines().count() >= 3);
    }

    #[test]
    fn instrumentation_table_reports_hit_rates() {
        let r = tiny_sweep();
        let t = instrumentation_table(&r);
        assert!(t.contains("path-cache hit rate"));
        assert!(t.lines().count() >= 3);
        // Fig-6-style workloads must actually exercise the cache.
        assert!(
            r.points.iter().any(|p| p.oracle.hit_rate > 0.0),
            "expected oracle hits in {:?}",
            r.points.iter().map(|p| p.oracle).collect::<Vec<_>>()
        );
    }

    #[test]
    fn float_trimming() {
        assert_eq!(trim_float(5.0), "5");
        assert_eq!(trim_float(0.25), "0.25");
    }
}
