//! Small descriptive-statistics helpers for experiment aggregation.

use serde::{Deserialize, Serialize};

/// Summary of a sample: count, mean, standard deviation, extrema.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Sample standard deviation (0 for n < 2).
    pub std_dev: f64,
    /// Minimum (0 for an empty sample).
    pub min: f64,
    /// Maximum (0 for an empty sample).
    pub max: f64,
}

impl Summary {
    /// Summarizes a slice of observations.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary::default();
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Standard error of the mean (0 for empty samples).
    pub fn sem(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev / (self.n as f64).sqrt()
        }
    }

    /// Half-width of the ~95% confidence interval (normal approximation).
    pub fn ci95(&self) -> f64 {
        1.96 * self.sem()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarizes_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev of this classic sample is ~2.138.
        assert!((s.std_dev - 2.138089935299395).abs() < 1e-9);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn degenerate_samples() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.n, 0);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.sem(), 0.0);
        let single = Summary::of(&[3.5]);
        assert_eq!(single.n, 1);
        assert_eq!(single.mean, 3.5);
        assert_eq!(single.std_dev, 0.0);
        assert_eq!(single.min, 3.5);
        assert_eq!(single.max, 3.5);
    }
}
