//! Request lifecycles: arrivals *and departures* — an extension of the
//! online simulation ([`crate::online`]) toward a real provisioning
//! system.
//!
//! Requests arrive at unit intervals, hold their resources for an
//! exponentially distributed number of intervals, then depart and
//! release exactly what they committed. Under a fixed offered load the
//! system reaches a steady state whose acceptance ratio measures how
//! much traffic an embedding algorithm can *sustain*, not just admit
//! once — the metric cloud operators actually tune for.
//!
//! The module is built around two serving-grade primitives that
//! `dagsfc-serve` shares verbatim, so the research path and the
//! daemon's serving path cannot drift apart:
//!
//! * [`embed_and_commit`] — the per-request kernel: solve over the
//!   residual network, account the loads, and commit them atomically to
//!   a [`CommitLedger`], yielding a lease;
//! * [`ReplayTrace`] — a solver-independent arrival/departure schedule.
//!   Holding times are drawn for **every** arrival up front (accepted
//!   or not), so the schedule depends only on the seed: an external
//!   replayer that learns acceptance per-request still produces the
//!   exact event order of the in-process simulation.

use crate::config::SimConfig;
use crate::departures::DepartureQueue;
use crate::runner::{instance_network, instance_request, Algo};
use dagsfc_audit::ConstraintAuditor;
use dagsfc_core::solvers::{SolveOutcome, SolverStats};
use dagsfc_core::{CostBreakdown, DagSfc, Flow, ModelError, SolveError};
use dagsfc_net::{CommitLedger, LeaseId, LinkId, NetError, Network};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of a lifecycle simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LifecycleConfig {
    /// Network/chain/flow parameters (finite capacities make it
    /// interesting).
    pub base: SimConfig,
    /// Number of arrivals (one per time unit).
    pub arrivals: usize,
    /// Mean holding time in arrival intervals (exponential).
    pub mean_holding: f64,
    /// The embedding algorithm under test.
    pub algo: Algo,
}

/// Aggregate outcome of a lifecycle simulation.
#[derive(Debug, Clone, Serialize)]
pub struct LifecycleMetrics {
    /// Algorithm name.
    pub algo: &'static str,
    /// Requests embedded successfully.
    pub accepted: usize,
    /// Requests rejected.
    pub rejected: usize,
    /// Mean embedding cost over accepted requests.
    pub mean_cost: f64,
    /// Largest number of concurrently embedded requests.
    pub peak_concurrent: usize,
    /// Time-averaged number of concurrently embedded requests.
    pub mean_concurrent: f64,
    /// Residual committed load after every request departed — a leak
    /// detector; must be ~0.
    pub final_leak: f64,
    /// Accepted embeddings re-checked by the solver-independent
    /// constraint auditor (every [`AUDIT_SAMPLE_INTERVAL`]-th arrival).
    pub audited: usize,
    /// Sampled audits that reported at least one constraint violation —
    /// must be 0; anything else is a solver or accounting bug.
    pub audit_violations: usize,
}

impl LifecycleMetrics {
    /// Accepted / offered.
    pub fn acceptance_ratio(&self) -> f64 {
        let total = self.accepted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.accepted as f64 / total as f64
        }
    }
}

/// One arrival's fate, in arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalOutcome {
    /// Whether the request was embedded.
    pub accepted: bool,
    /// Its objective cost (`0.0` when rejected).
    pub cost: f64,
}

/// Full per-event record of a lifecycle run — everything the
/// replay-equivalence check compares bit-for-bit.
#[derive(Debug, Clone, Serialize)]
pub struct LifecycleOutcome {
    /// The aggregate metrics.
    pub metrics: LifecycleMetrics,
    /// Per-arrival acceptance and cost, in arrival order.
    pub per_arrival: Vec<ArrivalOutcome>,
    /// Arrival indices in the order their leases were released
    /// (including the final drain).
    pub departure_order: Vec<usize>,
}

impl LifecycleOutcome {
    /// Sum of accepted costs (bit-identical across runs: summation is
    /// in arrival order).
    pub fn total_cost(&self) -> f64 {
        self.per_arrival.iter().map(|a| a.cost).sum()
    }
}

/// Current trace format version (see [`ReplayTrace::format_version`]).
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// Sampling stride of the lifecycle's constraint audits: every n-th
/// arrival's accepted embedding is re-checked against the paper's
/// integer program by `dagsfc-audit` (auditing every arrival would
/// roughly double the per-request cost for a check that should never
/// fire; use [`crate::audit_trace`] for exhaustive audits).
pub const AUDIT_SAMPLE_INTERVAL: usize = 8;

/// A solver-independent arrival/departure schedule: the offered load of
/// a lifecycle run, frozen so it can be replayed through an external
/// serving process.
///
/// `depart_at[i]` is the **absolute** departure time of arrival `i` in
/// fixed-point µ-intervals (see [`to_fixed`]), valid whether or not the
/// request ends up accepted — the replayer simply never schedules the
/// departure of a rejected request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplayTrace {
    /// Version tag for forward compatibility.
    pub format_version: u32,
    /// Network/chain/flow parameters (the replayer regenerates the
    /// network and per-arrival requests from this).
    pub base: SimConfig,
    /// The embedding algorithm to run.
    pub algo: Algo,
    /// Number of arrivals (one per time unit).
    pub arrivals: usize,
    /// Mean holding time the schedule was drawn with (provenance).
    pub mean_holding: f64,
    /// Fixed-point absolute departure time per arrival.
    pub depart_at: Vec<u64>,
}

/// Time in fixed-point µ-intervals: the lifecycle's event clock.
/// Integer comparison keeps departure-vs-arrival ordering exact across
/// processes.
pub fn to_fixed(t: f64) -> u64 {
    (t * 1_000_000.0) as u64
}

/// The solver seed for arrival `i` under base seed `base` — shared by
/// the simulator and the daemon so both solve identically.
pub fn arrival_seed(base: u64, arrival: usize) -> u64 {
    base ^ ((arrival as u64) << 1)
}

/// Why [`embed_and_commit`] turned a request away.
#[derive(Debug, Clone)]
pub enum EmbedRejection {
    /// The solver found no feasible embedding.
    Solve(SolveError),
    /// The solver's embedding failed reuse accounting (references an
    /// undeployed instance) — should not happen, but never aborts.
    Account(ModelError),
    /// The ledger refused the commit (capacity raced away) — should not
    /// happen when solving over the ledger's own residual.
    Commit(NetError),
    /// The committed embedding failed its post-commit constraint audit
    /// and was rolled back (serve daemon's audit-on-commit gate). The
    /// payload is the audit summary.
    Audit(String),
    /// The solve exceeded the server's per-request time budget and was
    /// rolled back (graceful degradation under fault load; only raised
    /// when a solve timeout is explicitly configured).
    Timeout {
        /// Wall time the solve actually took.
        elapsed_millis: u64,
    },
}

impl std::fmt::Display for EmbedRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmbedRejection::Solve(e) => write!(f, "{e}"),
            EmbedRejection::Account(e) => write!(f, "accounting failed: {e}"),
            EmbedRejection::Commit(e) => write!(f, "commit failed: {e}"),
            EmbedRejection::Audit(summary) => write!(f, "audit failed: {summary}"),
            EmbedRejection::Timeout { elapsed_millis } => {
                write!(f, "solve timed out after {elapsed_millis}ms")
            }
        }
    }
}

impl EmbedRejection {
    /// Whether this rejection is deadline-classified: the solver proved
    /// the flow's delay budget unmeetable (as opposed to capacity or
    /// topology infeasibility, commit races, audit failures, timeouts).
    pub fn is_deadline_infeasible(&self) -> bool {
        matches!(self, EmbedRejection::Solve(e) if e.is_deadline_infeasible())
    }

    /// Whether this rejection is rule-classified: the solver proved the
    /// request's placement rules (affinity / anti-affinity / precedence
    /// order) unsatisfiable, as opposed to capacity or deadline
    /// infeasibility.
    pub fn is_rule_infeasible(&self) -> bool {
        matches!(self, EmbedRejection::Solve(e) if e.is_rule_infeasible())
    }
}

impl std::error::Error for EmbedRejection {}

/// An accepted request: its lease plus the solve it came from.
#[derive(Debug)]
pub struct EmbedSuccess {
    /// Handle for the committed resources (release on departure).
    pub lease: LeaseId,
    /// Objective cost of the embedding.
    pub cost: CostBreakdown,
    /// The solver's instrumentation counters.
    pub stats: SolverStats,
    /// The full solve outcome (embedding included).
    pub outcome: SolveOutcome,
}

/// The per-request serving kernel: solve `(sfc, flow)` over `residual`
/// with `algo` seeded by `seed`, account the embedding's loads, and
/// commit them atomically to `ledger`.
///
/// `residual` must reflect `ledger`'s current state (callers either
/// pass `ledger.residual()` or an epoch-tagged cache of it); the commit
/// then cannot fail, but if it ever does the ledger is left untouched
/// and the request is merely rejected. Both `run_lifecycle` and the
/// `dagsfc-serve` daemon route every request through this function —
/// that shared path is what makes trace replay bit-for-bit equivalent.
pub fn embed_and_commit(
    ledger: &mut CommitLedger<'_>,
    residual: &Network,
    sfc: &DagSfc,
    flow: &Flow,
    algo: Algo,
    seed: u64,
) -> Result<EmbedSuccess, EmbedRejection> {
    let solver = algo.build(seed);
    let out = solver
        .solve(residual, sfc, flow)
        .map_err(EmbedRejection::Solve)?;
    let acct = out
        .embedding
        .try_account(residual, sfc, flow)
        .map_err(EmbedRejection::Account)?;
    let vnf_loads = acct
        .vnf_load
        .iter()
        .map(|(&(node, kind), &load)| (node, kind, load));
    let link_loads = acct
        .link_load
        .iter()
        .enumerate()
        .map(|(i, &load)| (LinkId(i as u32), load));
    let lease = ledger
        // lint:allow(raw-commit) — this *is* the sanctioned wrapper
        .commit(vnf_loads, link_loads)
        .map_err(EmbedRejection::Commit)?;
    Ok(EmbedSuccess {
        lease,
        cost: out.cost,
        stats: out.stats.clone(),
        outcome: out,
    })
}

/// Freezes the offered load of `cfg` into a replayable schedule.
///
/// Exponential holding: `-mean · ln(U)` with a floor of one interval so
/// every request occupies at least one slot. The draw happens for every
/// arrival — accepted or not — so the schedule is independent of which
/// solver runs and of what it decides.
pub fn export_trace(cfg: &LifecycleConfig) -> ReplayTrace {
    let mut holding_rng = StdRng::seed_from_u64(cfg.base.seed ^ 0x11FE_C7C1E);
    let depart_at = (0..cfg.arrivals)
        .map(|arrival| {
            let u: f64 = holding_rng.gen_range(1e-12..1.0);
            let holding = (-cfg.mean_holding * u.ln()).max(1.0);
            to_fixed(arrival as f64 + holding)
        })
        .collect();
    ReplayTrace {
        format_version: TRACE_FORMAT_VERSION,
        base: cfg.base.clone(),
        algo: cfg.algo,
        arrivals: cfg.arrivals,
        mean_holding: cfg.mean_holding,
        depart_at,
    }
}

/// Runs a frozen schedule in-process against `net`.
///
/// Event order: before arrival `i`, every scheduled departure with time
/// `≤ i` fires, ties broken by ascending arrival index; then arrival
/// `i` is offered. This is exactly the order an external replayer
/// produces over the wire, which is what makes the daemon's results
/// comparable bit-for-bit.
pub fn run_trace(net: &Network, trace: &ReplayTrace) -> LifecycleOutcome {
    let mut ledger = CommitLedger::new(net);
    let mut departures = DepartureQueue::new();
    let mut leases: Vec<Option<LeaseId>> = vec![None; trace.arrivals];

    let mut per_arrival = Vec::with_capacity(trace.arrivals);
    let mut departure_order = Vec::new();
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut total_cost = 0.0;
    let mut concurrent = 0usize;
    let mut peak = 0usize;
    let mut concurrent_integral = 0.0;
    let auditor = ConstraintAuditor::new();
    let mut audited = 0usize;
    let mut audit_violations = 0usize;

    for arrival in 0..trace.arrivals {
        let now = to_fixed(arrival as f64);
        while let Some(id) = departures.pop_due(now) {
            // lint:allow(expect) — invariant: departs once
            let lease = leases[id].take().expect("departs once");
            // lint:allow(expect) — invariant: lease is active
            ledger.release(lease).expect("lease is active");
            departure_order.push(id);
            concurrent -= 1;
        }
        concurrent_integral += concurrent as f64;

        let (sfc, flow) = instance_request(&trace.base, net, arrival);
        let residual = ledger.residual();
        match embed_and_commit(
            &mut ledger,
            &residual,
            &sfc,
            &flow,
            trace.algo,
            arrival_seed(trace.base.seed, arrival),
        ) {
            Ok(s) => {
                if arrival % AUDIT_SAMPLE_INTERVAL == 0 {
                    // Audit against the residual the solver saw, not the
                    // base network — capacity constraints are per-state.
                    let report = auditor.audit_outcome(&residual, &sfc, &flow, &s.outcome);
                    audited += 1;
                    if !report.is_clean() {
                        audit_violations += 1;
                    }
                }
                leases[arrival] = Some(s.lease);
                departures.schedule(trace.depart_at[arrival], arrival);
                concurrent += 1;
                peak = peak.max(concurrent);
                accepted += 1;
                let cost = s.cost.total();
                total_cost += cost;
                per_arrival.push(ArrivalOutcome {
                    accepted: true,
                    cost,
                });
            }
            Err(_) => {
                rejected += 1;
                per_arrival.push(ArrivalOutcome {
                    accepted: false,
                    cost: 0.0,
                });
            }
        }
    }

    // Drain all remaining departures to measure leakage.
    while let Some((_, id)) = departures.pop() {
        // lint:allow(expect) — invariant: departs once
        let lease = leases[id].take().expect("departs once");
        // lint:allow(expect) — invariant: lease is active
        ledger.release(lease).expect("lease is active");
        departure_order.push(id);
    }

    LifecycleOutcome {
        metrics: LifecycleMetrics {
            algo: trace.algo.name(),
            accepted,
            rejected,
            mean_cost: if accepted == 0 {
                0.0
            } else {
                total_cost / accepted as f64
            },
            peak_concurrent: peak,
            mean_concurrent: if trace.arrivals == 0 {
                0.0
            } else {
                concurrent_integral / trace.arrivals as f64
            },
            final_leak: ledger.outstanding_load(),
            audited,
            audit_violations,
        },
        per_arrival,
        departure_order,
    }
}

/// Runs the lifecycle simulation with full per-event detail.
pub fn run_lifecycle_detailed(cfg: &LifecycleConfig) -> LifecycleOutcome {
    let net = instance_network(&cfg.base);
    run_trace(&net, &export_trace(cfg))
}

/// Runs the lifecycle simulation (aggregate metrics only).
pub fn run_lifecycle(cfg: &LifecycleConfig) -> LifecycleMetrics {
    run_lifecycle_detailed(cfg).metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimConfig {
        SimConfig {
            network_size: 30,
            sfc_size: 4,
            vnf_capacity: 6.0,
            link_capacity: 6.0,
            seed: 0xBEEF,
            ..SimConfig::default()
        }
    }

    #[test]
    fn no_resource_leaks() {
        let m = run_lifecycle(&LifecycleConfig {
            base: base(),
            arrivals: 60,
            mean_holding: 8.0,
            algo: Algo::Mbbe,
        });
        assert!(m.final_leak.abs() < 1e-6, "leaked {}", m.final_leak);
        assert_eq!(m.accepted + m.rejected, 60);
        assert!(m.peak_concurrent >= 1);
        assert!(m.mean_concurrent > 0.0);
        assert!(m.peak_concurrent as f64 >= m.mean_concurrent);
        assert!(m.audited > 0, "sampled audits must run");
        assert_eq!(m.audit_violations, 0, "sampled audits must be clean");
    }

    #[test]
    fn departures_raise_acceptance() {
        // Same offered sequence: short holding times free capacity and
        // must admit at least as many requests as near-infinite ones.
        let short = run_lifecycle(&LifecycleConfig {
            base: base(),
            arrivals: 80,
            mean_holding: 3.0,
            algo: Algo::Mbbe,
        });
        let long = run_lifecycle(&LifecycleConfig {
            base: base(),
            arrivals: 80,
            mean_holding: 1e9,
            algo: Algo::Mbbe,
        });
        assert!(
            short.accepted >= long.accepted,
            "short-holding accepted {} < long-holding {}",
            short.accepted,
            long.accepted
        );
        assert!(long.rejected > 0, "infinite holding must saturate");
    }

    #[test]
    fn deterministic_bit_for_bit() {
        // Same seed + config ⇒ identical acceptance, cost series, and
        // departure order — the property the trace-replay equivalence
        // acceptance criterion builds on.
        let cfg = LifecycleConfig {
            base: base(),
            arrivals: 40,
            mean_holding: 5.0,
            algo: Algo::Minv,
        };
        let a = run_lifecycle_detailed(&cfg);
        let b = run_lifecycle_detailed(&cfg);
        assert_eq!(a.metrics.accepted, b.metrics.accepted);
        assert_eq!(a.metrics.peak_concurrent, b.metrics.peak_concurrent);
        // Bit-for-bit: exact f64 equality, not tolerance.
        assert_eq!(a.per_arrival, b.per_arrival);
        assert_eq!(a.departure_order, b.departure_order);
        assert_eq!(a.total_cost(), b.total_cost());
        assert_eq!(a.metrics.mean_cost, b.metrics.mean_cost);
    }

    #[test]
    fn trace_schedule_is_solver_independent() {
        // The frozen schedule must not depend on which algorithm runs.
        let mk = |algo| LifecycleConfig {
            base: base(),
            arrivals: 30,
            mean_holding: 4.0,
            algo,
        };
        let a = export_trace(&mk(Algo::Minv));
        let b = export_trace(&mk(Algo::Mbbe));
        assert_eq!(a.depart_at, b.depart_at);
    }

    #[test]
    fn replaying_exported_trace_matches_direct_run() {
        let cfg = LifecycleConfig {
            base: base(),
            arrivals: 40,
            mean_holding: 5.0,
            algo: Algo::Mbbe,
        };
        let direct = run_lifecycle_detailed(&cfg);
        let net = instance_network(&cfg.base);
        let replayed = run_trace(&net, &export_trace(&cfg));
        assert_eq!(direct.per_arrival, replayed.per_arrival);
        assert_eq!(direct.departure_order, replayed.departure_order);
    }

    #[test]
    fn matches_online_when_nothing_departs() {
        // With effectively infinite holding, lifecycle == online.
        let b = base();
        let lc = run_lifecycle(&LifecycleConfig {
            base: b.clone(),
            arrivals: 50,
            mean_holding: 1e9,
            algo: Algo::Minv,
        });
        let ol = crate::online::run_online(&crate::online::OnlineConfig {
            base: b,
            requests: 50,
            algo: Algo::Minv,
        });
        assert_eq!(lc.accepted, ol.accepted);
        assert_eq!(lc.rejected, ol.rejected);
    }

    #[test]
    fn embed_and_commit_round_trips_through_ledger() {
        let cfg = base();
        let net = instance_network(&cfg);
        let mut ledger = CommitLedger::new(&net);
        let (sfc, flow) = instance_request(&cfg, &net, 0);
        let residual = ledger.residual();
        let s = embed_and_commit(
            &mut ledger,
            &residual,
            &sfc,
            &flow,
            Algo::Minv,
            arrival_seed(cfg.seed, 0),
        )
        .expect("fresh network admits the first request");
        assert!(ledger.is_active(s.lease));
        assert!(ledger.outstanding_load() > 0.0);
        assert!(s.cost.total() > 0.0);
        ledger.release(s.lease).unwrap();
        assert!(ledger.outstanding_load().abs() < 1e-12);
    }
}
