//! Request lifecycles: arrivals *and departures* — an extension of the
//! online simulation ([`crate::online`]) toward a real provisioning
//! system.
//!
//! Requests arrive at unit intervals, hold their resources for an
//! exponentially distributed number of intervals, then depart and
//! release exactly what they committed. Under a fixed offered load the
//! system reaches a steady state whose acceptance ratio measures how
//! much traffic an embedding algorithm can *sustain*, not just admit
//! once — the metric cloud operators actually tune for.

use crate::config::SimConfig;
use crate::runner::{instance_network, instance_request, Algo};
use dagsfc_net::{LinkId, NetworkState, NodeId, VnfTypeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration of a lifecycle simulation.
#[derive(Debug, Clone, Serialize)]
pub struct LifecycleConfig {
    /// Network/chain/flow parameters (finite capacities make it
    /// interesting).
    pub base: SimConfig,
    /// Number of arrivals (one per time unit).
    pub arrivals: usize,
    /// Mean holding time in arrival intervals (exponential).
    pub mean_holding: f64,
    /// The embedding algorithm under test.
    pub algo: Algo,
}

/// Aggregate outcome of a lifecycle simulation.
#[derive(Debug, Clone, Serialize)]
pub struct LifecycleMetrics {
    /// Algorithm name.
    pub algo: &'static str,
    /// Requests embedded successfully.
    pub accepted: usize,
    /// Requests rejected.
    pub rejected: usize,
    /// Mean embedding cost over accepted requests.
    pub mean_cost: f64,
    /// Largest number of concurrently embedded requests.
    pub peak_concurrent: usize,
    /// Time-averaged number of concurrently embedded requests.
    pub mean_concurrent: f64,
    /// Residual committed load after every request departed — a leak
    /// detector; must be ~0.
    pub final_leak: f64,
}

impl LifecycleMetrics {
    /// Accepted / offered.
    pub fn acceptance_ratio(&self) -> f64 {
        let total = self.accepted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.accepted as f64 / total as f64
        }
    }
}

/// The resources one accepted request committed.
struct Commitment {
    vnf: Vec<(NodeId, VnfTypeId, f64)>,
    links: Vec<(LinkId, f64)>,
}

/// Runs the lifecycle simulation.
pub fn run_lifecycle(cfg: &LifecycleConfig) -> LifecycleMetrics {
    let net = instance_network(&cfg.base);
    let mut state = NetworkState::new(&net);
    // Departure queue: (Reverse(time in fixed-point µ-intervals), id).
    let mut departures: BinaryHeap<(Reverse<u64>, usize)> = BinaryHeap::new();
    let mut commitments: Vec<Option<Commitment>> = Vec::new();

    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut total_cost = 0.0;
    let mut concurrent = 0usize;
    let mut peak = 0usize;
    let mut concurrent_integral = 0.0;

    let mut holding_rng = StdRng::seed_from_u64(cfg.base.seed ^ 0x11FE_C7C1E);
    let to_fixed = |t: f64| (t * 1_000_000.0) as u64;

    for arrival in 0..cfg.arrivals {
        let now = arrival as f64;
        // Process departures due before this arrival.
        while let Some(&(Reverse(t), id)) = departures.peek() {
            if t > to_fixed(now) {
                break;
            }
            departures.pop();
            let c = commitments[id].take().expect("departs once");
            for (node, kind, rate) in c.vnf {
                state
                    .release_vnf(node, kind, rate)
                    .expect("release matches reserve");
            }
            for (link, rate) in c.links {
                state
                    .release_link(link, rate)
                    .expect("release matches reserve");
            }
            concurrent -= 1;
        }
        concurrent_integral += concurrent as f64;

        let (sfc, flow) = instance_request(&cfg.base, &net, arrival);
        let residual = state.to_residual_network();
        let solver = cfg.algo.build(cfg.base.seed ^ (arrival as u64) << 1);
        match solver.solve(&residual, &sfc, &flow) {
            Ok(out) => {
                let acct = out.embedding.account(&residual, &sfc, &flow);
                let mut commitment = Commitment {
                    vnf: Vec::new(),
                    links: Vec::new(),
                };
                for (&(node, kind), &load) in &acct.vnf_load {
                    state
                        .reserve_vnf(node, kind, load)
                        .expect("solver respected residual capacity");
                    commitment.vnf.push((node, kind, load));
                }
                for (i, &load) in acct.link_load.iter().enumerate() {
                    if load > 0.0 {
                        let link = LinkId(i as u32);
                        state
                            .reserve_link(link, load)
                            .expect("solver respected residual bandwidth");
                        commitment.links.push((link, load));
                    }
                }
                let id = commitments.len();
                commitments.push(Some(commitment));
                // Exponential holding: -mean · ln(U), with a floor of one
                // interval so every request occupies at least one slot.
                let u: f64 = holding_rng.gen_range(1e-12..1.0);
                let holding = (-cfg.mean_holding * u.ln()).max(1.0);
                departures.push((Reverse(to_fixed(now + holding)), id));
                concurrent += 1;
                peak = peak.max(concurrent);
                accepted += 1;
                total_cost += out.cost.total();
            }
            Err(_) => rejected += 1,
        }
    }

    // Drain all remaining departures to measure leakage.
    while let Some((_, id)) = departures.pop() {
        let c = commitments[id].take().expect("departs once");
        for (node, kind, rate) in c.vnf {
            state
                .release_vnf(node, kind, rate)
                .expect("release matches reserve");
        }
        for (link, rate) in c.links {
            state
                .release_link(link, rate)
                .expect("release matches reserve");
        }
    }

    LifecycleMetrics {
        algo: cfg.algo.name(),
        accepted,
        rejected,
        mean_cost: if accepted == 0 {
            0.0
        } else {
            total_cost / accepted as f64
        },
        peak_concurrent: peak,
        mean_concurrent: if cfg.arrivals == 0 {
            0.0
        } else {
            concurrent_integral / cfg.arrivals as f64
        },
        final_leak: state.total_link_load() + state.total_vnf_load(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimConfig {
        SimConfig {
            network_size: 30,
            sfc_size: 4,
            vnf_capacity: 6.0,
            link_capacity: 6.0,
            seed: 0xBEEF,
            ..SimConfig::default()
        }
    }

    #[test]
    fn no_resource_leaks() {
        let m = run_lifecycle(&LifecycleConfig {
            base: base(),
            arrivals: 60,
            mean_holding: 8.0,
            algo: Algo::Mbbe,
        });
        assert!(m.final_leak.abs() < 1e-6, "leaked {}", m.final_leak);
        assert_eq!(m.accepted + m.rejected, 60);
        assert!(m.peak_concurrent >= 1);
        assert!(m.mean_concurrent > 0.0);
        assert!(m.peak_concurrent as f64 >= m.mean_concurrent);
    }

    #[test]
    fn departures_raise_acceptance() {
        // Same offered sequence: short holding times free capacity and
        // must admit at least as many requests as near-infinite ones.
        let short = run_lifecycle(&LifecycleConfig {
            base: base(),
            arrivals: 80,
            mean_holding: 3.0,
            algo: Algo::Mbbe,
        });
        let long = run_lifecycle(&LifecycleConfig {
            base: base(),
            arrivals: 80,
            mean_holding: 1e9,
            algo: Algo::Mbbe,
        });
        assert!(
            short.accepted >= long.accepted,
            "short-holding accepted {} < long-holding {}",
            short.accepted,
            long.accepted
        );
        assert!(long.rejected > 0, "infinite holding must saturate");
    }

    #[test]
    fn deterministic() {
        let cfg = LifecycleConfig {
            base: base(),
            arrivals: 40,
            mean_holding: 5.0,
            algo: Algo::Minv,
        };
        let a = run_lifecycle(&cfg);
        let b = run_lifecycle(&cfg);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.peak_concurrent, b.peak_concurrent);
        assert!((a.mean_cost - b.mean_cost).abs() < 1e-12);
    }

    #[test]
    fn matches_online_when_nothing_departs() {
        // With effectively infinite holding, lifecycle == online.
        let b = base();
        let lc = run_lifecycle(&LifecycleConfig {
            base: b.clone(),
            arrivals: 50,
            mean_holding: 1e9,
            algo: Algo::Minv,
        });
        let ol = crate::online::run_online(&crate::online::OnlineConfig {
            base: b,
            requests: 50,
            algo: Algo::Minv,
        });
        assert_eq!(lc.accepted, ol.accepted);
        assert_eq!(lc.rejected, ol.rejected);
    }
}
