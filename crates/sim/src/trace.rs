//! Per-run tracing: full distributions instead of means.
//!
//! The paper reports only average costs; distributions tell the rest of
//! the story (tail costs, variance between SFC draws, per-run win/loss
//! records between algorithms). [`trace_instance`] runs one instance and
//! keeps *every* run's outcome, from which [`Percentiles`] and
//! head-to-head comparisons are derived.

use crate::config::SimConfig;
use crate::runner::{instance_network, instance_request, Algo};
use serde::Serialize;

/// One run's outcome for one algorithm.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RunRecord {
    /// Run index within the instance.
    pub run: usize,
    /// Total embedding cost, `None` when the run failed.
    pub cost: Option<f64>,
    /// Solve time in microseconds.
    pub elapsed_us: f64,
}

/// Full trace of one algorithm over an instance.
#[derive(Debug, Clone, Serialize)]
pub struct AlgoTrace {
    /// Algorithm name.
    pub name: &'static str,
    /// Per-run records, in run order.
    pub records: Vec<RunRecord>,
}

impl AlgoTrace {
    /// Successful costs, in run order.
    pub fn costs(&self) -> Vec<f64> {
        self.records.iter().filter_map(|r| r.cost).collect()
    }

    /// Cost percentiles over successful runs.
    pub fn cost_percentiles(&self) -> Percentiles {
        Percentiles::of(&self.costs())
    }

    /// Solve-time percentiles over all runs (µs).
    pub fn time_percentiles(&self) -> Percentiles {
        Percentiles::of(
            &self
                .records
                .iter()
                .map(|r| r.elapsed_us)
                .collect::<Vec<_>>(),
        )
    }
}

/// p50/p90/p99 summary (nearest-rank method).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Sample maximum.
    pub max: f64,
}

impl Percentiles {
    /// Computes nearest-rank percentiles; zeros for an empty sample.
    pub fn of(xs: &[f64]) -> Percentiles {
        if xs.is_empty() {
            return Percentiles {
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let rank = |p: f64| {
            let idx = ((p / 100.0 * sorted.len() as f64).ceil() as usize).max(1) - 1;
            sorted[idx.min(sorted.len() - 1)]
        };
        Percentiles {
            p50: rank(50.0),
            p90: rank(90.0),
            p99: rank(99.0),
            // lint:allow(expect) — invariant: non-empty
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Runs an instance keeping every run's record per algorithm
/// (single-threaded: traces are about exact per-run pairing, not
/// throughput).
pub fn trace_instance(cfg: &SimConfig, algos: &[Algo]) -> Vec<AlgoTrace> {
    let net = instance_network(cfg);
    let mut traces: Vec<AlgoTrace> = algos
        .iter()
        .map(|a| AlgoTrace {
            name: a.name(),
            records: Vec::with_capacity(cfg.runs),
        })
        .collect();
    for run in 0..cfg.runs {
        let (sfc, flow) = instance_request(cfg, &net, run);
        for (ai, &algo) in algos.iter().enumerate() {
            let solver = algo.build(cfg.seed ^ run as u64);
            let started = std::time::Instant::now();
            let outcome = solver.solve(&net, &sfc, &flow);
            traces[ai].records.push(RunRecord {
                run,
                cost: outcome.ok().map(|o| o.cost.total()),
                elapsed_us: started.elapsed().as_secs_f64() * 1e6,
            });
        }
    }
    traces
}

/// Head-to-head record: on how many runs did `a` strictly beat, tie, or
/// lose to `b` (ties within `tol`)? Runs where either failed are
/// skipped.
pub fn head_to_head(a: &AlgoTrace, b: &AlgoTrace, tol: f64) -> (usize, usize, usize) {
    let mut wins = 0;
    let mut ties = 0;
    let mut losses = 0;
    for (ra, rb) in a.records.iter().zip(&b.records) {
        if let (Some(ca), Some(cb)) = (ra.cost, rb.cost) {
            if (ca - cb).abs() <= tol {
                ties += 1;
            } else if ca < cb {
                wins += 1;
            } else {
                losses += 1;
            }
        }
    }
    (wins, ties, losses)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig {
            network_size: 40,
            runs: 10,
            sfc_size: 4,
            ..SimConfig::default()
        }
    }

    #[test]
    fn percentile_math() {
        let p = Percentiles::of(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]);
        assert_eq!(p.p50, 5.0);
        assert_eq!(p.p90, 9.0);
        assert_eq!(p.p99, 10.0);
        assert_eq!(p.max, 10.0);
        let single = Percentiles::of(&[3.0]);
        assert_eq!(single.p50, 3.0);
        assert_eq!(single.p99, 3.0);
        assert_eq!(Percentiles::of(&[]).max, 0.0);
    }

    #[test]
    fn traces_cover_every_run() {
        let traces = trace_instance(&cfg(), &[Algo::Mbbe, Algo::Minv]);
        assert_eq!(traces.len(), 2);
        for t in &traces {
            assert_eq!(t.records.len(), 10);
            assert_eq!(t.costs().len(), 10, "{} had failures", t.name);
            assert!(t.records.iter().all(|r| r.elapsed_us > 0.0));
            let p = t.cost_percentiles();
            assert!(p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.max);
        }
    }

    #[test]
    fn mbbe_dominates_minv_per_run() {
        let traces = trace_instance(&cfg(), &[Algo::Mbbe, Algo::Minv]);
        let (wins, ties, losses) = head_to_head(&traces[0], &traces[1], 1e-9);
        assert_eq!(wins + ties + losses, 10);
        assert_eq!(
            losses, 0,
            "MBBE lost {losses} head-to-head runs against MINV"
        );
        assert!(wins > 0, "MBBE should strictly win at least one run");
    }

    #[test]
    fn trace_deterministic() {
        let a = trace_instance(&cfg(), &[Algo::Mbbe]);
        let b = trace_instance(&cfg(), &[Algo::Mbbe]);
        for (x, y) in a[0].records.iter().zip(&b[0].records) {
            assert_eq!(x.cost, y.cost);
        }
    }
}
