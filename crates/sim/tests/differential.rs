//! Differential tests over *randomized* instances: every parallel fast
//! path must be observationally identical to its serial reference.
//!
//! Two independent parallelism layers are pinned here:
//!
//! * the sweep executor (`sweep` vs `sweep_serial`) — work-queue
//!   scheduling over whole instances must not change any reported
//!   aggregate;
//! * MBBE/BBE merger-candidate scoring
//!   ([`BbeConfig::parallel_merger_scoring`]) — the scoped-thread
//!   fan-out inside a single solve must reproduce the sequential
//!   search bit for bit, **including the instrumentation counters**.
//!
//! What is deliberately *excluded* from each comparison, and why:
//!
//! * `mean_elapsed` / `SolverStats::elapsed` / `layer_wall` — wall
//!   clock, the one thing parallelism is allowed to change;
//! * per-algorithm `cache_hits`/`cache_misses` in the *sweep* tests —
//!   the instance runner shares one path oracle across concurrently
//!   scheduled runs, so which run pays a given miss is
//!   scheduling-dependent (totals are conserved, attribution is not).
//!   Per-solve counters in the merger tests have no such ambiguity
//!   (fresh oracle per solve, builds serialized under the cache lock),
//!   so there they are compared exactly.

use dagsfc_core::solvers::{BbeSolver, MbbeSolver, Solver};
use dagsfc_core::SolveOutcome;
use dagsfc_sim::report;
use dagsfc_sim::runner::{instance_network, instance_request};
use dagsfc_sim::sweep::{paper_algos, sweep, sweep_serial};
use dagsfc_sim::SimConfig;

/// Randomized sweep bases: small but structurally diverse configs drawn
/// from fixed seeds (different substrate sizes, chain shapes, prices).
fn random_bases() -> Vec<SimConfig> {
    [0x05EE_D001u64, 0x05EE_D002, 0x05EE_D003]
        .iter()
        .enumerate()
        .map(|(i, &seed)| SimConfig {
            network_size: 24 + 8 * i,
            sfc_size: 3 + i,
            vnf_deploy_ratio: 0.4 + 0.1 * i as f64,
            avg_price_ratio: 0.1 + 0.1 * i as f64,
            runs: 6,
            seed,
            ..SimConfig::quick()
        })
        .collect()
}

#[test]
fn parallel_sweep_matches_serial_on_randomized_instances() {
    for (bi, base) in random_bases().iter().enumerate() {
        let xs = [3.0, 4.0];
        let set = |cfg: &mut SimConfig, x: f64| cfg.sfc_size = x as usize;
        let par = sweep("diff", "sfc size", base, &xs, set, |_| paper_algos());
        let ser = sweep_serial("diff", "sfc size", base, &xs, set, |_| paper_algos());

        // The rendered CSV (x, mean cost, successes) must match byte
        // for byte.
        assert_eq!(
            report::csv(&par),
            report::csv(&ser),
            "base {bi}: CSV diverged"
        );

        // And beyond the CSV: every deterministic aggregate field, bit
        // for bit.
        assert_eq!(par.points.len(), ser.points.len());
        for (pp, sp) in par.points.iter().zip(&ser.points) {
            assert_eq!(pp.x.to_bits(), sp.x.to_bits());
            assert_eq!(pp.algos.len(), sp.algos.len());
            for (pa, sa) in pp.algos.iter().zip(&sp.algos) {
                let tag = format!("base {bi}, x={}, algo {}", pp.x, pa.name);
                assert_eq!(pa.name, sa.name, "{tag}: algo order");
                assert_eq!(pa.successes, sa.successes, "{tag}: successes");
                assert_eq!(pa.failures, sa.failures, "{tag}: failures");
                assert_eq!(pa.cost.n, sa.cost.n, "{tag}: cost.n");
                assert_eq!(
                    pa.cost.mean.to_bits(),
                    sa.cost.mean.to_bits(),
                    "{tag}: cost.mean"
                );
                assert_eq!(
                    pa.cost.std_dev.to_bits(),
                    sa.cost.std_dev.to_bits(),
                    "{tag}: cost.std_dev"
                );
                assert_eq!(
                    pa.cost.min.to_bits(),
                    sa.cost.min.to_bits(),
                    "{tag}: cost.min"
                );
                assert_eq!(
                    pa.cost.max.to_bits(),
                    sa.cost.max.to_bits(),
                    "{tag}: cost.max"
                );
                assert_eq!(
                    pa.mean_vnf_cost.to_bits(),
                    sa.mean_vnf_cost.to_bits(),
                    "{tag}: mean_vnf_cost"
                );
                assert_eq!(
                    pa.mean_link_cost.to_bits(),
                    sa.mean_link_cost.to_bits(),
                    "{tag}: mean_link_cost"
                );
                assert_eq!(
                    pa.mean_explored.to_bits(),
                    sa.mean_explored.to_bits(),
                    "{tag}: mean_explored"
                );
                assert_eq!(
                    pa.mean_nodes_expanded.to_bits(),
                    sa.mean_nodes_expanded.to_bits(),
                    "{tag}: mean_nodes_expanded"
                );
                assert_eq!(
                    pa.mean_candidates_generated.to_bits(),
                    sa.mean_candidates_generated.to_bits(),
                    "{tag}: mean_candidates_generated"
                );
                assert_eq!(
                    pa.mean_candidates_pruned.to_bits(),
                    sa.mean_candidates_pruned.to_bits(),
                    "{tag}: mean_candidates_pruned"
                );
            }
        }
    }
}

/// Asserts two solve outcomes of the same instance are identical in
/// everything but wall clock.
fn assert_outcomes_identical(serial: &SolveOutcome, parallel: &SolveOutcome, tag: &str) {
    assert_eq!(serial.embedding, parallel.embedding, "{tag}: embedding");
    assert_eq!(
        serial.cost.total().to_bits(),
        parallel.cost.total().to_bits(),
        "{tag}: total cost"
    );
    assert_eq!(
        serial.cost.vnf.to_bits(),
        parallel.cost.vnf.to_bits(),
        "{tag}: vnf cost"
    );
    assert_eq!(
        serial.cost.link.to_bits(),
        parallel.cost.link.to_bits(),
        "{tag}: link cost"
    );
    let (s, p) = (&serial.stats, &parallel.stats);
    assert_eq!(s.explored, p.explored, "{tag}: explored");
    assert_eq!(s.kept, p.kept, "{tag}: kept");
    assert_eq!(s.nodes_expanded, p.nodes_expanded, "{tag}: nodes_expanded");
    assert_eq!(s.fst_nodes, p.fst_nodes, "{tag}: fst_nodes");
    assert_eq!(s.bst_nodes, p.bst_nodes, "{tag}: bst_nodes");
    assert_eq!(
        s.candidates_generated, p.candidates_generated,
        "{tag}: candidates_generated"
    );
    assert_eq!(
        s.candidates_pruned, p.candidates_pruned,
        "{tag}: candidates_pruned"
    );
    assert_eq!(s.cache_hits, p.cache_hits, "{tag}: cache_hits");
    assert_eq!(s.cache_misses, p.cache_misses, "{tag}: cache_misses");
}

#[test]
fn parallel_merger_scoring_matches_serial_on_randomized_instances() {
    // Many small randomized instances: fresh network and hybrid chain
    // per seed, solved twice — sequential merger scoring vs the
    // scoped-thread fan-out — with identical outcomes demanded down to
    // the instrumentation counters.
    let mut solved = 0usize;
    for seed in 0..12u64 {
        let cfg = SimConfig {
            network_size: 24 + (seed as usize % 3) * 8,
            sfc_size: 3 + (seed as usize % 3),
            runs: 1,
            seed: 0xD1FF ^ (seed << 8),
            ..SimConfig::quick()
        };
        let net = instance_network(&cfg);
        let (sfc, flow) = instance_request(&cfg, &net, 0);

        let serial = MbbeSolver::new().solve(&net, &sfc, &flow);
        let mut par_solver = MbbeSolver::new();
        par_solver.config.parallel_merger_scoring = true;
        let parallel = par_solver.solve(&net, &sfc, &flow);

        match (serial, parallel) {
            (Ok(s), Ok(p)) => {
                assert_outcomes_identical(&s, &p, &format!("mbbe seed {seed}"));
                solved += 1;
            }
            (Err(_), Err(_)) => {}
            (s, p) => panic!(
                "mbbe seed {seed}: feasibility diverged (serial ok={}, parallel ok={})",
                s.is_ok(),
                p.is_ok()
            ),
        }

        // Classic BBE exercises the tree-traversal candidate path; its
        // chains stay within the practical size limit by construction
        // (sfc_size ≤ 5 above).
        let bbe_serial = BbeSolver::new().solve(&net, &sfc, &flow);
        let mut bbe_par_solver = BbeSolver::new();
        bbe_par_solver.config.parallel_merger_scoring = true;
        let bbe_parallel = bbe_par_solver.solve(&net, &sfc, &flow);
        match (bbe_serial, bbe_parallel) {
            (Ok(s), Ok(p)) => assert_outcomes_identical(&s, &p, &format!("bbe seed {seed}")),
            (Err(_), Err(_)) => {}
            (s, p) => panic!(
                "bbe seed {seed}: feasibility diverged (serial ok={}, parallel ok={})",
                s.is_ok(),
                p.is_ok()
            ),
        }
    }
    assert!(
        solved >= 6,
        "too few feasible instances ({solved}/12) for the differential to mean anything"
    );
}
