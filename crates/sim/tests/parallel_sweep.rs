//! Differential test: the parallel sweep executor must be
//! observationally identical to the serial reference.
//!
//! For every Fig. 6 knob dimension we run the same sweep spec through
//! both executors and require the rendered CSV to match **byte for
//! byte**. The grids are scaled-down versions of the paper grids (the
//! full quick-profile figure run lives in CI's release-mode figures
//! job); what matters here is that every knob setter and every
//! algorithm mix goes through both code paths.

use dagsfc_sim::report;
use dagsfc_sim::runner::Algo;
use dagsfc_sim::sweep::{paper_algos, paper_algos_no_bbe, sweep, sweep_serial, BBE_SFC_SIZE_LIMIT};
use dagsfc_sim::SimConfig;

/// Quick-profile base configuration (the same profile `dagsfc figures`
/// uses without `--full`): 60-node substrate, 10 runs per point.
fn quick_base() -> SimConfig {
    SimConfig::quick()
}

/// One knob dimension of the Fig. 6 family: an id, an x grid, a config
/// setter, and the algorithm mix per point.
struct Dim {
    id: &'static str,
    xs: &'static [f64],
    set: fn(&mut SimConfig, f64),
    algos: fn(f64) -> Vec<Algo>,
}

fn fig6_dims() -> Vec<Dim> {
    vec![
        // fig6a: SFC size, BBE dropped beyond its practical limit.
        Dim {
            id: "fig6a",
            xs: &[3.0, 6.0],
            set: |cfg, x| cfg.sfc_size = x as usize,
            algos: |x| {
                if x as usize <= BBE_SFC_SIZE_LIMIT {
                    paper_algos()
                } else {
                    paper_algos_no_bbe()
                }
            },
        },
        // fig6b: substrate size (scaled-down grid).
        Dim {
            id: "fig6b",
            xs: &[30.0, 60.0],
            set: |cfg, x| cfg.network_size = x as usize,
            algos: |_| paper_algos(),
        },
        // fig6c: connectivity degree.
        Dim {
            id: "fig6c",
            xs: &[4.0, 8.0],
            set: |cfg, x| cfg.connectivity = x,
            algos: |_| paper_algos(),
        },
        // fig6d: VNF deployment ratio.
        Dim {
            id: "fig6d",
            xs: &[0.3, 0.6],
            set: |cfg, x| cfg.vnf_deploy_ratio = x,
            algos: |_| paper_algos(),
        },
        // fig6e: average VNF/link price ratio.
        Dim {
            id: "fig6e",
            xs: &[0.05, 0.3],
            set: |cfg, x| cfg.avg_price_ratio = x,
            algos: |_| paper_algos(),
        },
        // fig6f: VNF price fluctuation.
        Dim {
            id: "fig6f",
            xs: &[0.1, 0.4],
            set: |cfg, x| cfg.vnf_price_fluctuation = x,
            algos: |_| paper_algos(),
        },
    ]
}

#[test]
fn parallel_sweep_csv_matches_serial_for_all_fig6_dims() {
    let base = quick_base();
    for dim in fig6_dims() {
        let par = sweep(dim.id, "x", &base, dim.xs, dim.set, dim.algos);
        let ser = sweep_serial(dim.id, "x", &base, dim.xs, dim.set, dim.algos);
        let par_csv = report::csv(&par);
        let ser_csv = report::csv(&ser);
        assert_eq!(
            par_csv, ser_csv,
            "{}: parallel CSV diverged from serial reference",
            dim.id
        );
        // Beyond the CSV: per-algorithm aggregates must agree exactly.
        for (pp, sp) in par.points.iter().zip(&ser.points) {
            for (pa, sa) in pp.algos.iter().zip(&sp.algos) {
                assert_eq!(pa.name, sa.name, "{}: algo order diverged", dim.id);
                assert_eq!(
                    pa.successes, sa.successes,
                    "{}: success count diverged for {}",
                    dim.id, pa.name
                );
                assert_eq!(
                    pa.cost.mean.to_bits(),
                    sa.cost.mean.to_bits(),
                    "{}: mean cost not bit-identical for {}",
                    dim.id,
                    pa.name
                );
                assert_eq!(
                    pa.mean_explored.to_bits(),
                    sa.mean_explored.to_bits(),
                    "{}: mean explored count diverged for {}",
                    dim.id,
                    pa.name
                );
            }
        }
    }
}

#[test]
fn parallel_sweep_is_stable_across_repeats() {
    // Two parallel executions of the same spec must agree with each
    // other too (no run-to-run interleaving sensitivity).
    let base = quick_base();
    let spec = |_: &mut SimConfig, _: f64| {};
    let a = sweep("rep", "x", &base, &[1.0, 2.0], spec, |_| paper_algos());
    let b = sweep("rep", "x", &base, &[1.0, 2.0], spec, |_| paper_algos());
    assert_eq!(report::csv(&a), report::csv(&b));
}
