//! Valid lower bounds on the optimal embedding cost.
//!
//! The heuristics' quality is usually judged against each other (the
//! optimum is unknown at evaluation scale). A cheap *certified lower
//! bound* turns that relative picture into an absolute one: the
//! reported "optimality-gap ratio" `cost / lower_bound` upper-bounds the
//! true approximation factor.
//!
//! The bound combines two independently valid relaxations:
//!
//! * **VNF term**: every slot must rent *some* instance of its kind, so
//!   the sum of per-kind minimum rental prices is a lower bound on the
//!   objective's first term (reuse cannot make a slot cheaper than the
//!   cheapest instance).
//! * **Link term**: concatenating the chain's embedded paths contains a
//!   walk from the flow source to the destination, and each charged link
//!   is charged at least once — so the price of the cheapest `src → dst`
//!   path lower-bounds the second term (zero when `src == dst`).

use crate::chain::DagSfc;
use crate::cost::CostBreakdown;
use crate::flow::Flow;
use dagsfc_net::routing::{min_cost_path, NoFilter};
use dagsfc_net::Network;

/// Computes a certified lower bound on the optimal objective value.
///
/// Returns `None` when the instance is trivially infeasible (a required
/// kind is hosted nowhere, or the endpoints are disconnected).
pub fn cost_lower_bound(net: &Network, sfc: &DagSfc, flow: &Flow) -> Option<CostBreakdown> {
    let catalog = sfc.catalog();
    let mut vnf = 0.0;
    for layer in sfc.layers() {
        for slot in 0..layer.slot_count() {
            let kind = layer.slot_kind(slot, catalog);
            let cheapest = net
                .hosts_of(kind)
                .iter()
                .filter_map(|&v| net.vnf_price(v, kind).ok())
                .fold(f64::INFINITY, f64::min);
            if !cheapest.is_finite() {
                return None;
            }
            vnf += cheapest * flow.size;
        }
    }
    let link = if flow.src == flow.dst {
        0.0
    } else {
        // lint:allow(raw-routing) — one-shot static bound over the full network; no oracle in scope
        min_cost_path(net, flow.src, flow.dst, &NoFilter)?.price(net) * flow.size
    };
    Some(CostBreakdown { vnf, link })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Layer;
    use crate::solvers::{BbeSolver, ExactSolver, MbbeSolver, MinvSolver, Solver};
    use crate::vnf::VnfCatalog;
    use dagsfc_net::{generator, NetGenConfig, NodeId, VnfTypeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64, nodes: usize) -> Network {
        let cfg = NetGenConfig {
            nodes,
            avg_degree: 4.0,
            vnf_kinds: 5,
            deploy_ratio: 0.6,
            vnf_price_fluctuation: 0.3,
            ..NetGenConfig::default()
        };
        generator::generate(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap()
    }

    fn sfc() -> DagSfc {
        DagSfc::new(
            vec![
                Layer::new(vec![VnfTypeId(0)]),
                Layer::new(vec![VnfTypeId(1), VnfTypeId(2)]),
            ],
            VnfCatalog::new(4),
        )
        .unwrap()
    }

    #[test]
    fn bound_below_every_solver() {
        for seed in 1u64..6 {
            let g = net(seed, 30);
            let flow = Flow::unit(NodeId(0), NodeId(29));
            let lb = cost_lower_bound(&g, &sfc(), &flow).unwrap();
            for solver in [
                Box::new(BbeSolver::new()) as Box<dyn Solver>,
                Box::new(MbbeSolver::new()),
                Box::new(MinvSolver::new()),
            ] {
                let out = solver.solve(&g, &sfc(), &flow).unwrap();
                assert!(
                    out.cost.total() >= lb.total() - 1e-9,
                    "seed {seed}: {} cost {} below bound {}",
                    solver.name(),
                    out.cost.total(),
                    lb.total()
                );
            }
        }
    }

    #[test]
    fn bound_below_certified_optimum() {
        // On tiny instances the exact solver certifies the bound's
        // validity directly.
        for seed in 6u64..10 {
            let g = net(seed, 9);
            let flow = Flow::unit(NodeId(0), NodeId(8));
            let chain =
                DagSfc::sequential(&[VnfTypeId(0), VnfTypeId(1)], VnfCatalog::new(4)).unwrap();
            let Some(lb) = cost_lower_bound(&g, &chain, &flow) else {
                continue;
            };
            let Ok(opt) = ExactSolver::with_k(8).solve(&g, &chain, &flow) else {
                continue;
            };
            assert!(
                opt.cost.total() >= lb.total() - 1e-9,
                "seed {seed}: optimum {} below bound {}",
                opt.cost.total(),
                lb.total()
            );
        }
    }

    #[test]
    fn bound_is_tight_when_everything_colocates() {
        // One node hosts the whole chain and src == dst: the bound's VNF
        // term is exact and the link term is zero.
        let mut g = Network::new();
        g.add_nodes(2);
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(0), VnfTypeId(0), 2.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(0), VnfTypeId(1), 3.0, 10.0).unwrap();
        let chain = DagSfc::sequential(&[VnfTypeId(0), VnfTypeId(1)], VnfCatalog::new(2)).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(0));
        let lb = cost_lower_bound(&g, &chain, &flow).unwrap();
        let out = MbbeSolver::new().solve(&g, &chain, &flow).unwrap();
        assert!((lb.total() - 5.0).abs() < 1e-12);
        assert!(
            (out.cost.total() - lb.total()).abs() < 1e-9,
            "bound is tight here"
        );
    }

    #[test]
    fn missing_kind_and_disconnection_yield_none() {
        let g = net(11, 20);
        let wide = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(40)).unwrap();
        let missing = DagSfc::sequential(&[VnfTypeId(30)], VnfCatalog::new(40)).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(19));
        assert!(cost_lower_bound(&g, &wide, &flow).is_some());
        assert!(cost_lower_bound(&g, &missing, &flow).is_none());
        // Disconnected endpoints.
        let mut g2 = Network::new();
        g2.add_nodes(2);
        g2.deploy_vnf(NodeId(0), VnfTypeId(0), 1.0, 1.0).unwrap();
        let c = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
        assert!(cost_lower_bound(&g2, &c, &Flow::unit(NodeId(0), NodeId(1))).is_none());
    }

    #[test]
    fn gap_ratio_reasonable_on_random_instances() {
        // MBBE should sit within a small constant of this (loose) bound
        // on Table 2-like instances — a coarse absolute-quality check.
        let mut ratio_sum = 0.0;
        let mut n = 0;
        for seed in 20u64..26 {
            let g = net(seed, 50);
            let flow = Flow::unit(NodeId(1), NodeId(48));
            let lb = cost_lower_bound(&g, &sfc(), &flow).unwrap();
            let out = MbbeSolver::new().solve(&g, &sfc(), &flow).unwrap();
            ratio_sum += out.cost.total() / lb.total();
            n += 1;
        }
        let mean_ratio = ratio_sum / n as f64;
        assert!(
            (1.0..2.5).contains(&mean_ratio),
            "mean gap ratio {mean_ratio:.2} out of expected band"
        );
    }
}
