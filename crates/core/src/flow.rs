//! Traffic flows and embedding requests.

use crate::chain::DagSfc;
use dagsfc_net::NodeId;
use serde::{Deserialize, Serialize};

/// A traffic flow (paper §3.2, "Model of Traffic Flow"): size `z`,
/// delivery rate `R`, and a source–destination pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Source node `s`.
    pub src: NodeId,
    /// Destination node `t`.
    pub dst: NodeId,
    /// Delivery rate `R` in rate units; drives all capacity checks.
    pub rate: f64,
    /// Flow size `z`; multiplies every price term of the objective.
    pub size: f64,
}

impl Flow {
    /// A unit flow (`R = z = 1`) between `src` and `dst` — the scale used
    /// throughout the paper's simulations, where only ratios matter.
    pub fn unit(src: NodeId, dst: NodeId) -> Self {
        Flow {
            src,
            dst,
            rate: 1.0,
            size: 1.0,
        }
    }
}

/// A complete embedding request: the chain plus the flow to carry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingRequest {
    /// The DAG-SFC to embed.
    pub sfc: DagSfc,
    /// The traffic flow traversing it.
    pub flow: Flow,
}

impl EmbeddingRequest {
    /// Bundles a chain and a flow.
    pub fn new(sfc: DagSfc, flow: Flow) -> Self {
        EmbeddingRequest { sfc, flow }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Layer;
    use crate::vnf::VnfCatalog;
    use dagsfc_net::VnfTypeId;

    #[test]
    fn unit_flow() {
        let f = Flow::unit(NodeId(0), NodeId(5));
        assert_eq!(f.rate, 1.0);
        assert_eq!(f.size, 1.0);
        assert_eq!(f.src, NodeId(0));
        assert_eq!(f.dst, NodeId(5));
    }

    #[test]
    fn request_bundles() {
        let sfc = DagSfc::new(vec![Layer::new(vec![VnfTypeId(0)])], VnfCatalog::new(2)).unwrap();
        let req = EmbeddingRequest::new(sfc.clone(), Flow::unit(NodeId(1), NodeId(2)));
        assert_eq!(req.sfc, sfc);
        assert_eq!(req.flow.src, NodeId(1));
    }
}
