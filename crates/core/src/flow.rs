//! Traffic flows, embedding requests, and the placement-rule
//! vocabulary (affinity / anti-affinity NF pairs and the precedence
//! order a partial-order chain carries).

use crate::chain::DagSfc;
use dagsfc_net::{NodeId, VnfTypeId};
use serde::{Deserialize, Serialize};

/// Co-location and anti-co-location rules over VNF kinds (Allybokus et
/// al., arXiv 1705.10554): `affinity` pairs must share one substrate
/// node, `anti_affinity` pairs must never share one.
///
/// Semantics, per pair `(a, b)`:
/// * **affinity** — if the chain places at least one slot of kind `a`
///   *and* at least one of kind `b`, then every slot of either kind
///   must land on one single common node (vacuous when either kind is
///   absent from the embedding);
/// * **anti-affinity** — no substrate node may host both a slot of
///   kind `a` and a slot of kind `b`.
///
/// Rules ride on the [`DagSfc`] (see [`DagSfc::with_rules`]) so every
/// carrier of a chain — solver, auditor, daemon, trace — sees them
/// without signature changes; both fields are plain pair lists so the
/// wire form is self-describing.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementRules {
    /// Kind pairs that must co-locate.
    pub affinity: Vec<(VnfTypeId, VnfTypeId)>,
    /// Kind pairs that must never co-locate.
    pub anti_affinity: Vec<(VnfTypeId, VnfTypeId)>,
}

impl PlacementRules {
    /// Whether no rule is present at all.
    pub fn is_empty(&self) -> bool {
        self.affinity.is_empty() && self.anti_affinity.is_empty()
    }
}

/// The precedence edges of a partial-order chain, carried alongside its
/// layered rendering.
///
/// Edges are over *flattened regular-slot positions*: position `p` is
/// the `p`-th regular (non-merger) VNF slot when reading the chain's
/// layers in order. An edge `(i, j)` asserts that position `i`'s layer
/// must come strictly before position `j`'s — which the greedy
/// linear-extension layering guarantees by construction, and which the
/// auditor re-checks independently on every embedding so a hand-built
/// or wire-supplied layering cannot silently violate the DAG.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrecedenceOrder {
    /// Precedence edges `(i, j)` over flattened regular-slot positions.
    pub edges: Vec<(u32, u32)>,
}

impl PrecedenceOrder {
    /// Whether the order imposes no constraint.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// A traffic flow (paper §3.2, "Model of Traffic Flow"): size `z`,
/// delivery rate `R`, and a source–destination pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Flow {
    /// Source node `s`.
    pub src: NodeId,
    /// Destination node `t`.
    pub dst: NodeId,
    /// Delivery rate `R` in rate units; drives all capacity checks.
    pub rate: f64,
    /// Flow size `z`; multiplies every price term of the objective.
    pub size: f64,
    /// Optional end-to-end delay budget `D_max` in microseconds. `None`
    /// means best-effort: no deadline is enforced anywhere. `Some(d)`
    /// makes every solver reject embeddings whose modeled delay exceeds
    /// `d`, and the auditor re-checks the bound independently.
    /// (`Option` also keeps pre-budget serialized requests loadable.)
    pub delay_budget_us: Option<f64>,
}

impl Flow {
    /// A unit flow (`R = z = 1`) between `src` and `dst` — the scale used
    /// throughout the paper's simulations, where only ratios matter.
    pub fn unit(src: NodeId, dst: NodeId) -> Self {
        Flow {
            src,
            dst,
            rate: 1.0,
            size: 1.0,
            delay_budget_us: None,
        }
    }

    /// The same flow with an end-to-end delay budget attached.
    pub fn with_delay_budget(mut self, budget_us: f64) -> Self {
        self.delay_budget_us = Some(budget_us);
        self
    }
}

/// A complete embedding request: the chain plus the flow to carry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingRequest {
    /// The DAG-SFC to embed.
    pub sfc: DagSfc,
    /// The traffic flow traversing it.
    pub flow: Flow,
}

impl EmbeddingRequest {
    /// Bundles a chain and a flow.
    pub fn new(sfc: DagSfc, flow: Flow) -> Self {
        EmbeddingRequest { sfc, flow }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Layer;
    use crate::vnf::VnfCatalog;
    use dagsfc_net::VnfTypeId;

    #[test]
    fn unit_flow() {
        let f = Flow::unit(NodeId(0), NodeId(5));
        assert_eq!(f.rate, 1.0);
        assert_eq!(f.size, 1.0);
        assert_eq!(f.src, NodeId(0));
        assert_eq!(f.dst, NodeId(5));
        assert_eq!(f.delay_budget_us, None);
        let g = f.with_delay_budget(120.0);
        assert_eq!(g.delay_budget_us, Some(120.0));
    }

    /// Pre-budget payloads (no `delay_budget_us` key) must keep
    /// deserializing: the Option field decodes missing keys to `None`.
    #[test]
    fn flow_payload_without_budget_still_loads() {
        let legacy = Flow::unit(NodeId(3), NodeId(7));
        let mut v = legacy.to_value();
        if let serde::value::Value::Object(entries) = &mut v {
            entries.retain(|(k, _)| k.as_str() != "delay_budget_us");
        } else {
            panic!("flow must serialize as an object");
        }
        let back = Flow::from_value(&v).unwrap();
        assert_eq!(back, legacy);
        // And budgets round-trip when present.
        let budgeted = legacy.with_delay_budget(50.0);
        let back = Flow::from_value(&budgeted.to_value()).unwrap();
        assert_eq!(back.delay_budget_us, Some(50.0));
    }

    #[test]
    fn request_bundles() {
        let sfc = DagSfc::new(vec![Layer::new(vec![VnfTypeId(0)])], VnfCatalog::new(2)).unwrap();
        let req = EmbeddingRequest::new(sfc.clone(), Flow::unit(NodeId(1), NodeId(2)));
        assert_eq!(req.sfc, sfc);
        assert_eq!(req.flow.src, NodeId(1));
    }
}
