//! Independent constraint checker for embeddings.
//!
//! Verifies every constraint of the integer model (§3.3) against an
//! [`Embedding`] produced by *any* solver:
//!
//! * (4) every slot is assigned to exactly one node that actually hosts
//!   the required VNF kind (structural + hosting check);
//! * (5)/(6) every inter-layer and inner-layer meta-path is implemented by
//!   a real-path whose endpoints match the assignment and whose links are
//!   contiguous in the network;
//! * (2)/(3) no VNF instance exceeds its processing capability and no
//!   link exceeds its bandwidth, under the multicast-aware loads of
//!   eqs. (7)–(10).

use crate::chain::DagSfc;
use crate::cost::CostBreakdown;
use crate::embedding::Embedding;
use crate::flow::Flow;
use crate::metapath::meta_paths;
use dagsfc_net::{LinkId, Network, NodeId, VnfTypeId, CAP_EPS};
use std::fmt;

/// A violated constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A slot is assigned to a node that does not host its VNF kind.
    SlotNotHosted {
        /// Layer index.
        layer: usize,
        /// Slot index.
        slot: usize,
        /// Offending node.
        node: NodeId,
        /// Required VNF kind.
        kind: VnfTypeId,
    },
    /// A real-path's endpoints do not match its meta-path's endpoints.
    PathEndpointMismatch {
        /// Canonical meta-path index.
        index: usize,
        /// Expected (from, to) nodes.
        expected: (NodeId, NodeId),
        /// Actual (from, to) nodes of the real-path.
        actual: (NodeId, NodeId),
    },
    /// A real-path uses a link that does not connect its adjacent nodes.
    BrokenPath {
        /// Canonical meta-path index.
        index: usize,
    },
    /// A VNF instance is loaded beyond its processing capability.
    VnfOverload {
        /// Hosting node.
        node: NodeId,
        /// Overloaded kind.
        kind: VnfTypeId,
        /// Imposed load.
        load: f64,
        /// Instance capacity.
        capacity: f64,
    },
    /// A link is loaded beyond its bandwidth.
    LinkOverload {
        /// Overloaded link.
        link: LinkId,
        /// Imposed load.
        load: f64,
        /// Link capacity.
        capacity: f64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::SlotNotHosted {
                layer,
                slot,
                node,
                kind,
            } => write!(f, "L{layer}[{slot}]: {node} does not host {kind}"),
            Violation::PathEndpointMismatch {
                index,
                expected,
                actual,
            } => write!(
                f,
                "meta-path #{index}: expected {} → {}, real-path runs {} → {}",
                expected.0, expected.1, actual.0, actual.1
            ),
            Violation::BrokenPath { index } => {
                write!(f, "meta-path #{index}: real-path links are not contiguous")
            }
            Violation::VnfOverload {
                node,
                kind,
                load,
                capacity,
            } => write!(
                f,
                "{kind}@{node}: load {load} exceeds capability {capacity}"
            ),
            Violation::LinkOverload {
                link,
                load,
                capacity,
            } => write!(f, "{link}: load {load} exceeds bandwidth {capacity}"),
        }
    }
}

/// Checks every model constraint; on success returns the embedding's cost.
pub fn validate(
    net: &Network,
    sfc: &DagSfc,
    flow: &Flow,
    emb: &Embedding,
) -> Result<CostBreakdown, Vec<Violation>> {
    let mut violations = Vec::new();
    let catalog = sfc.catalog();

    // Constraint (4): each slot on a hosting node.
    for (l, slots) in emb.assignments().iter().enumerate() {
        let layer = sfc.layer(l);
        for (slot, &node) in slots.iter().enumerate() {
            let kind = layer.slot_kind(slot, catalog);
            if !net.hosts(node, kind) {
                violations.push(Violation::SlotNotHosted {
                    layer: l,
                    slot,
                    node,
                    kind,
                });
            }
        }
    }

    // Constraints (5)/(6): meta-paths implemented by matching, contiguous
    // real-paths.
    for (index, (mp, path)) in meta_paths(sfc).iter().zip(emb.paths()).enumerate() {
        let expected = (
            emb.endpoint_node(flow, mp.from),
            emb.endpoint_node(flow, mp.to),
        );
        let actual = (path.source(), path.target());
        if expected != actual {
            violations.push(Violation::PathEndpointMismatch {
                index,
                expected,
                actual,
            });
        }
        // Contiguity: each link must join its adjacent path nodes.
        let nodes = path.nodes();
        for (i, &l) in path.links().iter().enumerate() {
            let ok = net
                .try_link(l)
                .map(|link| {
                    (link.a == nodes[i] && link.b == nodes[i + 1])
                        || (link.b == nodes[i] && link.a == nodes[i + 1])
                })
                .unwrap_or(false);
            if !ok {
                violations.push(Violation::BrokenPath { index });
                break;
            }
        }
    }

    // Constraints (2)/(3): capacities under the reuse-aware loads. The
    // lenient accounting path is deliberate: a missing instance is
    // already reported per-slot by the hosting check above, and the
    // validator must keep walking the remaining constraints.
    let acct = emb.account_lenient(net, sfc, flow, &mut None);
    for (&(node, kind), &load) in &acct.vnf_load {
        let capacity = net.instance(node, kind).map(|i| i.capacity).unwrap_or(0.0); // missing instance already reported above
        if net.hosts(node, kind) && load > capacity + CAP_EPS {
            violations.push(Violation::VnfOverload {
                node,
                kind,
                load,
                capacity,
            });
        }
    }
    for (i, &load) in acct.link_load.iter().enumerate() {
        let link = LinkId(i as u32);
        let capacity = net.link(link).capacity;
        if load > capacity + CAP_EPS {
            violations.push(Violation::LinkOverload {
                link,
                load,
                capacity,
            });
        }
    }

    if violations.is_empty() {
        Ok(acct.cost)
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Layer;
    use crate::vnf::VnfCatalog;
    use dagsfc_net::Path;

    fn catalog() -> VnfCatalog {
        VnfCatalog::new(4)
    }

    /// Line v0-v1-v2-v3; f0@v1, f1/f2/merger@v2, merger@v3.
    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(4);
        for i in 0..3u32 {
            g.add_link(NodeId(i), NodeId(i + 1), 1.0, 2.0).unwrap();
        }
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 2.0, 1.5).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(1), 3.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(2), 4.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(4), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(3), VnfTypeId(4), 1.0, 10.0).unwrap();
        g
    }

    fn sfc() -> DagSfc {
        DagSfc::new(
            vec![
                Layer::new(vec![VnfTypeId(0)]),
                Layer::new(vec![VnfTypeId(1), VnfTypeId(2)]),
            ],
            catalog(),
        )
        .unwrap()
    }

    fn path(net: &Network, nodes: &[u32]) -> Path {
        Path::from_nodes(net, nodes.iter().map(|&n| NodeId(n)).collect()).unwrap()
    }

    fn good_embedding(g: &Network) -> Embedding {
        Embedding::new(
            &sfc(),
            vec![vec![NodeId(1)], vec![NodeId(2), NodeId(2), NodeId(2)]],
            vec![
                path(g, &[0, 1]),
                path(g, &[1, 2]),
                path(g, &[1, 2]),
                Path::trivial(NodeId(2)),
                Path::trivial(NodeId(2)),
                path(g, &[2, 3]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn valid_embedding_passes_and_returns_cost() {
        let g = net();
        let flow = Flow::unit(NodeId(0), NodeId(3));
        let cost = validate(&g, &sfc(), &flow, &good_embedding(&g)).unwrap();
        assert!((cost.total() - 13.0).abs() < 1e-12);
    }

    #[test]
    fn detects_not_hosted() {
        let g = net();
        let flow = Flow::unit(NodeId(0), NodeId(3));
        // Assign f0 to v0 which hosts nothing.
        let emb = Embedding::new(
            &sfc(),
            vec![vec![NodeId(0)], vec![NodeId(2), NodeId(2), NodeId(2)]],
            vec![
                Path::trivial(NodeId(0)),
                path(&g, &[0, 1, 2]),
                path(&g, &[0, 1, 2]),
                Path::trivial(NodeId(2)),
                Path::trivial(NodeId(2)),
                path(&g, &[2, 3]),
            ],
        )
        .unwrap();
        let errs = validate(&g, &sfc(), &flow, &emb).unwrap_err();
        assert!(errs.iter().any(|v| matches!(
            v,
            Violation::SlotNotHosted { layer: 0, slot: 0, node, .. } if *node == NodeId(0)
        )));
    }

    #[test]
    fn detects_endpoint_mismatch() {
        let g = net();
        let flow = Flow::unit(NodeId(0), NodeId(3));
        let mut paths = good_embedding(&g).paths().to_vec();
        paths[0] = path(&g, &[1, 2]); // should run v0→v1
        let emb = Embedding::new(
            &sfc(),
            vec![vec![NodeId(1)], vec![NodeId(2), NodeId(2), NodeId(2)]],
            paths,
        )
        .unwrap();
        let errs = validate(&g, &sfc(), &flow, &emb).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::PathEndpointMismatch { index: 0, .. })));
    }

    #[test]
    fn detects_vnf_overload() {
        let g = net(); // f0@v1 capacity 1.5
        let flow = Flow {
            src: NodeId(0),
            dst: NodeId(3),
            rate: 2.0, // exceeds 1.5
            size: 1.0,
            delay_budget_us: None,
        };
        let errs = validate(&g, &sfc(), &flow, &good_embedding(&g)).unwrap_err();
        assert!(errs.iter().any(|v| matches!(
            v,
            Violation::VnfOverload { node, kind, .. }
                if *node == NodeId(1) && *kind == VnfTypeId(0)
        )));
    }

    #[test]
    fn detects_link_overload() {
        let g = net(); // link capacity 2.0
        let flow = Flow {
            src: NodeId(0),
            dst: NodeId(3),
            rate: 3.0,
            size: 1.0,
            delay_budget_us: None,
        };
        let errs = validate(&g, &sfc(), &flow, &good_embedding(&g)).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::LinkOverload { .. })));
    }

    #[test]
    fn multicast_load_fits_where_unicast_would_not() {
        // Link capacity 2.0, rate 1.5: the two inter-layer paths share
        // link v1-v2. Multicast loads it once (1.5 ≤ 2.0) — valid.
        // Naive per-path accounting would compute 3.0 and reject.
        let g = net();
        let flow = Flow {
            src: NodeId(0),
            dst: NodeId(3),
            rate: 1.5,
            size: 1.0,
            delay_budget_us: None,
        };
        assert!(validate(&g, &sfc(), &flow, &good_embedding(&g)).is_ok());
    }

    #[test]
    fn violation_display() {
        let v = Violation::LinkOverload {
            link: LinkId(2),
            load: 3.0,
            capacity: 2.0,
        };
        assert!(v.to_string().contains("e2"));
        let v2 = Violation::SlotNotHosted {
            layer: 1,
            slot: 0,
            node: NodeId(4),
            kind: VnfTypeId(2),
        };
        assert!(v2.to_string().contains("L1[0]"));
    }
}
