//! Error types of the DAG-SFC core.

use dagsfc_net::NetError;
use std::fmt;

/// Errors from DAG-SFC model construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A DAG-SFC must contain at least one layer.
    EmptyChain,
    /// A layer must contain at least one VNF.
    EmptyLayer(usize),
    /// A chain referenced a VNF type outside the catalog's regular range.
    NotARegularVnf(dagsfc_net::VnfTypeId),
    /// Embedding shape does not match the chain (wrong layer/slot counts).
    ShapeMismatch(String),
    /// An embedding referenced a VNF instance the network does not
    /// deploy (raised by [`crate::embedding::Embedding::try_account`]).
    MissingVnfInstance {
        /// Node the embedding assigned the slot to.
        node: dagsfc_net::NodeId,
        /// VNF kind the slot requires.
        kind: dagsfc_net::VnfTypeId,
    },
    /// Underlying network error.
    Net(NetError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyChain => write!(f, "DAG-SFC has no layers"),
            ModelError::EmptyLayer(l) => write!(f, "layer {l} has no VNFs"),
            ModelError::NotARegularVnf(v) => {
                write!(f, "{v} is not a regular VNF type of the catalog")
            }
            ModelError::ShapeMismatch(what) => write!(f, "embedding shape mismatch: {what}"),
            ModelError::MissingVnfInstance { node, kind } => {
                write!(
                    f,
                    "embedding uses VNF {kind} on {node}, which deploys no such instance"
                )
            }
            ModelError::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<NetError> for ModelError {
    fn from(e: NetError) -> Self {
        ModelError::Net(e)
    }
}

/// Stable prefix of [`SolveError::NoFeasibleEmbedding`] reasons that
/// report a *deadline* failure (the embedding search found no candidate
/// within the flow's delay budget) as opposed to a capacity failure.
/// Serve-side statistics classify rejections on this prefix, so it must
/// never change without migrating the classifiers.
pub const DEADLINE_INFEASIBLE_PREFIX: &str = "deadline infeasible";

/// Formats the canonical deadline-infeasible reason string.
pub fn deadline_infeasible_reason(delay_us: f64, budget_us: f64) -> String {
    format!("{DEADLINE_INFEASIBLE_PREFIX}: best delay {delay_us:.3} us > budget {budget_us:.3} us")
}

/// Stable prefix of [`SolveError::NoFeasibleEmbedding`] reasons that
/// report a *placement-rule* failure — the request's affinity /
/// anti-affinity pairs or its precedence order cannot be satisfied —
/// as opposed to a capacity or deadline failure. Serve-side statistics
/// classify rejections on this prefix, so it must never change without
/// migrating the classifiers.
pub const RULE_INFEASIBLE_PREFIX: &str = "placement-rule infeasible";

/// Formats the canonical rule-infeasible reason string.
pub fn rule_infeasible_reason(detail: &str) -> String {
    format!("{RULE_INFEASIBLE_PREFIX}: {detail}")
}

/// Errors from embedding solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The solver exhausted its search space without a feasible embedding.
    NoFeasibleEmbedding {
        /// Solver that failed.
        solver: &'static str,
        /// Human-readable reason (missing VNF kind, saturated links, …).
        reason: String,
    },
    /// The request itself is malformed (e.g. a required VNF kind is hosted
    /// nowhere in the network).
    Infeasible(String),
    /// Model-level failure.
    Model(ModelError),
    /// The solver produced an embedding, but the audit gate
    /// ([`crate::solvers::audit_outcome`]) found it violates the model
    /// constraints or misreports its cost — a solver bug surfaced as an
    /// error instead of a corrupted result.
    AuditFailed {
        /// Solver that produced the offending embedding.
        solver: &'static str,
        /// The violations, rendered one per entry.
        violations: Vec<String>,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NoFeasibleEmbedding { solver, reason } => {
                write!(f, "{solver}: no feasible embedding found ({reason})")
            }
            SolveError::Infeasible(why) => write!(f, "request infeasible: {why}"),
            SolveError::Model(e) => write!(f, "model error: {e}"),
            SolveError::AuditFailed { solver, violations } => {
                write!(
                    f,
                    "{solver}: embedding failed the constraint audit: {}",
                    violations.join("; ")
                )
            }
        }
    }
}

impl SolveError {
    /// Whether this failure reports a blown delay budget rather than a
    /// capacity/coverage problem. True exactly for
    /// [`SolveError::NoFeasibleEmbedding`] reasons carrying the
    /// [`DEADLINE_INFEASIBLE_PREFIX`].
    pub fn is_deadline_infeasible(&self) -> bool {
        matches!(
            self,
            SolveError::NoFeasibleEmbedding { reason, .. }
                if reason.starts_with(DEADLINE_INFEASIBLE_PREFIX)
        )
    }

    /// Whether this failure reports unsatisfiable placement rules
    /// (affinity / anti-affinity / precedence order) rather than a
    /// capacity or deadline problem. True exactly for
    /// [`SolveError::NoFeasibleEmbedding`] and [`SolveError::Infeasible`]
    /// reasons carrying the [`RULE_INFEASIBLE_PREFIX`] (the latter is
    /// how pre-solve admission reports a chain whose layering
    /// contradicts its own declared precedence order).
    pub fn is_rule_infeasible(&self) -> bool {
        match self {
            SolveError::NoFeasibleEmbedding { reason, .. } => {
                reason.starts_with(RULE_INFEASIBLE_PREFIX)
            }
            SolveError::Infeasible(reason) => reason.starts_with(RULE_INFEASIBLE_PREFIX),
            _ => false,
        }
    }
}

impl std::error::Error for SolveError {}

impl From<ModelError> for SolveError {
    fn from(e: ModelError) -> Self {
        SolveError::Model(e)
    }
}

impl From<NetError> for SolveError {
    fn from(e: NetError) -> Self {
        SolveError::Model(ModelError::Net(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsfc_net::{NodeId, VnfTypeId};

    #[test]
    fn displays() {
        assert!(ModelError::EmptyChain.to_string().contains("no layers"));
        assert!(ModelError::NotARegularVnf(VnfTypeId(9))
            .to_string()
            .contains("f(9)"));
        let se = SolveError::NoFeasibleEmbedding {
            solver: "BBE",
            reason: "layer 2 uncovered".into(),
        };
        assert!(se.to_string().contains("BBE"));
    }

    #[test]
    fn deadline_classification() {
        let deadline = SolveError::NoFeasibleEmbedding {
            solver: "BBE",
            reason: deadline_infeasible_reason(57.0, 40.0),
        };
        assert!(deadline.is_deadline_infeasible());
        assert!(deadline.to_string().contains("57.000"));
        let capacity = SolveError::NoFeasibleEmbedding {
            solver: "BBE",
            reason: "links saturated".into(),
        };
        assert!(!capacity.is_deadline_infeasible());
        assert!(!SolveError::Infeasible("no such VNF".into()).is_deadline_infeasible());
    }

    #[test]
    fn rule_classification() {
        let rule = SolveError::NoFeasibleEmbedding {
            solver: "MINV",
            reason: rule_infeasible_reason("affinity (f(0), f(1)) admits no common node"),
        };
        assert!(rule.is_rule_infeasible());
        assert!(!rule.is_deadline_infeasible());
        assert!(rule.to_string().contains("affinity"));
        let capacity = SolveError::NoFeasibleEmbedding {
            solver: "MINV",
            reason: "links saturated".into(),
        };
        assert!(!capacity.is_rule_infeasible());
        let deadline = SolveError::NoFeasibleEmbedding {
            solver: "MINV",
            reason: deadline_infeasible_reason(57.0, 40.0),
        };
        assert!(!deadline.is_rule_infeasible());
    }

    #[test]
    fn conversions() {
        let ne = NetError::UnknownNode(NodeId(1));
        let me: ModelError = ne.clone().into();
        assert_eq!(me, ModelError::Net(ne.clone()));
        let se: SolveError = me.clone().into();
        assert_eq!(se, SolveError::Model(me));
        let se2: SolveError = ne.clone().into();
        assert_eq!(se2, SolveError::Model(ModelError::Net(ne)));
    }
}
