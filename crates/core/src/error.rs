//! Error types of the DAG-SFC core.

use dagsfc_net::NetError;
use std::fmt;

/// Errors from DAG-SFC model construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A DAG-SFC must contain at least one layer.
    EmptyChain,
    /// A layer must contain at least one VNF.
    EmptyLayer(usize),
    /// A chain referenced a VNF type outside the catalog's regular range.
    NotARegularVnf(dagsfc_net::VnfTypeId),
    /// Embedding shape does not match the chain (wrong layer/slot counts).
    ShapeMismatch(String),
    /// An embedding referenced a VNF instance the network does not
    /// deploy (raised by [`crate::embedding::Embedding::try_account`]).
    MissingVnfInstance {
        /// Node the embedding assigned the slot to.
        node: dagsfc_net::NodeId,
        /// VNF kind the slot requires.
        kind: dagsfc_net::VnfTypeId,
    },
    /// Underlying network error.
    Net(NetError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyChain => write!(f, "DAG-SFC has no layers"),
            ModelError::EmptyLayer(l) => write!(f, "layer {l} has no VNFs"),
            ModelError::NotARegularVnf(v) => {
                write!(f, "{v} is not a regular VNF type of the catalog")
            }
            ModelError::ShapeMismatch(what) => write!(f, "embedding shape mismatch: {what}"),
            ModelError::MissingVnfInstance { node, kind } => {
                write!(
                    f,
                    "embedding uses VNF {kind} on {node}, which deploys no such instance"
                )
            }
            ModelError::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<NetError> for ModelError {
    fn from(e: NetError) -> Self {
        ModelError::Net(e)
    }
}

/// Errors from embedding solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The solver exhausted its search space without a feasible embedding.
    NoFeasibleEmbedding {
        /// Solver that failed.
        solver: &'static str,
        /// Human-readable reason (missing VNF kind, saturated links, …).
        reason: String,
    },
    /// The request itself is malformed (e.g. a required VNF kind is hosted
    /// nowhere in the network).
    Infeasible(String),
    /// Model-level failure.
    Model(ModelError),
    /// The solver produced an embedding, but the audit gate
    /// ([`crate::solvers::audit_outcome`]) found it violates the model
    /// constraints or misreports its cost — a solver bug surfaced as an
    /// error instead of a corrupted result.
    AuditFailed {
        /// Solver that produced the offending embedding.
        solver: &'static str,
        /// The violations, rendered one per entry.
        violations: Vec<String>,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NoFeasibleEmbedding { solver, reason } => {
                write!(f, "{solver}: no feasible embedding found ({reason})")
            }
            SolveError::Infeasible(why) => write!(f, "request infeasible: {why}"),
            SolveError::Model(e) => write!(f, "model error: {e}"),
            SolveError::AuditFailed { solver, violations } => {
                write!(
                    f,
                    "{solver}: embedding failed the constraint audit: {}",
                    violations.join("; ")
                )
            }
        }
    }
}

impl std::error::Error for SolveError {}

impl From<ModelError> for SolveError {
    fn from(e: ModelError) -> Self {
        SolveError::Model(e)
    }
}

impl From<NetError> for SolveError {
    fn from(e: NetError) -> Self {
        SolveError::Model(ModelError::Net(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsfc_net::{NodeId, VnfTypeId};

    #[test]
    fn displays() {
        assert!(ModelError::EmptyChain.to_string().contains("no layers"));
        assert!(ModelError::NotARegularVnf(VnfTypeId(9))
            .to_string()
            .contains("f(9)"));
        let se = SolveError::NoFeasibleEmbedding {
            solver: "BBE",
            reason: "layer 2 uncovered".into(),
        };
        assert!(se.to_string().contains("BBE"));
    }

    #[test]
    fn conversions() {
        let ne = NetError::UnknownNode(NodeId(1));
        let me: ModelError = ne.clone().into();
        assert_eq!(me, ModelError::Net(ne.clone()));
        let se: SolveError = me.clone().into();
        assert_eq!(se, SolveError::Model(me));
        let se2: SolveError = ne.clone().into();
        assert_eq!(se2, SolveError::Model(ModelError::Net(ne)));
    }
}
