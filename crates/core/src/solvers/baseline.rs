//! The paper's benchmark algorithms (§5.1): RANV and MINV.
//!
//! Both follow the same two-phase shape — assign every VNF of the chain
//! to a node with enough processing capability, then implement all
//! meta-paths with minimum-cost (Dijkstra) paths on the residual
//! network. They differ only in the node choice: RANV picks uniformly at
//! random among feasible hosts, MINV picks the cheapest feasible host.
//! Neither considers link proximity when assigning, which is exactly the
//! weakness BBE/MBBE exploit.

use super::{layering, precheck, RuleFilter, SolveCtx, SolveOutcome, Solver, SolverStats};
use crate::chain::DagSfc;
use crate::embedding::Embedding;
use crate::error::rule_infeasible_reason;
use crate::error::SolveError;
use crate::flow::Flow;
use crate::metapath::{meta_paths, MetaPathKind};
use dagsfc_net::{LinkId, Network, NetworkState, NodeId, Path, VnfTypeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use std::sync::Mutex;
use std::time::Instant;

/// Node-selection policy of a two-phase baseline.
trait PickNode {
    fn pick(&self, net: &Network, kind: VnfTypeId, feasible: &[NodeId]) -> NodeId;
}

/// RANV: random feasible node per VNF + min-cost paths.
#[derive(Debug)]
pub struct RanvSolver {
    rng: Mutex<StdRng>,
}

impl RanvSolver {
    /// A RANV instance with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RanvSolver {
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }
}

impl PickNode for RanvSolver {
    fn pick(&self, _net: &Network, _kind: VnfTypeId, feasible: &[NodeId]) -> NodeId {
        *feasible
            .choose(
                &mut *self
                    .rng
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            )
            // lint:allow(expect) — invariant: feasible set checked non-empty
            .expect("feasible set checked non-empty")
    }
}

impl Solver for RanvSolver {
    fn name(&self) -> &'static str {
        "RANV"
    }

    fn solve_raw(
        &self,
        ctx: &SolveCtx<'_>,
        sfc: &DagSfc,
        flow: &Flow,
    ) -> Result<SolveOutcome, SolveError> {
        assign_then_route(ctx, sfc, flow, self, "RANV")
    }
}

/// MINV: cheapest feasible node per VNF + min-cost paths.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinvSolver;

impl MinvSolver {
    /// A MINV instance.
    pub fn new() -> Self {
        MinvSolver
    }
}

impl PickNode for MinvSolver {
    fn pick(&self, net: &Network, kind: VnfTypeId, feasible: &[NodeId]) -> NodeId {
        *feasible
            .iter()
            .min_by(|&&a, &&b| {
                let pa = net.vnf_price(a, kind).unwrap_or(f64::INFINITY);
                let pb = net.vnf_price(b, kind).unwrap_or(f64::INFINITY);
                pa.total_cmp(&pb).then(a.cmp(&b))
            })
            // lint:allow(expect) — invariant: feasible set checked non-empty
            .expect("feasible set checked non-empty")
    }
}

impl Solver for MinvSolver {
    fn name(&self) -> &'static str {
        "MINV"
    }

    fn solve_raw(
        &self,
        ctx: &SolveCtx<'_>,
        sfc: &DagSfc,
        flow: &Flow,
    ) -> Result<SolveOutcome, SolveError> {
        assign_then_route(ctx, sfc, flow, self, "MINV")
    }
}

/// Shared two-phase skeleton: assignment pass, then routing pass with
/// residual-capacity tracking and multicast-aware reservation (a link
/// already reserved for a layer's inter-layer multicast group carries
/// the extra branches for free).
fn assign_then_route(
    ctx: &SolveCtx<'_>,
    sfc: &DagSfc,
    flow: &Flow,
    pick: &dyn PickNode,
    solver: &'static str,
) -> Result<SolveOutcome, SolveError> {
    let start = Instant::now();
    let net = ctx.net;
    precheck(net, sfc, flow)?;
    let catalog = sfc.catalog();
    let mut state = NetworkState::new(net);
    // Residual-filtered trees must stay private to this solve (each
    // solve owns its NetworkState), so routing goes through an oracle
    // *session*, invalidated after every reservation that changed the
    // residual capacities.
    let mut session = ctx.oracle.session();
    let mut explored = 0usize;

    // Phase 1: assign every slot (parallel VNFs and mergers). The rule
    // filter is greedy-consistent: each pick must stay compatible with
    // the slots placed before it, so a rule conflict surfaces the
    // moment (not after) the candidate set empties.
    let rule_filter = RuleFilter::new(sfc);
    let mut rule_rejected = 0usize;
    let mut placed: Vec<(VnfTypeId, NodeId)> = Vec::new();
    let mut assignments: Vec<Vec<NodeId>> = Vec::with_capacity(sfc.depth());
    for layer in layering::layers(sfc) {
        let mut slots = Vec::with_capacity(layer.slot_count());
        for slot in 0..layer.slot_count() {
            let kind = layer.slot_kind(slot, catalog);
            let feasible: Vec<NodeId> = net
                .hosts_of(kind)
                .iter()
                .copied()
                .filter(|&n| state.vnf_fits(n, kind, flow.rate))
                .collect();
            explored += feasible.len();
            if feasible.is_empty() {
                return Err(SolveError::NoFeasibleEmbedding {
                    solver,
                    reason: format!("no node with residual capability for {kind}"),
                });
            }
            let feasible = match &rule_filter {
                Some(rf) => {
                    let before = feasible.len();
                    let kept: Vec<NodeId> = feasible
                        .into_iter()
                        .filter(|&n| rf.admits(&placed, kind, n))
                        .collect();
                    rule_rejected += before - kept.len();
                    if kept.is_empty() {
                        return Err(SolveError::NoFeasibleEmbedding {
                            solver,
                            reason: rule_infeasible_reason(&format!(
                                "placement rules leave no admissible host for {kind}"
                            )),
                        });
                    }
                    kept
                }
                None => feasible,
            };
            let node = pick.pick(net, kind, &feasible);
            state
                .reserve_vnf(node, kind, flow.rate)
                // lint:allow(expect) — invariant: feasibility just checked
                .expect("feasibility just checked");
            if rule_filter.is_some() {
                placed.push((kind, node));
            }
            slots.push(node);
        }
        assignments.push(slots);
    }

    // Phase 2: minimum-cost paths per meta-path, honoring residual
    // bandwidth and per-layer multicast sharing.
    let mut group_links: HashMap<usize, HashSet<LinkId>> = HashMap::new();
    let mut paths: Vec<Path> = Vec::new();
    let endpoint = |ep| match ep {
        crate::metapath::Endpoint::Source => flow.src,
        crate::metapath::Endpoint::Destination => flow.dst,
        crate::metapath::Endpoint::Slot { layer, slot } => assignments[layer][slot],
    };
    for mp in meta_paths(sfc) {
        let from = endpoint(mp.from);
        let to = endpoint(mp.to);
        let path = match mp.kind {
            MetaPathKind::InterLayer => {
                let shared = group_links.entry(mp.group).or_default().clone();
                let filter = |l: LinkId| shared.contains(&l) || state.link_fits(l, flow.rate);
                // Context 1+group: the filter admits the group's already
                // reserved links, so trees are reusable only within the
                // same multicast group.
                let path = session
                    .min_cost_path_with(from, to, 1 + mp.group as u64, &filter)
                    .ok_or_else(|| SolveError::NoFeasibleEmbedding {
                        solver,
                        reason: format!("no bandwidth-feasible path {from} → {to}"),
                    })?;
                let group = group_links.entry(mp.group).or_default();
                let mut reserved = false;
                for &l in path.links() {
                    if group.insert(l) {
                        state.reserve_link(l, flow.rate).map_err(|_| {
                            SolveError::NoFeasibleEmbedding {
                                solver,
                                reason: format!("link {l} saturated while reserving"),
                            }
                        })?;
                        reserved = true;
                    }
                }
                if reserved {
                    session.invalidate();
                }
                path
            }
            MetaPathKind::InnerLayer => {
                let filter = |l: LinkId| state.link_fits(l, flow.rate);
                let path = session
                    .min_cost_path_with(from, to, 0, &filter)
                    .ok_or_else(|| SolveError::NoFeasibleEmbedding {
                        solver,
                        reason: format!("no bandwidth-feasible path {from} → {to}"),
                    })?;
                state.reserve_path(&path, flow.rate).map_err(|_| {
                    SolveError::NoFeasibleEmbedding {
                        solver,
                        reason: "inner-layer path saturated while reserving".into(),
                    }
                })?;
                if !path.is_empty() {
                    session.invalidate();
                }
                path
            }
        };
        paths.push(path);
    }

    let embedding = Embedding::new(sfc, assignments, paths)?;
    let cost = embedding.try_cost(net, sfc, flow)?;
    Ok(SolveOutcome {
        embedding,
        cost,
        stats: SolverStats {
            explored,
            kept: 1,
            elapsed: start.elapsed(),
            cache_hits: session.hits(),
            cache_misses: session.misses(),
            candidates_rule_rejected: rule_rejected,
            ..SolverStats::default()
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Layer;
    use crate::validate::validate;
    use crate::vnf::VnfCatalog;

    /// v0..v4 path + chord; f0@{v1:1.0, v2:5.0}, f1@{v3}, merger@{v3}.
    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(5);
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 1.0, 10.0).unwrap();
        g.add_link(NodeId(2), NodeId(3), 1.0, 10.0).unwrap();
        g.add_link(NodeId(3), NodeId(4), 1.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(3), 0.5, 10.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(0), 5.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(3), VnfTypeId(1), 2.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(3), VnfTypeId(2), 1.0, 10.0).unwrap();
        g
    }

    fn catalog() -> VnfCatalog {
        VnfCatalog::new(2)
    }

    #[test]
    fn minv_picks_cheapest_host() {
        let g = net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], catalog()).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(4));
        let out = MinvSolver::new().solve(&g, &sfc, &flow).unwrap();
        validate(&g, &sfc, &flow, &out.embedding).unwrap();
        assert_eq!(out.embedding.node_of(0, 0), NodeId(1)); // price 1.0 < 5.0
                                                            // cost: f0 1.0 + links v0-v1 (1) + v1-v3-v4 (0.5+1) = 3.5
        assert!((out.cost.total() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn ranv_is_deterministic_under_seed_and_valid() {
        let g = net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0), VnfTypeId(1)], catalog()).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(4));
        let a = RanvSolver::new(11).solve(&g, &sfc, &flow).unwrap();
        let b = RanvSolver::new(11).solve(&g, &sfc, &flow).unwrap();
        assert_eq!(a.embedding, b.embedding);
        validate(&g, &sfc, &flow, &a.embedding).unwrap();
    }

    #[test]
    fn ranv_varies_across_seeds() {
        let g = net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], catalog()).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(4));
        let picks: HashSet<NodeId> = (0..32)
            .map(|s| {
                RanvSolver::new(s)
                    .solve(&g, &sfc, &flow)
                    .unwrap()
                    .embedding
                    .node_of(0, 0)
            })
            .collect();
        assert_eq!(picks.len(), 2, "both hosts should appear across seeds");
    }

    #[test]
    fn parallel_layer_handled_with_merger() {
        let g = net();
        let sfc = DagSfc::new(
            vec![Layer::new(vec![VnfTypeId(0), VnfTypeId(1)])],
            catalog(),
        )
        .unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(4));
        let out = MinvSolver::new().solve(&g, &sfc, &flow).unwrap();
        validate(&g, &sfc, &flow, &out.embedding).unwrap();
        assert_eq!(out.embedding.assignments()[0].len(), 3);
        assert_eq!(out.embedding.assignments()[0][2], NodeId(3)); // merger host
    }

    #[test]
    fn fails_when_capacity_exhausted() {
        let mut g = Network::new();
        g.add_nodes(2);
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(0), VnfTypeId(0), 1.0, 1.5).unwrap();
        // Chain uses f0 twice: 2 × rate 1.0 > capability 1.5.
        let sfc = DagSfc::sequential(&[VnfTypeId(0), VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(1));
        assert!(matches!(
            MinvSolver::new().solve(&g, &sfc, &flow),
            Err(SolveError::NoFeasibleEmbedding { .. })
        ));
    }

    #[test]
    fn fails_when_links_saturated() {
        let mut g = Network::new();
        g.add_nodes(2);
        g.add_link(NodeId(0), NodeId(1), 1.0, 0.5).unwrap(); // tiny bandwidth
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 1.0, 10.0).unwrap();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(1));
        assert!(matches!(
            MinvSolver::new().solve(&g, &sfc, &flow),
            Err(SolveError::NoFeasibleEmbedding { .. })
        ));
    }

    #[test]
    fn solver_names() {
        assert_eq!(RanvSolver::new(0).name(), "RANV");
        assert_eq!(MinvSolver::new().name(), "MINV");
    }
}
