//! Step 1 of BBE: the forward search (paper §4.2).
//!
//! For layer `l` the forward search expands BFS rings from the layer's
//! start node `v_{l-1}` over the *whole* network until the discovered
//! node set hosts every VNF kind the layer requires (parallel VNFs plus
//! the merger). The result is the Forward Search Tree, whose dotted
//! arrows later instantiate the inter-layer meta-paths.

use super::tree::SearchTree;
use crate::chain::Layer;
use crate::vnf::VnfCatalog;
use dagsfc_net::{Network, NodeId};

/// Runs the forward search for `layer` starting at `start`.
///
/// `x_max` is MBBE's strategy (1): a bound on the forward node set size.
/// The returned FST reports `covered() == false` when the layer's kinds
/// cannot all be found (within the bound).
pub fn forward_search(
    net: &Network,
    start: NodeId,
    layer: &Layer,
    catalog: &VnfCatalog,
    x_max: Option<usize>,
) -> SearchTree {
    let required = layer.required_kinds(catalog);
    SearchTree::grow(net, start, &required, |_| true, x_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagsfc_net::VnfTypeId;

    /// Line: v0 - v1 - v2 - v3 with f0@v1, f1@v2, merger@v3.
    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(4);
        for i in 0..3u32 {
            g.add_link(NodeId(i), NodeId(i + 1), 1.0, 10.0).unwrap();
        }
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(1), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(3), VnfTypeId(2), 1.0, 10.0).unwrap(); // merger
        g
    }

    #[test]
    fn singleton_layer_needs_only_its_kind() {
        let g = net();
        let c = VnfCatalog::new(2); // merger = f(2)
        let layer = Layer::new(vec![VnfTypeId(0)]);
        let fst = forward_search(&g, NodeId(0), &layer, &c, None);
        assert!(fst.covered());
        assert!(fst.contains(NodeId(1)));
        assert!(!fst.contains(NodeId(2))); // stopped before ring 2
    }

    #[test]
    fn parallel_layer_requires_merger_too() {
        let g = net();
        let c = VnfCatalog::new(2);
        let layer = Layer::new(vec![VnfTypeId(0), VnfTypeId(1)]);
        let fst = forward_search(&g, NodeId(0), &layer, &c, None);
        assert!(fst.covered());
        // Must have walked all the way to v3 for the merger.
        assert!(fst.contains(NodeId(3)));
    }

    #[test]
    fn x_max_propagates() {
        let g = net();
        let c = VnfCatalog::new(2);
        let layer = Layer::new(vec![VnfTypeId(0), VnfTypeId(1)]);
        let fst = forward_search(&g, NodeId(0), &layer, &c, Some(2));
        assert!(!fst.covered());
    }
}
