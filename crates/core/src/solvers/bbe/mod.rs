//! BBE — Breadth-first Backtracking Embedding (paper §4) — and its
//! complexity-reduced variant MBBE (§4.5).
//!
//! Per layer, BBE runs a forward search from the layer's start node
//! (building an FST), a backward search from every merger candidate
//! (building BSTs), and generates candidate sub-solutions from each
//! FST–BST pair; candidates accumulate in a sub-solution tree whose
//! cheapest complete leaf — after connecting the last layer to the
//! destination with a minimum-cost path — is the returned embedding.
//!
//! MBBE layers three strategies on top (paper §4.5):
//! 1. the forward node set is capped at `X_max`;
//! 2. meta-paths are instantiated with minimum-cost paths on the
//!    real-time network instead of tree traversals;
//! 3. only the cheapest `X_d` sub-solutions per FST–BST pair (and per
//!    sub-solution-tree node) are retained, making the tree an
//!    `X_d`-tree.
//!
//! Two engineering bounds not in the paper keep worst cases finite
//! without changing the algorithm on realistic inputs: path/assignment
//! enumeration per pair is capped (cheapest-first, so truncation drops
//! the expensive tail), and each sub-solution-tree level is capped at
//! `max_level_width` cheapest nodes. Classic BBE with unbounded
//! enumeration is exponential (the paper reports the same and stops BBE
//! at SFC size 5).

mod backward;
mod candidates;
mod forward;
mod subtree;
mod tree;

pub use tree::{SearchTree, TreeNode};

use self::backward::backward_search;
use self::candidates::{parallel_layer_subs, singleton_layer_subs, EngineCtx, LayerSub};
use self::forward::forward_search;
use self::subtree::SubTree;
use self::tree::SearchTree as Fst;
use super::instrument::{Counters, Instrument};
use super::{precheck, SolveCtx, SolveOutcome, Solver};
use crate::chain::{DagSfc, Layer};
use crate::delay::DelayModel;
use crate::embedding::Embedding;
use crate::error::{deadline_infeasible_reason, SolveError};
use crate::flow::Flow;
use crate::vnf::VnfCatalog;
use dagsfc_net::{NodeId, Path};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Tuning knobs of the BBE/MBBE engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BbeConfig {
    /// MBBE strategy (1): bound on the forward-search node set, `None`
    /// for classic BBE.
    pub x_max: Option<usize>,
    /// MBBE strategy (3): cheapest-`X_d` pruning of sub-solutions per
    /// FST–BST pair and per sub-solution-tree node; `None` keeps all.
    pub x_d: Option<usize>,
    /// MBBE strategy (2): instantiate meta-paths with minimum-cost paths
    /// on the real-time network instead of FST/BST traversals.
    pub use_min_cost_paths: bool,
    /// MBBE-ST extension (not in the paper): route each parallel layer's
    /// inter-layer multicast as a Takahashi–Matsuyama Steiner tree,
    /// maximizing the eq. (9) link sharing. Implies meta-path routing on
    /// the real-time network for inter-layer paths.
    pub use_steiner_multicast: bool,
    /// Retry with doubled `x_max` (up to the network size) when a layer
    /// cannot be covered — keeps MBBE's "always returns a solution"
    /// robustness on sparse deployments.
    pub adaptive_x_max: bool,
    /// Real-path alternatives kept per node pair in tree-traversal mode
    /// (the paper's `h`).
    pub max_paths_per_pair: usize,
    /// Raw prev-chain enumeration bound behind `max_paths_per_pair`.
    pub max_raw_chains: usize,
    /// Bound on VNF-allocation combinations per FST–BST pair (step i).
    pub max_assignment_combos: usize,
    /// Bound on path-choice combinations per allocation (steps ii+iii).
    pub max_path_combos: usize,
    /// Candidate hosting nodes considered per slot, cheapest rental
    /// first.
    pub max_candidates_per_slot: usize,
    /// Global cap on sub-solution-tree nodes per level (cheapest kept).
    pub max_level_width: usize,
    /// Optional end-to-end delay SLA (extension): among the complete
    /// candidates, return the cheapest whose delay under the given model
    /// stays within the bound; candidates violating it are skipped.
    /// When `None` but the flow carries a `delay_budget_us`, the engine
    /// promotes the budget to a constraint under the canonical
    /// substrate model ([`DelayModel::for_network`]).
    pub delay_constraint: Option<DelayConstraint>,
    /// Prune sub-solution-tree nodes as soon as their accumulated
    /// per-layer delay exceeds the active delay constraint, instead of
    /// scoring delays only on finished leaves. Safe: the accumulated
    /// layer delays are a lower bound on every completion's end-to-end
    /// delay (the final path only adds non-negative latency), so
    /// pruning never removes a feasible candidate. On by default; the
    /// flag exists for the pruned-vs-unpruned differential test.
    pub early_delay_pruning: bool,
    /// Score the merger candidates of a parallel layer on crossbeam
    /// scoped threads. The reduction is deterministic (results are
    /// re-ordered by merger index), so this only changes wall-clock, not
    /// output. Off by default: the sim runner already saturates the cores
    /// with run-level parallelism.
    pub parallel_merger_scoring: bool,
}

/// A delay SLA attached to an embedding request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayConstraint {
    /// The delay model used to score candidate embeddings.
    pub model: DelayModel,
    /// Upper bound on end-to-end delay (µs).
    pub max_delay_us: f64,
}

impl Default for BbeConfig {
    /// Classic BBE: no `X_max`/`X_d`, tree-traversal paths.
    fn default() -> Self {
        BbeConfig {
            x_max: None,
            x_d: None,
            use_min_cost_paths: false,
            use_steiner_multicast: false,
            adaptive_x_max: false,
            max_paths_per_pair: 3,
            max_raw_chains: 32,
            max_assignment_combos: 64,
            max_path_combos: 16,
            max_candidates_per_slot: 8,
            max_level_width: 2048,
            delay_constraint: None,
            early_delay_pruning: true,
            parallel_merger_scoring: false,
        }
    }
}

impl BbeConfig {
    /// The MBBE configuration used in the evaluation: `X_max = 40`,
    /// `X_d = 4`, min-cost-path instantiation, adaptive retry.
    pub fn mbbe() -> Self {
        BbeConfig {
            x_max: Some(40),
            x_d: Some(4),
            use_min_cost_paths: true,
            adaptive_x_max: true,
            ..BbeConfig::default()
        }
    }

    /// The MBBE-ST extension: MBBE plus Steiner-tree inter-layer
    /// multicast routing.
    pub fn mbbe_steiner() -> Self {
        BbeConfig {
            use_steiner_multicast: true,
            ..BbeConfig::mbbe()
        }
    }
}

/// The classic BBE solver (paper Algorithm 1).
#[derive(Debug, Clone, Default)]
pub struct BbeSolver {
    /// Engine configuration (defaults to classic BBE).
    pub config: BbeConfig,
}

impl BbeSolver {
    /// BBE with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Solver for BbeSolver {
    fn name(&self) -> &'static str {
        "BBE"
    }

    fn solve_raw(
        &self,
        ctx: &SolveCtx<'_>,
        sfc: &DagSfc,
        flow: &Flow,
    ) -> Result<SolveOutcome, SolveError> {
        run(ctx, sfc, flow, &self.config, "BBE")
    }
}

/// The Mini-path BBE solver (paper §4.5).
#[derive(Debug, Clone)]
pub struct MbbeSolver {
    /// Engine configuration (defaults to [`BbeConfig::mbbe`]).
    pub config: BbeConfig,
}

impl Default for MbbeSolver {
    fn default() -> Self {
        MbbeSolver {
            config: BbeConfig::mbbe(),
        }
    }
}

impl MbbeSolver {
    /// MBBE with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// MBBE with explicit `X_max` and `X_d`.
    pub fn with_limits(x_max: usize, x_d: usize) -> Self {
        MbbeSolver {
            config: BbeConfig {
                x_max: Some(x_max),
                x_d: Some(x_d),
                ..BbeConfig::mbbe()
            },
        }
    }
}

impl Solver for MbbeSolver {
    fn name(&self) -> &'static str {
        "MBBE"
    }

    fn solve_raw(
        &self,
        ctx: &SolveCtx<'_>,
        sfc: &DagSfc,
        flow: &Flow,
    ) -> Result<SolveOutcome, SolveError> {
        run(ctx, sfc, flow, &self.config, "MBBE")
    }
}

/// MBBE-ST — an extension beyond the paper: MBBE whose inter-layer
/// multicasts ride heuristic Steiner trees instead of independent
/// minimum-cost paths, squeezing more sharing out of the eq. (9)
/// multicast accounting. See the `ablation` bench for its effect.
#[derive(Debug, Clone)]
pub struct MbbeStSolver {
    /// Engine configuration (defaults to [`BbeConfig::mbbe_steiner`]).
    pub config: BbeConfig,
}

impl Default for MbbeStSolver {
    fn default() -> Self {
        MbbeStSolver {
            config: BbeConfig::mbbe_steiner(),
        }
    }
}

impl MbbeStSolver {
    /// MBBE-ST with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Solver for MbbeStSolver {
    fn name(&self) -> &'static str {
        "MBBE-ST"
    }

    fn solve_raw(
        &self,
        ctx: &SolveCtx<'_>,
        sfc: &DagSfc,
        flow: &Flow,
    ) -> Result<SolveOutcome, SolveError> {
        run(ctx, sfc, flow, &self.config, "MBBE-ST")
    }
}

/// Engine entry point shared by BBE and MBBE.
fn run(
    ctx: &SolveCtx<'_>,
    sfc: &DagSfc,
    flow: &Flow,
    config: &BbeConfig,
    solver: &'static str,
) -> Result<SolveOutcome, SolveError> {
    let start = Instant::now();
    let net = ctx.net;
    precheck(net, sfc, flow)?;
    let mut cfg = config.clone();
    // Promote a request-level delay budget to a solver-level constraint
    // under the canonical substrate model, so the search itself prunes
    // and ranks deadline-aware instead of relying solely on the
    // post-hoc gate in `Solver::solve_in`. An explicit SLA in the
    // config keeps precedence (it may carry a richer model).
    if cfg.delay_constraint.is_none() {
        if let Some(budget) = flow.delay_budget_us {
            cfg.delay_constraint = Some(DelayConstraint {
                model: ctx.delay_model().clone(),
                max_delay_us: budget,
            });
        }
    }
    loop {
        // Counters is the always-on sink so every solve surfaces its
        // statistics; search code internal to `attempt` stays generic so
        // a NoInstrument caller would compile the probes away entirely.
        let mut ins = Counters::default();
        match attempt(ctx, sfc, flow, &cfg, solver, &mut ins) {
            Ok((embedding, explored, kept)) => {
                let cost = embedding.try_cost(net, sfc, flow)?;
                let mut stats = ins.stats;
                stats.explored = explored;
                stats.kept = kept;
                stats.elapsed = start.elapsed();
                return Ok(SolveOutcome {
                    embedding,
                    cost,
                    stats,
                });
            }
            Err(e) => {
                // Adaptive X_max: double and retry while the bound is the
                // plausible culprit.
                let retry = cfg.adaptive_x_max && cfg.x_max.is_some_and(|x| x < net.node_count());
                if !retry {
                    return Err(e);
                }
                cfg.x_max = cfg.x_max.map(|x| (x * 2).min(net.node_count()));
            }
        }
    }
}

/// Sub-solutions produced from one FST–BST (merger) pair.
struct MergerScore {
    /// Pair sub-solutions, already `X_d`-truncated cheapest-first.
    subs: Vec<LayerSub>,
    /// BST size for instrumentation.
    bst_nodes: usize,
    /// Candidates produced before the per-pair truncation.
    generated: usize,
}

/// Scores one merger candidate: backward search plus candidate
/// generation (paper steps 2–3 for one FST–BST pair). Deterministic and
/// independent of every other merger, which is what makes the parallel
/// fan-out below safe.
fn score_merger(
    ctx: &EngineCtx<'_>,
    layer: &Layer,
    fst: &Fst,
    merger_node: NodeId,
    cfg: &BbeConfig,
    catalog: &VnfCatalog,
) -> Option<MergerScore> {
    let bst = backward_search(ctx.net, merger_node, layer, catalog, fst);
    if !bst.covered() {
        return None;
    }
    let mut subs = parallel_layer_subs(ctx, layer, fst, &bst);
    let generated = subs.len();
    // Strategy (3), per FST–BST pair.
    if let Some(xd) = cfg.x_d {
        subs.truncate(xd);
    }
    Some(MergerScore {
        subs,
        bst_nodes: bst.len(),
        generated,
    })
}

/// Scores every merger candidate of a parallel layer, optionally on
/// crossbeam scoped threads ([`BbeConfig::parallel_merger_scoring`]).
///
/// The reduction is deterministic either way: workers pull merger
/// indices from a shared atomic counter and push `(index, score)` pairs,
/// and the collected results are re-sorted by index before use — so the
/// output is bit-identical to the sequential loop regardless of thread
/// interleaving (each pair's computation depends only on its own merger;
/// oracle evictions at worst rebuild identical trees).
fn score_mergers(
    ctx: &EngineCtx<'_>,
    layer: &Layer,
    fst: &Fst,
    mergers: &[NodeId],
    cfg: &BbeConfig,
    catalog: &VnfCatalog,
) -> Vec<MergerScore> {
    if !cfg.parallel_merger_scoring || mergers.len() < 2 {
        return mergers
            .iter()
            .filter_map(|&m| score_merger(ctx, layer, fst, m, cfg, catalog))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let scored: Mutex<Vec<(usize, Option<MergerScore>)>> =
        Mutex::new(Vec::with_capacity(mergers.len()));
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(mergers.len());
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&merger) = mergers.get(i) else {
                    break;
                };
                let score = score_merger(ctx, layer, fst, merger, cfg, catalog);
                scored.lock().push((i, score));
            });
        }
    });
    let mut scored = scored.into_inner();
    scored.sort_by_key(|&(i, _)| i);
    scored.into_iter().filter_map(|(_, s)| s).collect()
}

/// The memoized expansion of one layer from one start node.
///
/// Within a layer, everything downstream of a sub-solution-tree parent —
/// forward search, backward searches, candidate generation, the per-node
/// `X_d` truncation — is a pure function of the parent's *end node*; the
/// parent only contributes its accumulated cost. Levels hold up to
/// `max_level_width` parents but at most `|V|` distinct end nodes, so
/// caching by end node collapses the layer's dominant cost by the
/// level-width / distinct-end-node ratio (often 30x+ deep in a BBE
/// search). Instrumentation totals are stored alongside and replayed per
/// parent, keeping every counter identical to the unmemoized loop.
struct StartMemo {
    /// Final sub-solutions (sorted cheapest-first, `X_d`-truncated).
    subs: Vec<LayerSub>,
    /// FST size (replayed into `fst_nodes` per parent).
    fst_nodes: usize,
    /// Whether the FST covered the layer (uncovered ⇒ no subs).
    covered: bool,
    /// Summed BST sizes over all merger candidates.
    bst_nodes: usize,
    /// Candidates generated before any truncation.
    generated: usize,
    /// Candidates dropped by per-pair and per-node truncation.
    pruned: usize,
    /// Per-parent `explored` increment (candidates after per-pair, before
    /// per-node truncation — the pre-memoization accounting).
    explored: usize,
}

/// Expands `layer` from `start_node`: forward search, merger scoring (or
/// singleton generation), sort, and `X_d` truncation. Pure in
/// `start_node`; see [`StartMemo`].
fn expand_start(
    ctx: &EngineCtx<'_>,
    layer: &Layer,
    start_node: NodeId,
    cfg: &BbeConfig,
    catalog: &VnfCatalog,
) -> StartMemo {
    let fst = forward_search(ctx.net, start_node, layer, catalog, cfg.x_max);
    let mut memo = StartMemo {
        subs: Vec::new(),
        fst_nodes: fst.len(),
        covered: fst.covered(),
        bst_nodes: 0,
        generated: 0,
        pruned: 0,
        explored: 0,
    };
    if !memo.covered {
        return memo;
    }
    let mut subs: Vec<LayerSub> = if layer.needs_merger() {
        let mergers: Vec<NodeId> = fst
            .hosting(catalog.merger())
            .into_iter()
            .map(|i| fst.node(i).node)
            .collect();
        let mut collected = Vec::new();
        for score in score_mergers(ctx, layer, &fst, &mergers, cfg, catalog) {
            memo.bst_nodes += score.bst_nodes;
            memo.generated += score.generated;
            memo.pruned += score.generated - score.subs.len();
            collected.extend(score.subs);
        }
        collected
    } else {
        let subs = singleton_layer_subs(ctx, layer, &fst);
        memo.generated += subs.len();
        subs
    };
    memo.explored = subs.len();
    // Strategy (3), per sub-solution-tree node: cheapest X_d children
    // (the X_d-tree of the paper).
    subs.sort_by(|a, b| a.cost.total().total_cmp(&b.cost.total()));
    if let Some(xd) = cfg.x_d {
        if subs.len() > xd {
            memo.pruned += subs.len() - xd;
            subs.truncate(xd);
        }
    }
    memo.subs = subs;
    memo
}

/// Exact delay contribution of one layer sub-solution under `model`:
/// the slowest branch (inter-layer path + processing + inner path)
/// plus the merge overhead for parallel layers. Mirrors one layer term
/// of [`DelayModel::embedding_delay`], so accumulating it down the
/// sub-solution tree yields each node's share of the end-to-end delay
/// exactly — and a lower bound on any completion, since the final path
/// only adds non-negative latency.
fn sub_delay_us(model: &DelayModel, layer: &Layer, catalog: &VnfCatalog, sub: &LayerSub) -> f64 {
    let merger = layer.needs_merger();
    let mut slowest: f64 = 0.0;
    for slot in 0..layer.width() {
        let kind = layer.slot_kind(slot, catalog);
        let mut branch = model.path_us(&sub.inter_paths[slot]) + model.proc(kind);
        if merger {
            branch += model.path_us(&sub.inner_paths[slot]);
        }
        slowest = slowest.max(branch);
    }
    if merger {
        slowest += model.merge_us;
    }
    slowest
}

/// One search attempt under a fixed configuration.
fn attempt<I: Instrument>(
    ctx: &SolveCtx<'_>,
    sfc: &DagSfc,
    flow: &Flow,
    cfg: &BbeConfig,
    solver: &'static str,
    ins: &mut I,
) -> Result<(Embedding, usize, usize), SolveError> {
    let net = ctx.net;
    let catalog = *sfc.catalog();
    let ctx = EngineCtx::new(net, catalog, *flow, cfg, &ctx.oracle);
    let mut tree = SubTree::new(flow.src);
    let mut level: Vec<usize> = vec![0];
    let mut explored = 0usize;
    let substrate_n = net.node_count();
    let dc = cfg.delay_constraint.as_ref();
    // Accumulated layer delays per sub-solution-tree node, indexed like
    // the tree's arena (root = 0.0). Maintained only under a delay
    // constraint; drives early pruning and the LARAC final-path repair.
    let mut node_delay: Vec<f64> = vec![0.0];

    for l in 0..sfc.depth() {
        // Per-layer wall clock only when a recording sink asks for it.
        let layer_start = if I::ENABLED {
            Some(Instant::now())
        } else {
            None
        };
        let layer = super::layering::layer(sfc, l);
        let mut next_level: Vec<usize> = Vec::new();
        // Cheapest accumulated delay among this layer's delay-pruned
        // nodes — evidence for classifying an empty level as a deadline
        // (not capacity) failure.
        let mut layer_delay_pruned: Option<f64> = None;
        // End-node memo, fresh per layer (expansions depend on the layer).
        let mut memo: Vec<Option<StartMemo>> =
            std::iter::repeat_with(|| None).take(substrate_n).collect();
        for &parent in &level {
            ins.nodes_expanded(1);
            let start_node = tree.node(parent).end_node;
            let slot = &mut memo[start_node.index()];
            if slot.is_none() {
                *slot = Some(expand_start(&ctx, layer, start_node, cfg, &catalog));
            }
            // lint:allow(expect) — invariant: filled just above
            let m = slot.as_ref().expect("memo slot filled");
            ins.fst_nodes(m.fst_nodes);
            if !m.covered {
                continue;
            }
            ins.bst_nodes(m.bst_nodes);
            ins.candidates_generated(m.generated);
            ins.candidates_pruned(m.pruned);
            explored += m.explored;
            for sub in &m.subs {
                let Some(dc) = dc else {
                    next_level.push(tree.insert(parent, sub.clone()));
                    continue;
                };
                let d = node_delay[parent] + sub_delay_us(&dc.model, layer, &catalog, sub);
                if cfg.early_delay_pruning && d > dc.max_delay_us + 1e-9 {
                    // Already over budget with layers still to embed and
                    // the final path unpaid: no completion can recover.
                    ins.candidates_delay_rejected(1);
                    layer_delay_pruned = Some(layer_delay_pruned.map_or(d, |b: f64| b.min(d)));
                    continue;
                }
                let idx = tree.insert(parent, sub.clone());
                debug_assert_eq!(idx, node_delay.len());
                node_delay.push(d);
                next_level.push(idx);
            }
        }
        if next_level.is_empty() {
            let (h, m) = ctx.cache_counts();
            ins.cache(h, m);
            // A level emptied by delay pruning is a deadline failure:
            // capacity-feasible sub-solutions existed, every one blew
            // the budget.
            if let (Some(dc), Some(best)) = (dc, layer_delay_pruned) {
                return Err(SolveError::NoFeasibleEmbedding {
                    solver,
                    reason: deadline_infeasible_reason(best, dc.max_delay_us),
                });
            }
            return Err(SolveError::NoFeasibleEmbedding {
                solver,
                reason: format!("layer {l} produced no feasible sub-solution"),
            });
        }
        // Global level cap: keep the cheapest prefixes.
        next_level.sort_by(|&a, &b| tree.node(a).cum_cost.total_cmp(&tree.node(b).cum_cost));
        if next_level.len() > cfg.max_level_width {
            ins.candidates_pruned(next_level.len() - cfg.max_level_width);
            next_level.truncate(cfg.max_level_width);
        }
        level = next_level;
        if let Some(t) = layer_start {
            ins.layer_wall(t.elapsed());
        }
    }

    // Connect each leaf to the destination with a minimum-cost path
    // (Algorithm 1, lines 9–10), then take the cheapest valid candidate.
    //
    // Every leaf shares the one destination, so a single dst-rooted
    // Dijkstra tree prices them all: links are undirected, so the tree's
    // distance to a leaf's end node *is* the exact end → dst min-cost —
    // the per-leaf exact version of the `bounds.rs` link-term lower
    // bound. Candidates are ranked best-first by that completed total
    // and the final path is materialized lazily (reversed tree walk)
    // only for candidates actually attempted, so the common case
    // extracts exactly one path instead of one per leaf. Under a delay
    // SLA the per-leaf forward search is kept: equal-cost final paths
    // can differ in hop count, which the delay model observes.
    let dst_tree = if cfg.delay_constraint.is_none() {
        Some(ctx.oracle_tree(flow.dst))
    } else {
        None
    };
    let mut finals: Vec<(f64, usize, Option<Path>)> = Vec::new();
    for &leaf in &level {
        let end = tree.node(leaf).end_node;
        match &dst_tree {
            Some(dt) => {
                let remaining = if end == flow.dst {
                    Some(0.0)
                } else {
                    dt.dist_to(end)
                };
                if let Some(d) = remaining {
                    finals.push((tree.node(leaf).cum_cost + d * flow.size, leaf, None));
                }
            }
            None => {
                if let Some(p) = ctx.min_cost_path(end, flow.dst) {
                    let total = tree.node(leaf).cum_cost + p.price(net) * flow.size;
                    finals.push((total, leaf, Some(p)));
                }
            }
        }
    }
    finals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let kept = tree.len();
    let (h, m) = ctx.cache_counts();
    ins.cache(h, m);
    // Cheapest end-to-end delay among deadline-rejected candidates, and
    // the rejected leaves themselves (for the LARAC repair pass).
    let mut best_rejected: Option<f64> = None;
    let mut deadline_rejected: Vec<usize> = Vec::new();
    for (_, leaf, eager_path) in finals {
        let final_path = match eager_path {
            Some(p) => p,
            None => {
                let end = tree.node(leaf).end_node;
                if end == flow.dst {
                    Path::trivial(end)
                } else {
                    match dst_tree.as_ref().and_then(|dt| dt.path_to(end)) {
                        Some(p) => p.reversed(),
                        None => continue,
                    }
                }
            }
        };
        let embedding = assemble(sfc, &tree, leaf, final_path)?;
        if let Some(dc) = dc {
            let delay = dc.model.embedding_delay(sfc, &embedding, flow);
            if delay > dc.max_delay_us + 1e-9 {
                // Blown SLA is counted and remembered — the rejection
                // split (deadline vs capacity) and the failure reason
                // below depend on it. The leaf stays in play for the
                // LARAC repair pass.
                ins.candidates_delay_rejected(1);
                best_rejected = Some(best_rejected.map_or(delay, |b: f64| b.min(delay)));
                deadline_rejected.push(leaf);
                continue; // violates the SLA; try the next-cheapest
            }
        }
        if crate::validate::validate(net, sfc, flow, &embedding).is_ok() {
            return Ok((embedding, explored, kept));
        }
    }

    // LARAC repair pass: every candidate blew the budget with its
    // min-cost final path. A delay-bounded final path (constrained
    // shortest path via the oracle's LARAC mode) trades final-hop price
    // for latency headroom; the repaired candidate is re-scored under
    // the SLA model and re-validated, so the swap is sound even when
    // the SLA model differs from the substrate propagation table LARAC
    // optimizes over. Leaves are tried cheapest-lineage-first.
    if let Some(dc) = dc {
        if dc.model.link_delay_us.is_some() {
            for leaf in deadline_rejected {
                let end = tree.node(leaf).end_node;
                if end == flow.dst {
                    continue; // final path already trivial: nothing to repair
                }
                let slack = dc.max_delay_us - node_delay[leaf];
                if slack.is_nan() || slack <= 0.0 {
                    continue;
                }
                let Some(p) = ctx.min_cost_path_bounded(end, flow.dst, slack) else {
                    continue;
                };
                let repaired_delay = node_delay[leaf] + dc.model.path_us(&p);
                if repaired_delay > dc.max_delay_us + 1e-9 {
                    continue;
                }
                let embedding = assemble(sfc, &tree, leaf, p)?;
                if crate::validate::validate(net, sfc, flow, &embedding).is_ok() {
                    return Ok((embedding, explored, kept));
                }
            }
        }
    }

    // Candidates that reached the destination but blew the budget make
    // this a deadline failure; otherwise it is the capacity/coverage
    // fallthrough.
    if let (Some(dc), Some(best)) = (dc, best_rejected) {
        return Err(SolveError::NoFeasibleEmbedding {
            solver,
            reason: deadline_infeasible_reason(best, dc.max_delay_us),
        });
    }
    Err(SolveError::NoFeasibleEmbedding {
        solver,
        reason: "no complete candidate reached the destination within capacity and delay bound"
            .into(),
    })
}

/// Reconstructs the [`Embedding`] from a sub-solution-tree leaf.
fn assemble(
    sfc: &DagSfc,
    tree: &SubTree,
    leaf: usize,
    final_path: Path,
) -> Result<Embedding, SolveError> {
    let lineage = tree.lineage(leaf);
    debug_assert_eq!(lineage.len(), sfc.depth());
    let mut assignments = Vec::with_capacity(sfc.depth());
    let mut paths = Vec::new();
    for sub in &lineage {
        assignments.push(sub.assignment.clone());
        paths.extend(sub.inter_paths.iter().cloned());
        paths.extend(sub.inner_paths.iter().cloned());
    }
    paths.push(final_path);
    Embedding::new(sfc, assignments, paths).map_err(SolveError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Layer;
    use crate::validate::validate;
    use crate::vnf::VnfCatalog;
    use dagsfc_net::Network;
    use dagsfc_net::{NodeId, VnfTypeId};

    /// Deterministic 6-node test network:
    ///
    /// ```text
    /// v0 —1— v1 —1— v2 —1— v5
    ///  \      |      |
    ///   2     1      1
    ///    \    |      |
    ///     —— v3 —1— v4
    /// ```
    /// f0@{v1,v3}, f1@{v2,v4}, f2@{v3}, merger f3@{v2,v4}.
    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(6);
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 1.0, 10.0).unwrap();
        g.add_link(NodeId(2), NodeId(5), 1.0, 10.0).unwrap();
        g.add_link(NodeId(0), NodeId(3), 2.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(3), 1.0, 10.0).unwrap();
        g.add_link(NodeId(2), NodeId(4), 1.0, 10.0).unwrap();
        g.add_link(NodeId(3), NodeId(4), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(3), VnfTypeId(0), 1.5, 10.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(1), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(4), VnfTypeId(1), 1.2, 10.0).unwrap();
        g.deploy_vnf(NodeId(3), VnfTypeId(2), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(3), 0.5, 10.0).unwrap();
        g.deploy_vnf(NodeId(4), VnfTypeId(3), 0.5, 10.0).unwrap();
        g
    }

    fn catalog() -> VnfCatalog {
        VnfCatalog::new(3) // merger = f(3)
    }

    #[test]
    fn bbe_embeds_sequential_chain() {
        let g = net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0), VnfTypeId(1)], catalog()).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(5));
        let out = BbeSolver::new().solve(&g, &sfc, &flow).unwrap();
        let cost = validate(&g, &sfc, &flow, &out.embedding).unwrap();
        assert!((cost.total() - out.cost.total()).abs() < 1e-9);
        // Optimal by hand: f0@v1 (1.0) + f1@v2 (1.0) + links
        // v0-v1 (1) + v1-v2 (1) + v2-v5 (1) = 5.0.
        assert!((out.cost.total() - 5.0).abs() < 1e-9, "{}", out.cost);
        assert!(out.stats.explored >= 1);
    }

    #[test]
    fn bbe_embeds_parallel_layer() {
        let g = net();
        let sfc = DagSfc::new(
            vec![Layer::new(vec![VnfTypeId(0), VnfTypeId(1)])],
            catalog(),
        )
        .unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(5));
        let out = BbeSolver::new().solve(&g, &sfc, &flow).unwrap();
        validate(&g, &sfc, &flow, &out.embedding).unwrap();
        // Hand-optimal: f0@v1, f1@v2, merger@v2:
        // vnf 1+1+0.5 = 2.5; inter v0-v1 (1) + v0-v1-v2 dedups v0-v1 →
        // +v1-v2 (1); inner v1→v2 (1) + trivial; final v2-v5 (1).
        // total = 2.5 + 3 + 1 = 6.5.
        assert!((out.cost.total() - 6.5).abs() < 1e-9, "{}", out.cost);
    }

    #[test]
    fn mbbe_matches_bbe_on_small_instances() {
        let g = net();
        let sfc = DagSfc::new(
            vec![
                Layer::new(vec![VnfTypeId(0), VnfTypeId(1)]),
                Layer::new(vec![VnfTypeId(2)]),
            ],
            catalog(),
        )
        .unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(5));
        let bbe = BbeSolver::new().solve(&g, &sfc, &flow).unwrap();
        let mbbe = MbbeSolver::new().solve(&g, &sfc, &flow).unwrap();
        validate(&g, &sfc, &flow, &mbbe.embedding).unwrap();
        // The paper observes MBBE ≈ BBE; on this instance they coincide.
        assert!((bbe.cost.total() - mbbe.cost.total()).abs() < 1e-9);
    }

    #[test]
    fn reports_infeasible_kind() {
        let g = net();
        let sfc = DagSfc::sequential(&[VnfTypeId(2), VnfTypeId(2)], catalog()).unwrap();
        // f2 only on v3 — feasible; but a kind with no host fails fast.
        let missing = DagSfc::sequential(
            &[VnfTypeId(0)],
            VnfCatalog::new(9), // kinds 0..9, but net only hosts 0..3
        )
        .unwrap();
        let _ = sfc;
        let err = BbeSolver::new()
            .solve(&g, &missing, &Flow::unit(NodeId(0), NodeId(5)))
            .map(|_| ());
        assert!(err.is_ok() || matches!(err, Err(SolveError::Infeasible(_))));
        // A chain needing an unhosted kind:
        let really_missing = DagSfc::sequential(&[VnfTypeId(7)], VnfCatalog::new(9)).unwrap();
        assert!(matches!(
            BbeSolver::new().solve(&g, &really_missing, &Flow::unit(NodeId(0), NodeId(5))),
            Err(SolveError::Infeasible(_))
        ));
    }

    #[test]
    fn adaptive_x_max_recovers_from_tight_bound() {
        let g = net();
        let sfc = DagSfc::sequential(&[VnfTypeId(2)], catalog()).unwrap(); // f2 only on v3
        let flow = Flow::unit(NodeId(5), NodeId(0)); // far start
                                                     // X_max = 1 cannot cover; adaptive retry must succeed.
        let solver = MbbeSolver {
            config: BbeConfig {
                x_max: Some(1),
                adaptive_x_max: true,
                ..BbeConfig::mbbe()
            },
        };
        let out = solver.solve(&g, &sfc, &flow).unwrap();
        validate(&g, &sfc, &flow, &out.embedding).unwrap();
        // Without adaptivity the same bound fails.
        let rigid = MbbeSolver {
            config: BbeConfig {
                x_max: Some(1),
                adaptive_x_max: false,
                ..BbeConfig::mbbe()
            },
        };
        assert!(matches!(
            rigid.solve(&g, &sfc, &flow),
            Err(SolveError::NoFeasibleEmbedding { .. })
        ));
    }

    #[test]
    fn solver_names() {
        assert_eq!(BbeSolver::new().name(), "BBE");
        assert_eq!(MbbeSolver::new().name(), "MBBE");
        assert_eq!(MbbeStSolver::new().name(), "MBBE-ST");
        assert_eq!(MbbeSolver::with_limits(10, 2).config.x_max, Some(10));
        assert!(BbeConfig::mbbe_steiner().use_steiner_multicast);
    }

    #[test]
    fn mbbe_st_valid_and_competitive() {
        let g = net();
        let sfc = DagSfc::new(
            vec![
                Layer::new(vec![VnfTypeId(0), VnfTypeId(1)]),
                Layer::new(vec![VnfTypeId(2)]),
            ],
            catalog(),
        )
        .unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(5));
        let st = MbbeStSolver::new().solve(&g, &sfc, &flow).unwrap();
        validate(&g, &sfc, &flow, &st.embedding).unwrap();
        let plain = MbbeSolver::new().solve(&g, &sfc, &flow).unwrap();
        // Steiner sharing can only reduce this instance's inter-layer
        // link charge; allow numerical ties.
        assert!(
            st.cost.total() <= plain.cost.total() + 1e-9,
            "MBBE-ST {} worse than MBBE {}",
            st.cost,
            plain.cost
        );
    }

    /// A layer whose two VNFs sit along a cheap chain while each VNF's
    /// individual min-cost path from the start is a disjoint shortcut:
    /// only the Steiner variant discovers the shared trunk.
    #[test]
    fn mbbe_st_beats_mbbe_on_chain_topology() {
        let mut g = Network::new();
        g.add_nodes(5); // 0=start/src, 1,2 chain, 3 unused, 4 dst
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 0.5, 10.0).unwrap();
        g.add_link(NodeId(0), NodeId(2), 1.3, 10.0).unwrap();
        g.add_link(NodeId(2), NodeId(4), 0.5, 10.0).unwrap();
        g.add_link(NodeId(3), NodeId(4), 1.0, 10.0).unwrap();
        g.add_link(NodeId(0), NodeId(3), 1.0, 10.0).unwrap();
        // f0 only on v1, f1 only on v2, merger only on v2.
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(1), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(3), 0.5, 10.0).unwrap();
        let sfc = DagSfc::new(
            vec![Layer::new(vec![VnfTypeId(0), VnfTypeId(1)])],
            catalog(),
        )
        .unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(4));
        let st = MbbeStSolver::new().solve(&g, &sfc, &flow).unwrap();
        let plain = MbbeSolver::new().solve(&g, &sfc, &flow).unwrap();
        validate(&g, &sfc, &flow, &st.embedding).unwrap();
        // Plain MBBE routes v0→v2 via the 1.3 shortcut (disjoint from
        // v0→v1): inter cost 2.3. Steiner rides the chain: 1.5.
        assert!(
            st.cost.total() < plain.cost.total() - 0.5,
            "expected a strict Steiner win: ST {} vs MBBE {}",
            st.cost,
            plain.cost
        );
    }

    #[test]
    fn colocated_chain_uses_trivial_paths() {
        // Whole chain on one node: v3 hosts f0 and f2.
        let g = net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0), VnfTypeId(2)], catalog()).unwrap();
        let flow = Flow::unit(NodeId(3), NodeId(3));
        let out = BbeSolver::new().solve(&g, &sfc, &flow).unwrap();
        validate(&g, &sfc, &flow, &out.embedding).unwrap();
        // All on v3: vnf 1.5 + 1.0, no links.
        assert!((out.cost.total() - 2.5).abs() < 1e-9, "{}", out.cost);
        assert!(out.cost.link.abs() < 1e-12);
    }

    #[test]
    fn parallel_merger_scoring_is_bit_identical() {
        // The scoped-thread fan-out must be a pure wall-clock change:
        // the index-sorted reduction has to reproduce the sequential
        // embedding bit for bit, including tie-breaks.
        let g = net();
        let sfc = DagSfc::new(
            vec![
                Layer::new(vec![VnfTypeId(0), VnfTypeId(1)]),
                Layer::new(vec![VnfTypeId(2)]),
            ],
            catalog(),
        )
        .unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(5));
        let sequential = MbbeSolver::new().solve(&g, &sfc, &flow).unwrap();
        let mut parallel = MbbeSolver::new();
        parallel.config.parallel_merger_scoring = true;
        let parallel = parallel.solve(&g, &sfc, &flow).unwrap();
        assert_eq!(sequential.embedding, parallel.embedding);
        assert_eq!(
            sequential.cost.total().to_bits(),
            parallel.cost.total().to_bits()
        );
        // Same for classic BBE (tree-traversal candidate generation).
        let bbe_seq = BbeSolver::new().solve(&g, &sfc, &flow).unwrap();
        let mut bbe_par = BbeSolver::new();
        bbe_par.config.parallel_merger_scoring = true;
        let bbe_par = bbe_par.solve(&g, &sfc, &flow).unwrap();
        assert_eq!(bbe_seq.embedding, bbe_par.embedding);
        assert_eq!(
            bbe_seq.cost.total().to_bits(),
            bbe_par.cost.total().to_bits()
        );
    }

    #[test]
    fn stats_counters_populate() {
        let g = net();
        let sfc = DagSfc::new(
            vec![
                Layer::new(vec![VnfTypeId(0), VnfTypeId(1)]),
                Layer::new(vec![VnfTypeId(2)]),
            ],
            catalog(),
        )
        .unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(5));
        let ctx = SolveCtx::new(&g);
        let out = MbbeSolver::new().solve_in(&ctx, &sfc, &flow).unwrap();
        let s = &out.stats;
        assert!(s.nodes_expanded > 0, "nodes_expanded = 0");
        assert!(s.fst_nodes > 0, "fst_nodes = 0");
        assert!(s.candidates_generated > 0, "candidates_generated = 0");
        assert!(
            s.candidates_generated >= s.candidates_pruned,
            "pruned {} > generated {}",
            s.candidates_pruned,
            s.candidates_generated
        );
        assert_eq!(s.layer_wall.len(), sfc.depth(), "one wall-time per layer");
        // First solve on a cold oracle: misses dominate. Re-solving the
        // same flow through the same context must now hit the cache.
        assert!(s.cache_misses > 0, "cold solve should miss");
        let again = MbbeSolver::new().solve_in(&ctx, &sfc, &flow).unwrap();
        assert!(
            again.stats.cache_hits > 0,
            "warm solve should hit the shared oracle"
        );
        assert_eq!(out.embedding, again.embedding);
        assert!(again.stats.cache_hit_rate() > 0.0);
    }
}

#[cfg(test)]
mod delay_tests {
    use super::*;
    use crate::delay::DelayModel;
    use crate::validate::validate;
    use crate::vnf::VnfCatalog;
    use dagsfc_net::{Network, NodeId, VnfTypeId};

    /// Two hosts one hop from the source: v1 is pricey but two hops from
    /// the destination; v2 is cheap but five hops away.
    fn sla_net() -> Network {
        let mut g = Network::new();
        g.add_nodes(7);
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.add_link(NodeId(0), NodeId(2), 1.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(6), 1.0, 10.0).unwrap();
        g.add_link(NodeId(2), NodeId(3), 0.05, 10.0).unwrap();
        g.add_link(NodeId(3), NodeId(4), 0.05, 10.0).unwrap();
        g.add_link(NodeId(4), NodeId(5), 0.05, 10.0).unwrap();
        g.add_link(NodeId(5), NodeId(6), 0.05, 10.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 5.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(0), 1.0, 10.0).unwrap();
        g
    }

    fn model() -> DelayModel {
        DelayModel::uniform(2, 0.0, 10.0, 0.0) // pure hop delay
    }

    #[test]
    fn sla_forces_the_short_route() {
        let g = sla_net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(6));

        // Unconstrained: the cheap host wins despite five hops.
        let free = MbbeSolver::new().solve(&g, &sfc, &flow).unwrap();
        assert_eq!(free.embedding.node_of(0, 0), NodeId(2));
        let d_free = model().embedding_delay(&sfc, &free.embedding, &flow);
        assert!((d_free - 50.0).abs() < 1e-9);

        // With a 30µs SLA only the pricey near host qualifies.
        let sla = MbbeSolver {
            config: BbeConfig {
                delay_constraint: Some(DelayConstraint {
                    model: model(),
                    max_delay_us: 30.0,
                }),
                ..BbeConfig::mbbe()
            },
        };
        let bounded = sla.solve(&g, &sfc, &flow).unwrap();
        assert_eq!(bounded.embedding.node_of(0, 0), NodeId(1));
        let d = model().embedding_delay(&sfc, &bounded.embedding, &flow);
        assert!(d <= 30.0 + 1e-9);
        assert!(bounded.cost.total() > free.cost.total());
        validate(&g, &sfc, &flow, &bounded.embedding).unwrap();
    }

    /// `sla_net` with real substrate propagation delays (10 µs per
    /// link): via v1 the route totals 20 µs, via v2 it totals 50 µs.
    fn delayed_sla_net() -> Network {
        let mut g = sla_net();
        for l in 0..7u32 {
            g.set_link_delay(dagsfc_net::LinkId(l), 10.0).unwrap();
        }
        g
    }

    /// A flow-level `delay_budget_us` must shape the search itself
    /// (promoted to a canonical-model constraint), and rejected
    /// candidates must surface in `candidates_delay_rejected`.
    #[test]
    fn flow_budget_is_promoted_and_counted() {
        let g = delayed_sla_net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
        let free = MbbeSolver::new()
            .solve(&g, &sfc, &Flow::unit(NodeId(0), NodeId(6)))
            .unwrap();
        assert_eq!(free.embedding.node_of(0, 0), NodeId(2));
        assert_eq!(free.stats.candidates_delay_rejected, 0);

        let flow = Flow::unit(NodeId(0), NodeId(6)).with_delay_budget(30.0);
        let out = MbbeSolver::new().solve(&g, &sfc, &flow).unwrap();
        assert_eq!(out.embedding.node_of(0, 0), NodeId(1));
        let d = DelayModel::for_network(&g).embedding_delay(&sfc, &out.embedding, &flow);
        assert!(d <= 30.0 + 1e-9, "budget violated: {d}");
        assert!(
            out.stats.candidates_delay_rejected >= 1,
            "the cheap-but-slow candidate must be counted as a deadline rejection"
        );
        assert!(out.cost.total() > free.cost.total());
        validate(&g, &sfc, &flow, &out.embedding).unwrap();
    }

    /// An unreachable budget must be reported as *deadline* infeasible —
    /// the serve-side rejection split keys off this classification.
    #[test]
    fn unsatisfiable_flow_budget_is_deadline_classified() {
        let g = delayed_sla_net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(6)).with_delay_budget(5.0);
        let err = MbbeSolver::new().solve(&g, &sfc, &flow).unwrap_err();
        assert!(err.is_deadline_infeasible(), "misclassified: {err}");
        // A capacity failure must NOT be classified as a deadline one.
        let thick = Flow {
            rate: 1e6,
            ..Flow::unit(NodeId(0), NodeId(6))
        };
        let err = MbbeSolver::new().solve(&g, &sfc, &thick).unwrap_err();
        assert!(!err.is_deadline_infeasible(), "misclassified: {err}");
    }

    /// Early delay pruning is a pure speed-up: identical embedding,
    /// bit-identical cost, and the same infeasibility classification as
    /// the lazy leaves-only filter.
    #[test]
    fn early_pruning_matches_unpruned_search() {
        let g = delayed_sla_net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(6)).with_delay_budget(30.0);
        let pruned = MbbeSolver::new().solve(&g, &sfc, &flow).unwrap();
        let mut lazy = MbbeSolver::new();
        lazy.config.early_delay_pruning = false;
        let lazy_out = lazy.solve(&g, &sfc, &flow).unwrap();
        assert_eq!(pruned.embedding, lazy_out.embedding);
        assert_eq!(
            pruned.cost.total().to_bits(),
            lazy_out.cost.total().to_bits()
        );
        // Infeasible instances classify identically.
        let tight = Flow::unit(NodeId(0), NodeId(6)).with_delay_budget(5.0);
        let a = MbbeSolver::new().solve(&g, &sfc, &tight).unwrap_err();
        let b = lazy.solve(&g, &sfc, &tight).unwrap_err();
        assert!(a.is_deadline_infeasible(), "{a}");
        assert!(b.is_deadline_infeasible(), "{b}");
    }

    /// When the min-cost final path alone blows the budget, the LARAC
    /// repair pass must swap in a delay-bounded final path instead of
    /// rejecting the request.
    #[test]
    fn larac_repair_swaps_in_a_bounded_final_path() {
        let mut g = Network::new();
        g.add_nodes(5);
        g.add_link_with_delay(NodeId(0), NodeId(1), 1.0, 10.0, 10.0)
            .unwrap();
        // Cheap but slow direct final hop …
        g.add_link_with_delay(NodeId(1), NodeId(4), 0.5, 10.0, 100.0)
            .unwrap();
        // … vs a pricey fast detour.
        g.add_link_with_delay(NodeId(1), NodeId(2), 1.0, 10.0, 10.0)
            .unwrap();
        g.add_link_with_delay(NodeId(2), NodeId(3), 1.0, 10.0, 10.0)
            .unwrap();
        g.add_link_with_delay(NodeId(3), NodeId(4), 1.0, 10.0, 10.0)
            .unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 1.0, 10.0).unwrap();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(4)).with_delay_budget(50.0);
        let out = MbbeSolver::new().solve(&g, &sfc, &flow).unwrap();
        let d = DelayModel::for_network(&g).embedding_delay(&sfc, &out.embedding, &flow);
        assert!(d <= 50.0 + 1e-9, "repair missed the budget: {d}");
        // Direct final rejected once, detour accepted: vnf 1 + links
        // (0-1) 1 + (1-2-3-4) 3 = 5.
        assert_eq!(out.stats.candidates_delay_rejected, 1);
        assert!((out.cost.total() - 5.0).abs() < 1e-9, "{}", out.cost);
        validate(&g, &sfc, &flow, &out.embedding).unwrap();
    }

    /// Delay-oblivious baselines go through the same central gate in
    /// `Solver::solve_in`: an over-budget embedding comes back as a
    /// deadline-classified rejection, not a silent SLA violation.
    #[test]
    fn central_gate_covers_baseline_solvers() {
        use crate::solvers::baseline::MinvSolver;
        let g = delayed_sla_net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
        // MINV picks the cheapest host (v2, 50 µs route), blind to the
        // 30 µs budget — the gate must catch it.
        let flow = Flow::unit(NodeId(0), NodeId(6)).with_delay_budget(30.0);
        let err = MinvSolver.solve(&g, &sfc, &flow).unwrap_err();
        assert!(err.is_deadline_infeasible(), "gate missed: {err}");
        // Without a budget the same solve succeeds.
        let free = MinvSolver.solve(&g, &sfc, &Flow::unit(NodeId(0), NodeId(6)));
        assert!(free.is_ok());
    }

    #[test]
    fn unsatisfiable_sla_fails_cleanly() {
        let g = sla_net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(6));
        let solver = MbbeSolver {
            config: BbeConfig {
                delay_constraint: Some(DelayConstraint {
                    model: model(),
                    max_delay_us: 5.0, // below any possible route
                }),
                ..BbeConfig::mbbe()
            },
        };
        assert!(matches!(
            solver.solve(&g, &sfc, &flow),
            Err(SolveError::NoFeasibleEmbedding { .. })
        ));
    }
}
