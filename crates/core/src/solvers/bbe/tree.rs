//! Forward/Backward Search Trees (paper §4.2.2, §4.3.2, Table 1, Fig. 4).
//!
//! Both FST and BST share one structure: a binary tree (left child = first
//! node of the next BFS iteration, right child = next sibling within the
//! same iteration) whose nodes carry, per Table 1, the father/left/right
//! pointers, the network node id, the *available VNF set* (the required
//! kinds hosted there), and the *previous/next node lists* — the dotted
//! arrows of Fig. 4 recording physical adjacency between consecutive
//! iterations, which is what real-path instantiation walks.

use dagsfc_net::{Network, NodeId, Path, VnfTypeId};

/// Sentinel for "network node not in the tree" in the index vector.
const NOT_IN_TREE: u32 = u32::MAX;

/// One node of a search tree (the seven elements of Table 1).
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// Father pointer (binary-tree logic).
    pub father: Option<usize>,
    /// Left child: first tree node of the next iteration.
    pub left_child: Option<usize>,
    /// Right child: next tree node of the same iteration.
    pub right_child: Option<usize>,
    /// The corresponding network node.
    pub node: NodeId,
    /// Required VNF kinds available on this network node.
    pub available_vnfs: Vec<VnfTypeId>,
    /// Tree indices of nodes from the *previous* iteration with a direct
    /// network link to this one (dotted arrows toward the root).
    pub prev: Vec<usize>,
    /// Tree indices of nodes from the *next* iteration with a direct
    /// network link to this one.
    pub next: Vec<usize>,
    /// BFS iteration (ring) this node was discovered in; the root is 0.
    pub ring: usize,
}

/// A grown search tree: the result of one forward or backward search.
///
/// Membership lookups go through a `NodeId`-indexed vector sized off the
/// substrate (sentinel [`NOT_IN_TREE`]) instead of a hash map: the tree
/// is rebuilt for every BBE attempt, so cheap O(1) array probes on the
/// hot `contains`/`index_of` calls matter more than sparse storage.
#[derive(Debug, Clone)]
pub struct SearchTree {
    nodes: Vec<TreeNode>,
    index_of: Vec<u32>,
    covered: bool,
}

impl SearchTree {
    /// Grows a search tree from `start` by BFS rings until the union of
    /// `required` kinds hosted on discovered nodes covers all of them.
    ///
    /// * `node_ok` restricts which nodes may be entered (the backward
    ///   search passes membership in the forward node set);
    /// * `x_max` is MBBE's strategy (1): expansion stops once the node
    ///   set has reached `x_max` *before* coverage — the final ring may
    ///   overshoot the bound, but no further ring is opened after it.
    ///
    /// The returned tree reports [`SearchTree::covered`] = `false` when
    /// the search exhausted its reachable set (or hit `x_max`) without
    /// covering every required kind.
    pub fn grow(
        net: &Network,
        start: NodeId,
        required: &[VnfTypeId],
        node_ok: impl Fn(NodeId) -> bool,
        x_max: Option<usize>,
    ) -> SearchTree {
        let mut remaining: Vec<VnfTypeId> = {
            let mut r = required.to_vec();
            r.sort_unstable();
            r.dedup();
            r
        };
        let avail = |n: NodeId| -> Vec<VnfTypeId> {
            required
                .iter()
                .copied()
                .filter(|&k| net.hosts(n, k))
                .collect::<Vec<_>>()
        };

        let substrate_n = net.node_count();
        let mut nodes: Vec<TreeNode> = Vec::new();
        let mut index_of: Vec<u32> = vec![NOT_IN_TREE; substrate_n];
        // Ring-stamped dedup for candidate collection: `ring_seen[v] ==
        // ring_no` marks v as already queued for the current ring, so the
        // per-neighbor membership probe is O(1) instead of a linear scan.
        let mut ring_seen: Vec<usize> = vec![0; substrate_n];

        let root_avail = avail(start);
        remaining.retain(|&k| !net.hosts(start, k));
        nodes.push(TreeNode {
            father: None,
            left_child: None,
            right_child: None,
            node: start,
            available_vnfs: root_avail,
            prev: Vec::new(),
            next: Vec::new(),
            ring: 0,
        });
        index_of[start.index()] = 0;

        let mut prev_ring: Vec<usize> = vec![0];
        let mut ring_no = 0usize;
        while !remaining.is_empty() && !prev_ring.is_empty() {
            if let Some(cap) = x_max {
                if nodes.len() >= cap {
                    break;
                }
            }
            ring_no += 1;
            // Collect the next ring in deterministic (node id) order.
            let mut ring_members: Vec<NodeId> = Vec::new();
            for &ti in &prev_ring {
                let n = nodes[ti].node;
                for &(m, _) in net.neighbors(n) {
                    if index_of[m.index()] == NOT_IN_TREE
                        && ring_seen[m.index()] != ring_no
                        && node_ok(m)
                    {
                        ring_seen[m.index()] = ring_no;
                        ring_members.push(m);
                    }
                }
            }
            ring_members.sort_unstable();
            if ring_members.is_empty() {
                break;
            }
            let mut this_ring: Vec<usize> = Vec::with_capacity(ring_members.len());
            for (i, m) in ring_members.iter().copied().enumerate() {
                let idx = nodes.len();
                let available = avail(m);
                remaining.retain(|&k| !net.hosts(m, k));
                // Binary-tree pointers: first ring member is the left
                // child of the previous ring's first member; later members
                // chain as right children of their left sibling.
                let father = if i == 0 {
                    Some(prev_ring[0])
                } else {
                    Some(this_ring[i - 1])
                };
                nodes.push(TreeNode {
                    father,
                    left_child: None,
                    right_child: None,
                    node: m,
                    available_vnfs: available,
                    prev: Vec::new(),
                    next: Vec::new(),
                    ring: ring_no,
                });
                if i == 0 {
                    nodes[prev_ring[0]].left_child = Some(idx);
                } else {
                    nodes[this_ring[i - 1]].right_child = Some(idx);
                }
                index_of[m.index()] = idx as u32;
                this_ring.push(idx);
            }
            // Dotted arrows: adjacency between consecutive iterations.
            for &ti in &this_ring {
                let n = nodes[ti].node;
                for &(m, _) in net.neighbors(n) {
                    let pi = index_of[m.index()];
                    if pi != NOT_IN_TREE {
                        let pi = pi as usize;
                        if nodes[pi].ring + 1 == ring_no {
                            nodes[ti].prev.push(pi);
                            nodes[pi].next.push(ti);
                        }
                    }
                }
            }
            prev_ring = this_ring;
        }

        SearchTree {
            nodes,
            index_of,
            covered: remaining.is_empty(),
        }
    }

    /// Whether the search covered every required VNF kind.
    #[inline]
    pub fn covered(&self) -> bool {
        self.covered
    }

    /// Number of tree nodes (size of the search node set).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree holds only the root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The tree node at `idx`.
    #[inline]
    pub fn node(&self, idx: usize) -> &TreeNode {
        &self.nodes[idx]
    }

    /// All tree nodes.
    #[inline]
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// The root's network node (the search start).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.nodes[0].node
    }

    /// Tree index of a network node, if discovered.
    pub fn index_of(&self, n: NodeId) -> Option<usize> {
        match self.index_of.get(n.index()) {
            Some(&i) if i != NOT_IN_TREE => Some(i as usize),
            _ => None,
        }
    }

    /// Whether `n` belongs to the search node set.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        matches!(self.index_of.get(n.index()), Some(&i) if i != NOT_IN_TREE)
    }

    /// Tree indices of discovered nodes hosting `kind`, in discovery
    /// order.
    pub fn hosting(&self, kind: VnfTypeId) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, t)| t.available_vnfs.contains(&kind))
            .map(|(i, _)| i)
            .collect()
    }

    /// Enumerates real-paths from the tree node `idx` back to the root by
    /// walking `prev` chains (each hop is a physical link between
    /// consecutive rings, so every produced path has `ring(idx)` links —
    /// the hop-minimal paths inside the searched subgraph).
    ///
    /// At most `max_raw` chains are explored; the cheapest `max_keep`
    /// paths (by link price) are returned, **oriented root → node**.
    pub fn paths_from_root(
        &self,
        net: &Network,
        idx: usize,
        max_raw: usize,
        max_keep: usize,
    ) -> Vec<Path> {
        if idx == 0 {
            return vec![Path::trivial(self.root())];
        }
        let mut raw: Vec<Vec<NodeId>> = Vec::new();
        let mut stack: Vec<(usize, Vec<NodeId>)> = vec![(idx, vec![self.nodes[idx].node])];
        while let Some((cur, seq)) = stack.pop() {
            if raw.len() >= max_raw {
                break;
            }
            if cur == 0 {
                raw.push(seq);
                continue;
            }
            for &p in &self.nodes[cur].prev {
                let mut s = seq.clone();
                s.push(self.nodes[p].node);
                stack.push((p, s));
            }
        }
        let mut paths: Vec<Path> = raw
            .into_iter()
            .filter_map(|mut seq| {
                seq.reverse(); // root → node
                Path::from_nodes(net, seq).ok()
            })
            .collect();
        paths.sort_by(|a, b| {
            a.price(net)
                .total_cmp(&b.price(net))
                .then_with(|| a.nodes().cmp(b.nodes()))
        });
        paths.truncate(max_keep);
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 3-style test network:
    ///
    /// ```text
    ///   va — vb — vc        va hosts f1; vb f2,f3; vc f4;
    ///    \    |              vh f5; ve merger(f8)
    ///     vh— ve
    /// ```
    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(5); // 0=va 1=vb 2=vc 3=vh 4=ve
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 1.0, 10.0).unwrap();
        g.add_link(NodeId(0), NodeId(3), 1.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(4), 1.0, 10.0).unwrap();
        g.add_link(NodeId(3), NodeId(4), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(0), VnfTypeId(1), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(2), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(3), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(4), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(3), VnfTypeId(5), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(4), VnfTypeId(8), 1.0, 10.0).unwrap();
        g
    }

    #[test]
    fn grows_until_covered() {
        let g = net();
        let required = [VnfTypeId(2), VnfTypeId(3), VnfTypeId(8)];
        let t = SearchTree::grow(&g, NodeId(0), &required, |_| true, None);
        assert!(t.covered());
        // va (ring 0) → vb, vh (ring 1) already covers f2,f3; merger on
        // ve needs ring 2? No: ve adjacent to vb and vh → ring 2... but
        // wait, coverage check happens after each full ring: ring1 gives
        // f2,f3; f8 still missing → ring 2 explored.
        assert!(t.contains(NodeId(4)));
        let ve = t.index_of(NodeId(4)).unwrap();
        assert_eq!(t.node(ve).ring, 2);
        assert_eq!(t.node(ve).available_vnfs, vec![VnfTypeId(8)]);
    }

    #[test]
    fn stops_at_coverage_ring() {
        let g = net();
        // f2 alone is covered at ring 1: vc (distance 2) never entered.
        let t = SearchTree::grow(&g, NodeId(0), &[VnfTypeId(2)], |_| true, None);
        assert!(t.covered());
        assert!(t.contains(NodeId(1)));
        assert!(!t.contains(NodeId(2)));
    }

    #[test]
    fn uncovered_when_kind_absent() {
        let g = net();
        let t = SearchTree::grow(&g, NodeId(0), &[VnfTypeId(7)], |_| true, None);
        assert!(!t.covered());
        assert_eq!(t.len(), 5); // exhausted the whole graph
    }

    #[test]
    fn x_max_bounds_expansion() {
        let g = net();
        // x_max = 1: no ring beyond the root may open.
        let t = SearchTree::grow(&g, NodeId(0), &[VnfTypeId(8)], |_| true, Some(1));
        assert!(!t.covered());
        assert_eq!(t.len(), 1);
        // Generous x_max covers normally.
        let t2 = SearchTree::grow(&g, NodeId(0), &[VnfTypeId(8)], |_| true, Some(10));
        assert!(t2.covered());
    }

    #[test]
    fn node_ok_restricts_to_subset() {
        let g = net();
        let allowed = [NodeId(0), NodeId(1), NodeId(2)];
        let t = SearchTree::grow(
            &g,
            NodeId(2),
            &[VnfTypeId(1)],
            move |n| allowed.contains(&n),
            None,
        );
        assert!(t.covered());
        assert!(!t.contains(NodeId(4)));
        assert!(!t.contains(NodeId(3)));
        // vc → vb → va: va in ring 2.
        assert_eq!(t.node(t.index_of(NodeId(0)).unwrap()).ring, 2);
    }

    #[test]
    fn binary_tree_pointers_consistent() {
        let g = net();
        let t = SearchTree::grow(&g, NodeId(0), &[VnfTypeId(8)], |_| true, None);
        // Root has a left child (first node of ring 1) and no father.
        assert!(t.node(0).father.is_none());
        let lc = t.node(0).left_child.expect("ring 1 exists");
        assert_eq!(t.node(lc).ring, 1);
        assert_eq!(t.node(lc).father, Some(0));
        // Right-sibling chain stays within the ring.
        if let Some(rs) = t.node(lc).right_child {
            assert_eq!(t.node(rs).ring, 1);
            assert_eq!(t.node(rs).father, Some(lc));
        }
    }

    #[test]
    fn prev_lists_point_to_previous_ring() {
        let g = net();
        let t = SearchTree::grow(&g, NodeId(0), &[VnfTypeId(8)], |_| true, None);
        for (i, n) in t.nodes().iter().enumerate() {
            if i == 0 {
                assert!(n.prev.is_empty());
            } else {
                assert!(!n.prev.is_empty(), "non-root must reach the root");
                for &p in &n.prev {
                    assert_eq!(t.node(p).ring + 1, n.ring);
                    assert!(g.link_between(t.node(p).node, n.node).is_some());
                }
            }
        }
    }

    #[test]
    fn hosting_lookup() {
        let g = net();
        let required = [VnfTypeId(2), VnfTypeId(3), VnfTypeId(8)];
        let t = SearchTree::grow(&g, NodeId(0), &required, |_| true, None);
        let hosts2 = t.hosting(VnfTypeId(2));
        assert_eq!(hosts2.len(), 1);
        assert_eq!(t.node(hosts2[0]).node, NodeId(1));
        assert!(t.hosting(VnfTypeId(9)).is_empty());
    }

    #[test]
    fn paths_from_root_are_hop_minimal_and_sorted() {
        let g = net();
        let t = SearchTree::grow(&g, NodeId(0), &[VnfTypeId(8)], |_| true, None);
        let ve = t.index_of(NodeId(4)).unwrap();
        let paths = t.paths_from_root(&g, ve, 32, 8);
        // Two 2-hop routes: va-vb-ve and va-vh-ve.
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.len(), 2);
            assert_eq!(p.source(), NodeId(0));
            assert_eq!(p.target(), NodeId(4));
        }
        let prices: Vec<f64> = paths.iter().map(|p| p.price(&g)).collect();
        assert!(prices[0] <= prices[1]);
    }

    #[test]
    fn path_to_root_itself_is_trivial() {
        let g = net();
        let t = SearchTree::grow(&g, NodeId(0), &[VnfTypeId(1)], |_| true, None);
        let ps = t.paths_from_root(&g, 0, 8, 8);
        assert_eq!(ps.len(), 1);
        assert!(ps[0].is_empty());
    }

    #[test]
    fn max_keep_truncates() {
        let g = net();
        let t = SearchTree::grow(&g, NodeId(0), &[VnfTypeId(8)], |_| true, None);
        let ve = t.index_of(NodeId(4)).unwrap();
        assert_eq!(t.paths_from_root(&g, ve, 32, 1).len(), 1);
    }
}
