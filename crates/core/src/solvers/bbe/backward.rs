//! Step 2 of BBE: the backward search (paper §4.3).
//!
//! For every merger candidate found by the forward search, the backward
//! search expands BFS rings from that merger node, **restricted to the
//! forward search node set**, until it re-covers the layer's VNF kinds.
//! Its two purposes (per the paper): narrowing the node set of the
//! forward search, and instantiating the inner-layer meta-paths
//! (parallel VNF → merger) via the BST's dotted arrows.

use super::tree::SearchTree;
use crate::chain::Layer;
use crate::vnf::VnfCatalog;
use dagsfc_net::{Network, NodeId};

/// Runs the backward search for `layer` from the merger candidate
/// `merger_node`, restricted to nodes of `fst`.
pub fn backward_search(
    net: &Network,
    merger_node: NodeId,
    layer: &Layer,
    catalog: &VnfCatalog,
    fst: &SearchTree,
) -> SearchTree {
    let required = layer.required_kinds(catalog);
    SearchTree::grow(net, merger_node, &required, |n| fst.contains(n), None)
}

#[cfg(test)]
mod tests {
    use super::super::forward::forward_search;
    use super::*;
    use dagsfc_net::VnfTypeId;

    /// Diamond with a tail:
    /// v0 - v1 - v2 , v0 - v3 - v2 , v2 - v4.
    /// f0@v1, f1@v3, merger@v2; v4 hosts f0 too (outside any shortest
    /// region).
    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(5);
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 1.0, 10.0).unwrap();
        g.add_link(NodeId(0), NodeId(3), 1.0, 10.0).unwrap();
        g.add_link(NodeId(3), NodeId(2), 1.0, 10.0).unwrap();
        g.add_link(NodeId(2), NodeId(4), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(3), VnfTypeId(1), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(2), 1.0, 10.0).unwrap(); // merger
        g.deploy_vnf(NodeId(4), VnfTypeId(0), 1.0, 10.0).unwrap();
        g
    }

    #[test]
    fn backward_restricted_to_fst() {
        let g = net();
        let c = VnfCatalog::new(2);
        let layer = Layer::new(vec![VnfTypeId(0), VnfTypeId(1)]);
        let fst = forward_search(&g, NodeId(0), &layer, &c, None);
        assert!(fst.covered());
        // Forward from v0 covers at ring 2 (merger on v2); v4 is at
        // distance 3 and must not be in the FST.
        assert!(!fst.contains(NodeId(4)));

        let bst = backward_search(&g, NodeId(2), &layer, &c, &fst);
        assert!(bst.covered());
        assert_eq!(bst.root(), NodeId(2));
        // BST finds f0@v1 and f1@v3 one ring from the merger, never
        // leaving the forward set (v4 excluded even though it hosts f0).
        assert!(bst.contains(NodeId(1)));
        assert!(bst.contains(NodeId(3)));
        assert!(!bst.contains(NodeId(4)));
    }

    #[test]
    fn backward_can_fail_outside_forward_set() {
        let g = net();
        let c = VnfCatalog::new(2);
        // Forward search for a singleton f0 layer stops at ring 1 (v1),
        // so a backward search for {f0,f1,merger} inside that tiny set
        // cannot cover.
        let single = Layer::new(vec![VnfTypeId(0)]);
        let fst = forward_search(&g, NodeId(0), &single, &c, None);
        let wide = Layer::new(vec![VnfTypeId(0), VnfTypeId(1)]);
        let bst = backward_search(&g, NodeId(1), &wide, &c, &fst);
        assert!(!bst.covered());
    }

    #[test]
    fn bst_paths_orient_from_merger() {
        let g = net();
        let c = VnfCatalog::new(2);
        let layer = Layer::new(vec![VnfTypeId(0), VnfTypeId(1)]);
        let fst = forward_search(&g, NodeId(0), &layer, &c, None);
        let bst = backward_search(&g, NodeId(2), &layer, &c, &fst);
        let v1 = bst.index_of(NodeId(1)).unwrap();
        let paths = bst.paths_from_root(&g, v1, 16, 4);
        assert_eq!(paths.len(), 1);
        // paths_from_root orients root→node, i.e. merger→VNF; the inner
        // meta-path (VNF→merger) is its reverse.
        assert_eq!(paths[0].source(), NodeId(2));
        assert_eq!(paths[0].target(), NodeId(1));
    }
}
