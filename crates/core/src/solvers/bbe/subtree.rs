//! The sub-solution tree (paper §4.4.2).
//!
//! Sub-solutions of layer `l` are stored as children of the layer-`(l-1)`
//! sub-solution their FST was grown from. Every link is bi-directed: the
//! down links drive generation and traversal, the up (parent) links let a
//! complete solution be reconstructed from a leaf without re-walking the
//! tree from the root — exactly the paper's rationale.

use super::candidates::LayerSub;
use dagsfc_net::NodeId;

/// A node of the sub-solution tree.
#[derive(Debug, Clone)]
pub(crate) struct SubNode {
    /// Up link to the previous layer's sub-solution.
    pub parent: Option<usize>,
    /// Down links to the next layer's sub-solutions.
    pub children: Vec<usize>,
    /// The embedded layer; `None` only for the root (the 0th layer of the
    /// paper's tree, storing the source node "without any cost").
    pub sub: Option<LayerSub>,
    /// Cost accumulated from the root through this node.
    pub cum_cost: f64,
    /// This sub-solution's end node (the next layer's start).
    pub end_node: NodeId,
}

/// Arena-allocated sub-solution tree.
#[derive(Debug, Clone)]
pub(crate) struct SubTree {
    nodes: Vec<SubNode>,
}

impl SubTree {
    /// Creates the tree with its root at the flow source.
    pub fn new(source: NodeId) -> Self {
        SubTree {
            nodes: vec![SubNode {
                parent: None,
                children: Vec::new(),
                sub: None,
                cum_cost: 0.0,
                end_node: source,
            }],
        }
    }

    /// Inserts a sub-solution as a child of `parent`, returning its index.
    pub fn insert(&mut self, parent: usize, sub: LayerSub) -> usize {
        let idx = self.nodes.len();
        let cum_cost = self.nodes[parent].cum_cost + sub.cost.total();
        let end_node = sub.end_node;
        self.nodes.push(SubNode {
            parent: Some(parent),
            children: Vec::new(),
            sub: Some(sub),
            cum_cost,
            end_node,
        });
        self.nodes[parent].children.push(idx);
        idx
    }

    /// The node at `idx`.
    #[inline]
    pub fn node(&self, idx: usize) -> &SubNode {
        &self.nodes[idx]
    }

    /// Number of stored nodes (root included).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Walks the up links from `leaf` to the root, returning the layer
    /// sub-solutions in layer order (root's child first).
    pub fn lineage(&self, leaf: usize) -> Vec<&LayerSub> {
        let mut out = Vec::new();
        let mut cur = Some(leaf);
        while let Some(i) = cur {
            if let Some(sub) = &self.nodes[i].sub {
                out.push(sub);
            }
            cur = self.nodes[i].parent;
        }
        out.reverse();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostBreakdown;
    use dagsfc_net::Path;

    fn sub(end: u32, cost: f64) -> LayerSub {
        LayerSub {
            assignment: vec![NodeId(end)],
            inter_paths: vec![Path::trivial(NodeId(end))],
            inner_paths: Vec::new(),
            cost: CostBreakdown {
                vnf: cost,
                link: 0.0,
            },
            end_node: NodeId(end),
        }
    }

    #[test]
    fn root_is_free_source() {
        let t = SubTree::new(NodeId(7));
        assert_eq!(t.len(), 1);
        assert_eq!(t.node(0).end_node, NodeId(7));
        assert_eq!(t.node(0).cum_cost, 0.0);
        assert!(t.node(0).sub.is_none());
        assert!(t.lineage(0).is_empty());
    }

    #[test]
    fn cumulative_costs_accumulate_down_the_tree() {
        let mut t = SubTree::new(NodeId(0));
        let a = t.insert(0, sub(1, 2.0));
        let b = t.insert(a, sub(2, 3.0));
        let c = t.insert(a, sub(3, 1.0));
        assert_eq!(t.node(a).cum_cost, 2.0);
        assert_eq!(t.node(b).cum_cost, 5.0);
        assert_eq!(t.node(c).cum_cost, 3.0);
        assert_eq!(t.node(0).children, vec![a]);
        assert_eq!(t.node(a).children, vec![b, c]);
        assert_eq!(t.node(b).parent, Some(a));
    }

    #[test]
    fn lineage_orders_root_first() {
        let mut t = SubTree::new(NodeId(0));
        let a = t.insert(0, sub(1, 2.0));
        let b = t.insert(a, sub(2, 3.0));
        let line = t.lineage(b);
        assert_eq!(line.len(), 2);
        assert_eq!(line[0].end_node, NodeId(1));
        assert_eq!(line[1].end_node, NodeId(2));
    }
}
