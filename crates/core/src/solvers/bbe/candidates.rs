//! Step 3 of BBE: candidate sub-solution generation (paper §4.4).
//!
//! Given the FST–BST pair of a layer, candidates are produced in the
//! paper's four sub-steps: (i) every combination of parallel-VNF
//! allocations found in the BST, (ii) inner-layer real-paths by
//! traversing the BST, (iii) inter-layer real-paths by traversing the
//! FST, and (iv) a feasibility filter. MBBE's strategy (2) replaces the
//! tree traversals of (ii)/(iii) with minimum-cost paths on the real-time
//! network.
//!
//! Bounded enumeration: combination counts are capped by the
//! [`super::BbeConfig`] knobs — candidates are explored cheapest-first so
//! truncation discards the expensive tail.

use super::tree::SearchTree;
use super::BbeConfig;
use crate::chain::Layer;
use crate::cost::CostBreakdown;
use crate::flow::Flow;
use crate::vnf::VnfCatalog;
use dagsfc_net::routing::ShortestPathTree;
use dagsfc_net::{LinkId, Network, NodeId, Path, PathOracle, CAP_EPS};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One embedded layer: the paper's per-layer sub-solution.
#[derive(Debug, Clone)]
pub(crate) struct LayerSub {
    /// Node per slot (merger last for parallel layers).
    pub assignment: Vec<NodeId>,
    /// Inter-layer real-paths, one per parallel slot (start → VNF node).
    pub inter_paths: Vec<Path>,
    /// Inner-layer real-paths, one per parallel slot (VNF node → merger);
    /// empty for singleton layers.
    pub inner_paths: Vec<Path>,
    /// This layer's cost contribution (VNF rentals + multicast-deduped
    /// inter links + per-version inner links, scaled by the flow size).
    pub cost: CostBreakdown,
    /// The layer's end node: next layer's search start.
    pub end_node: NodeId,
}

/// Shared per-solve context: network, flow, config, and the shared
/// [`PathOracle`] serving MBBE's min-cost path instantiation. `Sync`, so
/// merger-candidate scoring can fan out across scoped threads.
pub(crate) struct EngineCtx<'a> {
    pub net: &'a Network,
    pub catalog: VnfCatalog,
    pub flow: Flow,
    pub cfg: &'a BbeConfig,
    oracle: &'a PathOracle<'a>,
    /// Flat per-link price table (struct-of-arrays copy of
    /// `net.link(l).price`): candidate scoring sweeps read contiguous
    /// `f64`s instead of chasing a `Link` struct per relaxed link.
    link_price: Vec<f64>,
    /// Flat per-link static rate-feasibility under this flow's rate,
    /// precomputed once per solve for the same reason.
    link_rate_ok: Vec<bool>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

impl<'a> EngineCtx<'a> {
    pub fn new(
        net: &'a Network,
        catalog: VnfCatalog,
        flow: Flow,
        cfg: &'a BbeConfig,
        oracle: &'a PathOracle<'a>,
    ) -> Self {
        let mut link_price = Vec::with_capacity(net.link_count());
        let mut link_rate_ok = Vec::with_capacity(net.link_count());
        for l in 0..net.link_count() {
            let link = net.link(LinkId(l as u32));
            link_price.push(link.price);
            link_rate_ok.push(link.capacity + CAP_EPS >= flow.rate);
        }
        EngineCtx {
            net,
            catalog,
            flow,
            cfg,
            oracle,
            link_price,
            link_rate_ok,
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
        }
    }

    /// Static rate-feasibility of a link (no global reservations during
    /// the search; complete solutions are re-validated at the end).
    pub fn link_ok(&self, l: LinkId) -> bool {
        self.link_rate_ok[l.index()]
    }

    /// Static rate-feasibility of every link on a path.
    pub fn path_ok(&self, p: &Path) -> bool {
        p.links().iter().all(|&l| self.link_ok(l))
    }

    /// Cheapest path `from → to` over rate-feasible links, via the shared
    /// oracle's memoized single-source Dijkstra trees.
    pub fn min_cost_path(&self, from: NodeId, to: NodeId) -> Option<Path> {
        if from == to {
            return Some(Path::trivial(from));
        }
        let (tree, hit) = self.oracle.tree_tracked(from, self.flow.rate);
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        tree.path_to(to)
    }

    /// Cheapest path `from → to` over rate-feasible links whose summed
    /// substrate propagation delay stays within `max_delay_us`, via the
    /// oracle's LARAC (Lagrangian relaxation) mode. `None` means no
    /// rate-feasible route meets the bound. The λ-keyed trees live in
    /// the oracle's shared cache, not this solve's hit/miss counters.
    pub fn min_cost_path_bounded(
        &self,
        from: NodeId,
        to: NodeId,
        max_delay_us: f64,
    ) -> Option<Path> {
        self.oracle
            .min_cost_path_bounded(from, to, self.flow.rate, max_delay_us)
    }

    /// The full Dijkstra tree rooted at `root` over rate-feasible links,
    /// from the shared oracle (hit/miss tracked like
    /// [`Self::min_cost_path`]). The finals stage uses one
    /// destination-rooted tree to price every leaf instead of building
    /// one tree per distinct leaf end node.
    pub fn oracle_tree(&self, root: NodeId) -> Arc<ShortestPathTree> {
        let (tree, hit) = self.oracle.tree_tracked(root, self.flow.rate);
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        tree
    }

    /// This solve's path-cache traffic as `(hits, misses)`.
    pub fn cache_counts(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }
}

/// Mixed-radix cartesian product of `options`, cheapest-first (index 0 of
/// every dimension first), capped at `cap` combinations.
pub(crate) fn bounded_cartesian<T: Clone>(options: &[Vec<T>], cap: usize) -> Vec<Vec<T>> {
    if options.iter().any(Vec::is_empty) || cap == 0 {
        return Vec::new();
    }
    let mut combos = Vec::new();
    let mut idx = vec![0usize; options.len()];
    loop {
        combos.push(
            idx.iter()
                .zip(options)
                .map(|(&i, opts)| opts[i].clone())
                .collect(),
        );
        if combos.len() >= cap {
            break;
        }
        // Odometer increment, least-significant dimension last.
        let mut dim = options.len();
        loop {
            if dim == 0 {
                return combos;
            }
            dim -= 1;
            idx[dim] += 1;
            if idx[dim] < options[dim].len() {
                break;
            }
            idx[dim] = 0;
        }
    }
    combos
}

/// Visits the same index combinations [`bounded_cartesian`] would
/// produce over the dimension sizes `dims` (cheapest-first odometer,
/// capped at `cap`), without materializing or cloning anything — the
/// flat-sweep scoring loops walk these indices straight into their
/// struct-of-arrays path tables.
pub(crate) fn for_each_bounded_combo(dims: &[usize], cap: usize, mut visit: impl FnMut(&[usize])) {
    if dims.contains(&0) || cap == 0 {
        return;
    }
    let mut idx = vec![0usize; dims.len()];
    let mut count = 0usize;
    loop {
        visit(&idx);
        count += 1;
        if count >= cap {
            return;
        }
        // Odometer increment, least-significant dimension last.
        let mut dim = dims.len();
        loop {
            if dim == 0 {
                return;
            }
            dim -= 1;
            idx[dim] += 1;
            if idx[dim] < dims[dim] {
                break;
            }
            idx[dim] = 0;
        }
    }
}

/// Epoch-stamped first-occurrence set over link ids: the multicast
/// dedup behind layer scoring. `begin` is O(1) (an epoch bump), so the
/// set is reused across thousands of candidate scorings without the
/// per-candidate hash-set allocation the old scorer paid.
struct SeenLinks {
    stamp: Vec<u32>,
    epoch: u32,
}

impl SeenLinks {
    /// Starts a fresh dedup scope covering link ids `0..links`.
    fn begin(&mut self, links: usize) {
        if self.stamp.len() < links {
            self.stamp.resize(links, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Epoch wrap: hard-reset the stamps so stale marks from
                // u32::MAX scopes ago cannot alias the new epoch.
                self.stamp.fill(0);
                1
            }
        };
    }

    /// Whether this is the first occurrence of `l` in the current scope.
    fn first(&mut self, l: LinkId) -> bool {
        let s = &mut self.stamp[l.index()];
        if *s == self.epoch {
            false
        } else {
            *s = self.epoch;
            true
        }
    }
}

thread_local! {
    /// Per-thread scoring dedup set: merger scoring fans out across
    /// scoped threads, and each worker keeps its own stamps.
    static SEEN_LINKS: RefCell<SeenLinks> = const {
        RefCell::new(SeenLinks {
            stamp: Vec::new(),
            epoch: 0,
        })
    };
}

/// Computes a layer's cost: VNF rentals plus links, with multicast dedup
/// across the inter-layer paths and per-occurrence charges on inner ones.
///
/// The link sum accumulates left-to-right in path order — inter paths
/// (first occurrence only) then inner paths link-by-link — exactly as
/// the original hash-set scorer did, so totals are bit-identical and
/// downstream cheapest-first orderings cannot shift.
pub(crate) fn layer_cost(
    ctx: &EngineCtx<'_>,
    vnf_prices: f64,
    inter: &[Path],
    inner: &[Path],
) -> CostBreakdown {
    SEEN_LINKS.with(|cell| {
        let seen = &mut *cell.borrow_mut();
        seen.begin(ctx.net.link_count());
        let mut link_price = 0.0;
        for p in inter {
            for &l in p.links() {
                if seen.first(l) {
                    link_price += ctx.link_price[l.index()];
                }
            }
        }
        for p in inner {
            for &l in p.links() {
                link_price += ctx.link_price[l.index()];
            }
        }
        CostBreakdown {
            vnf: vnf_prices * ctx.flow.size,
            link: link_price * ctx.flow.size,
        }
    })
}

/// Alternatives for the path `start → node` using the FST (BBE) or the
/// real-time network (MBBE).
fn inter_path_options(ctx: &EngineCtx<'_>, fst: &SearchTree, node: NodeId) -> Vec<Path> {
    if ctx.cfg.use_min_cost_paths {
        ctx.min_cost_path(fst.root(), node).into_iter().collect()
    } else {
        let Some(idx) = fst.index_of(node) else {
            return Vec::new();
        };
        fst.paths_from_root(
            ctx.net,
            idx,
            ctx.cfg.max_raw_chains,
            ctx.cfg.max_paths_per_pair,
        )
        .into_iter()
        .filter(|p| ctx.path_ok(p))
        .collect()
    }
}

/// Alternatives for the inner path `node → merger` using the BST (BBE) or
/// the real-time network (MBBE). Paths are oriented node → merger.
fn inner_path_options(ctx: &EngineCtx<'_>, bst: &SearchTree, node: NodeId) -> Vec<Path> {
    if ctx.cfg.use_min_cost_paths {
        // Dijkstra tree rooted at the merger, path reversed (links are
        // bi-directional).
        ctx.min_cost_path(bst.root(), node)
            .into_iter()
            .map(Path::reversed)
            .collect()
    } else {
        let Some(idx) = bst.index_of(node) else {
            return Vec::new();
        };
        bst.paths_from_root(
            ctx.net,
            idx,
            ctx.cfg.max_raw_chains,
            ctx.cfg.max_paths_per_pair,
        )
        .into_iter()
        .map(Path::reversed)
        .filter(|p| ctx.path_ok(p))
        .collect()
    }
}

/// Candidate nodes of a slot, cheapest rental first, capped.
fn slot_candidates(
    ctx: &EngineCtx<'_>,
    tree: &SearchTree,
    kind: dagsfc_net::VnfTypeId,
) -> Vec<NodeId> {
    let mut cands: Vec<NodeId> = tree
        .hosting(kind)
        .into_iter()
        .map(|i| tree.node(i).node)
        .filter(|&n| {
            ctx.net
                .instance(n, kind)
                .is_some_and(|i| i.capacity + CAP_EPS >= ctx.flow.rate)
        })
        .collect();
    cands.sort_by(|&a, &b| {
        let pa = ctx.net.vnf_price(a, kind).unwrap_or(f64::INFINITY);
        let pb = ctx.net.vnf_price(b, kind).unwrap_or(f64::INFINITY);
        pa.total_cmp(&pb).then(a.cmp(&b))
    });
    cands.truncate(ctx.cfg.max_candidates_per_slot);
    cands
}

/// Generates sub-solutions for a *singleton* layer from its FST: one
/// candidate per (hosting node, inter-path alternative).
pub(crate) fn singleton_layer_subs(
    ctx: &EngineCtx<'_>,
    layer: &Layer,
    fst: &SearchTree,
) -> Vec<LayerSub> {
    debug_assert!(!layer.needs_merger());
    let kind = layer.vnfs()[0];
    let mut subs = Vec::new();
    for node in slot_candidates(ctx, fst, kind) {
        // lint:allow(expect) — invariant: candidate hosts kind
        let price = ctx.net.vnf_price(node, kind).expect("candidate hosts kind");
        for path in inter_path_options(ctx, fst, node) {
            let cost = layer_cost(ctx, price, std::slice::from_ref(&path), &[]);
            subs.push(LayerSub {
                assignment: vec![node],
                inter_paths: vec![path],
                inner_paths: Vec::new(),
                cost,
                end_node: node,
            });
        }
    }
    subs
}

/// Generates sub-solutions for a *parallel* layer from one FST–BST pair
/// (the BST is rooted at the merger candidate).
pub(crate) fn parallel_layer_subs(
    ctx: &EngineCtx<'_>,
    layer: &Layer,
    fst: &SearchTree,
    bst: &SearchTree,
) -> Vec<LayerSub> {
    debug_assert!(layer.needs_merger());
    let merger_node = bst.root();
    let merger_kind = ctx.catalog.merger();
    let Some(merger_inst) = ctx.net.instance(merger_node, merger_kind) else {
        return Vec::new();
    };
    if merger_inst.capacity + CAP_EPS < ctx.flow.rate {
        return Vec::new();
    }

    // Step (i): allocation combinations from the BST.
    let per_slot: Vec<Vec<NodeId>> = layer
        .vnfs()
        .iter()
        .map(|&kind| slot_candidates(ctx, bst, kind))
        .collect();
    let assignments = bounded_cartesian(&per_slot, ctx.cfg.max_assignment_combos);

    let mut subs = Vec::new();
    for assignment in assignments {
        // MBBE-ST extension: additionally route the layer's inter-layer
        // multicast as one Takahashi–Matsuyama Steiner tree, maximizing
        // the eq. (9) link sharing. These candidates *augment* the
        // independent-path ones below; cheapest-first sorting and `X_d`
        // pruning then pick whichever routing wins, so MBBE-ST is never
        // worse than MBBE on a layer.
        if ctx.cfg.use_steiner_multicast {
            let tree = dagsfc_net::routing::multicast_tree(
                ctx.net,
                fst.root(),
                &assignment,
                &|l: LinkId| ctx.link_ok(l),
            );
            if let Some(mt) = tree {
                let inner_opts: Vec<Vec<Path>> = assignment
                    .iter()
                    .map(|&node| inner_path_options(ctx, bst, node))
                    .collect();
                if inner_opts.iter().all(|o| !o.is_empty()) {
                    let vnf_prices: f64 = assignment
                        .iter()
                        .zip(layer.vnfs())
                        // lint:allow(expect) — invariant: candidate hosts kind
                        .map(|(&n, &k)| ctx.net.vnf_price(n, k).expect("candidate hosts kind"))
                        .sum::<f64>()
                        + merger_inst.price;
                    let dims: Vec<usize> = inner_opts.iter().map(Vec::len).collect();
                    for_each_bounded_combo(&dims, ctx.cfg.max_path_combos, |combo| {
                        let inner_paths: Vec<Path> = combo
                            .iter()
                            .enumerate()
                            .map(|(s, &i)| inner_opts[s][i].clone())
                            .collect();
                        let cost = layer_cost(ctx, vnf_prices, &mt.paths, &inner_paths);
                        let mut full_assignment = assignment.clone();
                        full_assignment.push(merger_node);
                        subs.push(LayerSub {
                            assignment: full_assignment,
                            inter_paths: mt.paths.clone(),
                            inner_paths,
                            cost,
                            end_node: merger_node,
                        });
                    });
                }
            }
        }
        // Steps (ii)+(iii) in struct-of-arrays form: each slot keeps its
        // inter/inner path alternatives in place plus a flat index-pair
        // list replicating the old cheapest-first (inter × inner)
        // enumeration. Candidate scoring then runs as one flat sweep per
        // combination over these arrays — contiguous price reads, no
        // per-candidate hash set, and no `Path` clones until a candidate
        // is actually emitted.
        let mut slot_paths: Vec<(Vec<Path>, Vec<Path>)> = Vec::with_capacity(assignment.len());
        let mut pair_idx: Vec<Vec<(usize, usize)>> = Vec::with_capacity(assignment.len());
        let mut feasible = true;
        for &node in &assignment {
            let inters = inter_path_options(ctx, fst, node);
            let inners = inner_path_options(ctx, bst, node);
            if inters.is_empty() || inners.is_empty() {
                feasible = false;
                break;
            }
            let cap = ctx.cfg.max_paths_per_pair * ctx.cfg.max_paths_per_pair;
            let mut pairs = Vec::with_capacity((inters.len() * inners.len()).min(cap));
            'fill: for i in 0..inters.len() {
                for n in 0..inners.len() {
                    if pairs.len() >= cap {
                        break 'fill;
                    }
                    pairs.push((i, n));
                }
            }
            slot_paths.push((inters, inners));
            pair_idx.push(pairs);
        }
        if !feasible {
            continue;
        }
        let vnf_prices: f64 = assignment
            .iter()
            .zip(layer.vnfs())
            // lint:allow(expect) — invariant: candidate hosts kind
            .map(|(&n, &k)| ctx.net.vnf_price(n, k).expect("candidate hosts kind"))
            .sum::<f64>()
            + merger_inst.price;

        let dims: Vec<usize> = pair_idx.iter().map(Vec::len).collect();
        SEEN_LINKS.with(|cell| {
            let seen = &mut *cell.borrow_mut();
            for_each_bounded_combo(&dims, ctx.cfg.max_path_combos, |combo| {
                // Flat scoring sweep, in the exact accumulation order of
                // [`layer_cost`]: deduped inter links slot-by-slot, then
                // per-occurrence inner links slot-by-slot.
                seen.begin(ctx.net.link_count());
                let mut link_price = 0.0;
                for (s, &c) in combo.iter().enumerate() {
                    let (pi, _) = pair_idx[s][c];
                    for &l in slot_paths[s].0[pi].links() {
                        if seen.first(l) {
                            link_price += ctx.link_price[l.index()];
                        }
                    }
                }
                for (s, &c) in combo.iter().enumerate() {
                    let (_, ni) = pair_idx[s][c];
                    for &l in slot_paths[s].1[ni].links() {
                        link_price += ctx.link_price[l.index()];
                    }
                }
                let cost = CostBreakdown {
                    vnf: vnf_prices * ctx.flow.size,
                    link: link_price * ctx.flow.size,
                };
                let inter_paths: Vec<Path> = combo
                    .iter()
                    .enumerate()
                    .map(|(s, &c)| slot_paths[s].0[pair_idx[s][c].0].clone())
                    .collect();
                let inner_paths: Vec<Path> = combo
                    .iter()
                    .enumerate()
                    .map(|(s, &c)| slot_paths[s].1[pair_idx[s][c].1].clone())
                    .collect();
                let mut full_assignment = assignment.clone();
                full_assignment.push(merger_node);
                subs.push(LayerSub {
                    assignment: full_assignment,
                    inter_paths,
                    inner_paths,
                    cost,
                    end_node: merger_node,
                });
            });
        });
    }
    // Step (iv): the static feasibility filters are applied inline above
    // (capacity-vs-rate on every candidate node and path link); order
    // candidates cheapest-first for downstream X_d pruning.
    subs.sort_by(|a, b| a.cost.total().total_cmp(&b.cost.total()));
    subs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Layer;
    use crate::solvers::bbe::backward::backward_search;
    use crate::solvers::bbe::forward::forward_search;
    use dagsfc_net::VnfTypeId;

    fn cfg() -> BbeConfig {
        BbeConfig::default()
    }

    /// Diamond: v0-v1-v2, v0-v3-v2; f0@v1, f1@v3, merger@v2; plus
    /// direct src links.
    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(4);
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 2.0, 10.0).unwrap();
        g.add_link(NodeId(0), NodeId(3), 1.5, 10.0).unwrap();
        g.add_link(NodeId(3), NodeId(2), 0.5, 10.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(3), VnfTypeId(1), 2.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(2), 0.5, 10.0).unwrap();
        g
    }

    #[test]
    fn bounded_cartesian_orders_and_caps() {
        let opts = vec![vec![1, 2], vec![10, 20]];
        let all = bounded_cartesian(&opts, 100);
        assert_eq!(
            all,
            vec![vec![1, 10], vec![1, 20], vec![2, 10], vec![2, 20]]
        );
        let capped = bounded_cartesian(&opts, 3);
        assert_eq!(capped.len(), 3);
        assert_eq!(capped[0], vec![1, 10]); // cheapest-first prefix
        assert!(bounded_cartesian(&[vec![1], vec![]], 10).is_empty());
        assert!(bounded_cartesian::<i32>(&[], 0).is_empty());
        // Empty dimension list with positive cap → single empty combo.
        assert_eq!(bounded_cartesian::<i32>(&[], 5), vec![Vec::<i32>::new()]);
    }

    #[test]
    fn combo_visitor_matches_bounded_cartesian() {
        // The flat-sweep scorer enumerates index combos through
        // `for_each_bounded_combo`; any divergence from the materializing
        // odometer would silently reorder candidates.
        for dims in [
            vec![2usize, 3],
            vec![1],
            vec![3, 1, 2],
            vec![2, 0, 2],
            vec![],
        ] {
            for cap in [0usize, 1, 3, 5, 100] {
                let options: Vec<Vec<usize>> = dims.iter().map(|&d| (0..d).collect()).collect();
                let expected = bounded_cartesian(&options, cap);
                let mut visited = Vec::new();
                for_each_bounded_combo(&dims, cap, |c| visited.push(c.to_vec()));
                assert_eq!(visited, expected, "dims {dims:?} cap {cap}");
            }
        }
    }

    #[test]
    fn layer_cost_dedups_inter_links_only() {
        // Reference the flat epoch-stamped dedup against a plain
        // hash-set model: inter links are charged once on first
        // occurrence, inner links per occurrence.
        let g = net();
        let c = VnfCatalog::new(2);
        let cfg = cfg();
        let oracle = PathOracle::new(&g);
        let ctx = EngineCtx::new(&g, c, Flow::unit(NodeId(0), NodeId(2)), &cfg, &oracle);
        let p01 = ctx.min_cost_path(NodeId(0), NodeId(1)).unwrap();
        let p02 = ctx.min_cost_path(NodeId(0), NodeId(2)).unwrap();
        let inter = vec![p01.clone(), p01.clone(), p02.clone()];
        let inner = vec![p01.clone(), p01];
        let cost = layer_cost(&ctx, 3.0, &inter, &inner);
        let mut seen = dagsfc_net::FxHashSet::default();
        let mut expect_link = 0.0;
        for p in &inter {
            for &l in p.links() {
                if seen.insert(l) {
                    expect_link += g.link(l).price;
                }
            }
        }
        for p in &inner {
            for &l in p.links() {
                expect_link += g.link(l).price;
            }
        }
        assert_eq!(cost.vnf.to_bits(), 3.0f64.to_bits());
        assert_eq!(cost.link.to_bits(), expect_link.to_bits());
        // A second scoring on the same thread must reset the dedup scope.
        let again = layer_cost(&ctx, 3.0, &inter, &inner);
        assert_eq!(again.link.to_bits(), cost.link.to_bits());
    }

    #[test]
    fn singleton_candidates_cover_hosting_nodes() {
        let g = net();
        let c = VnfCatalog::new(2);
        let cfg = cfg();
        let oracle = PathOracle::new(&g);
        let ctx = EngineCtx::new(&g, c, Flow::unit(NodeId(0), NodeId(2)), &cfg, &oracle);
        let layer = Layer::new(vec![VnfTypeId(0)]);
        let fst = forward_search(&g, NodeId(0), &layer, &c, None);
        let subs = singleton_layer_subs(&ctx, &layer, &fst);
        assert!(!subs.is_empty());
        for s in &subs {
            assert_eq!(s.assignment, vec![NodeId(1)]);
            assert_eq!(s.end_node, NodeId(1));
            assert!(s.inner_paths.is_empty());
            assert_eq!(s.inter_paths[0].source(), NodeId(0));
            assert_eq!(s.inter_paths[0].target(), NodeId(1));
            // cost = vnf 1.0 + link v0-v1 1.0
            assert!((s.cost.total() - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_layer_generation_builds_complete_subs() {
        let g = net();
        let c = VnfCatalog::new(2);
        let cfg = cfg();
        let oracle = PathOracle::new(&g);
        let ctx = EngineCtx::new(&g, c, Flow::unit(NodeId(0), NodeId(2)), &cfg, &oracle);
        let layer = Layer::new(vec![VnfTypeId(0), VnfTypeId(1)]);
        let fst = forward_search(&g, NodeId(0), &layer, &c, None);
        assert!(fst.covered());
        let bst = backward_search(&g, NodeId(2), &layer, &c, &fst);
        assert!(bst.covered());
        let subs = parallel_layer_subs(&ctx, &layer, &fst, &bst);
        assert!(!subs.is_empty());
        let best = &subs[0];
        assert_eq!(best.assignment.len(), 3); // f0, f1, merger
        assert_eq!(best.assignment[2], NodeId(2));
        assert_eq!(best.end_node, NodeId(2));
        assert_eq!(best.inter_paths.len(), 2);
        assert_eq!(best.inner_paths.len(), 2);
        // Inner paths end on the merger.
        for p in &best.inner_paths {
            assert_eq!(p.target(), NodeId(2));
        }
        // Costs sorted ascending.
        for w in subs.windows(2) {
            assert!(w[0].cost.total() <= w[1].cost.total() + 1e-12);
        }
        // Expected optimum: f0@v1 (1.0) + f1@v3 (2.0) + merger (0.5)
        // + inter links {v0-v1 1.0, v0-v3 1.5} + inner {v1-v2 2.0,
        //   v3-v2 0.5} = 8.5.
        assert!((best.cost.total() - 8.5).abs() < 1e-12);
    }

    #[test]
    fn min_cost_mode_produces_single_alternative_per_pair() {
        let g = net();
        let c = VnfCatalog::new(2);
        let mut cfg = cfg();
        cfg.use_min_cost_paths = true;
        let oracle = PathOracle::new(&g);
        let ctx = EngineCtx::new(&g, c, Flow::unit(NodeId(0), NodeId(2)), &cfg, &oracle);
        let layer = Layer::new(vec![VnfTypeId(0), VnfTypeId(1)]);
        let fst = forward_search(&g, NodeId(0), &layer, &c, None);
        let bst = backward_search(&g, NodeId(2), &layer, &c, &fst);
        let subs = parallel_layer_subs(&ctx, &layer, &fst, &bst);
        // One assignment combo × one path combo.
        assert_eq!(subs.len(), 1);
        assert!((subs[0].cost.total() - 8.5).abs() < 1e-12);
    }

    #[test]
    fn rate_infeasible_candidates_filtered() {
        let g = net();
        let c = VnfCatalog::new(2);
        let cfg = cfg();
        // Rate 20 exceeds every capacity (10).
        let flow = Flow {
            src: NodeId(0),
            dst: NodeId(2),
            rate: 20.0,
            size: 1.0,
            delay_budget_us: None,
        };
        let oracle = PathOracle::new(&g);
        let ctx = EngineCtx::new(&g, c, flow, &cfg, &oracle);
        let layer = Layer::new(vec![VnfTypeId(0)]);
        let fst = forward_search(&g, NodeId(0), &layer, &c, None);
        assert!(singleton_layer_subs(&ctx, &layer, &fst).is_empty());
    }

    #[test]
    fn merger_capacity_gate() {
        let mut g = net();
        // Second merger instance with tiny capacity on v1.
        g.deploy_vnf(NodeId(1), VnfTypeId(2), 0.1, 0.5).unwrap();
        let c = VnfCatalog::new(2);
        let cfg = cfg();
        let oracle = PathOracle::new(&g);
        let ctx = EngineCtx::new(&g, c, Flow::unit(NodeId(0), NodeId(2)), &cfg, &oracle);
        let layer = Layer::new(vec![VnfTypeId(0), VnfTypeId(1)]);
        let fst = forward_search(&g, NodeId(0), &layer, &c, None);
        let bst = backward_search(&g, NodeId(1), &layer, &c, &fst);
        // Merger on v1 has capacity 0.5 < rate 1.0 → no candidates.
        assert!(parallel_layer_subs(&ctx, &layer, &fst, &bst).is_empty());
    }
}
