//! Local-search post-optimization — an extension beyond the paper.
//!
//! Any solver's embedding can be polished by hill climbing over slot
//! relocations: for each slot (parallel VNF or merger), try every
//! alternative capacity-feasible host, re-route all meta-paths touching
//! the slot with minimum-cost paths, and keep the move if the *total*
//! objective improves. Repeats until a fixpoint (or the round limit).
//!
//! Used two ways:
//! * as a quality probe — how far does a heuristic land from its own
//!   local optimum? (MBBE is typically already at or near one; RANV
//!   improves dramatically);
//! * as a wrapper solver (`ImprovedSolver`) that runs any inner solver
//!   and then polishes its result.

use super::{layering, oracle_min_cost_path, RuleFilter, SolveCtx, SolveOutcome, Solver};
use crate::chain::DagSfc;
use crate::embedding::Embedding;
use crate::error::SolveError;
use crate::flow::Flow;
use crate::metapath::{meta_paths, Endpoint, MetaPathKind};
use dagsfc_net::{Network, NodeId, Path, VnfTypeId, CAP_EPS};
use std::time::Instant;

/// Configuration of the local search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalSearchConfig {
    /// Maximum improvement rounds (each round scans every slot).
    pub max_rounds: usize,
    /// Minimum cost improvement to accept a move (guards float noise).
    pub min_gain: f64,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig {
            max_rounds: 8,
            min_gain: 1e-9,
        }
    }
}

/// Outcome of an improvement pass.
#[derive(Debug, Clone)]
pub struct Improvement {
    /// The improved embedding (may equal the input).
    pub embedding: Embedding,
    /// Objective before.
    pub before: f64,
    /// Objective after.
    pub after: f64,
    /// Accepted relocation moves.
    pub moves: usize,
    /// Shortest-path-tree cache hits during rerouting.
    pub cache_hits: u64,
    /// Shortest-path-tree cache misses during rerouting.
    pub cache_misses: u64,
}

impl Improvement {
    /// Relative improvement in (0..1].
    pub fn gain(&self) -> f64 {
        if self.before == 0.0 {
            0.0
        } else {
            1.0 - self.after / self.before
        }
    }
}

/// Objective value of `emb`, or `+∞` when the embedding references an
/// undeployed instance — an infinite cost is never an improvement, so
/// the hill-climber discards such candidates without aborting.
fn total_or_inf(emb: &Embedding, net: &Network, sfc: &DagSfc, flow: &Flow) -> f64 {
    emb.try_cost(net, sfc, flow)
        .map(|c| c.total())
        .unwrap_or(f64::INFINITY)
}

/// Rebuilds every real-path of an assignment with min-cost routing
/// (multicast-unaware during routing; the returned embedding is scored
/// with the full multicast-aware accounting).
fn reroute(
    ctx: &SolveCtx<'_>,
    sfc: &DagSfc,
    flow: &Flow,
    assignments: &[Vec<NodeId>],
    hits: &mut u64,
    misses: &mut u64,
) -> Option<Embedding> {
    let rate = flow.rate;
    let node_of = |ep: Endpoint| match ep {
        Endpoint::Source => flow.src,
        Endpoint::Destination => flow.dst,
        Endpoint::Slot { layer, slot } => assignments[layer][slot],
    };
    let mut paths = Vec::new();
    for mp in meta_paths(sfc) {
        let (from, to) = (node_of(mp.from), node_of(mp.to));
        let path: Path = oracle_min_cost_path(&ctx.oracle, from, to, rate, hits, misses)?;
        debug_assert!(matches!(
            mp.kind,
            MetaPathKind::InterLayer | MetaPathKind::InnerLayer
        ));
        paths.push(path);
    }
    Embedding::new(sfc, assignments.to_vec(), paths).ok()
}

/// Hill-climbs slot relocations starting from `emb`. The result is
/// always validated; an invalid candidate move is simply not taken.
///
/// Convenience wrapper over [`improve_in`] that builds a fresh
/// [`SolveCtx`] (and thus a cold path-oracle) for this one call.
pub fn improve(
    net: &Network,
    sfc: &DagSfc,
    flow: &Flow,
    emb: &Embedding,
    config: LocalSearchConfig,
) -> Improvement {
    improve_in(&SolveCtx::new(net), sfc, flow, emb, config)
}

/// [`improve`] against a caller-provided context, sharing its
/// path-oracle with whatever solver produced `emb`.
pub fn improve_in(
    ctx: &SolveCtx<'_>,
    sfc: &DagSfc,
    flow: &Flow,
    emb: &Embedding,
    config: LocalSearchConfig,
) -> Improvement {
    let net = ctx.net;
    let catalog = *sfc.catalog();
    let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
    let before = total_or_inf(emb, net, sfc, flow);
    let mut assignments: Vec<Vec<NodeId>> = emb.assignments().to_vec();
    // Re-route the starting point too, so the baseline is consistent
    // with the move evaluator; keep the original if rerouting fails or
    // is worse.
    let mut current = match reroute(
        ctx,
        sfc,
        flow,
        &assignments,
        &mut cache_hits,
        &mut cache_misses,
    ) {
        Some(e)
            if crate::validate::validate(net, sfc, flow, &e).is_ok()
                && total_or_inf(&e, net, sfc, flow) <= before =>
        {
            e
        }
        _ => emb.clone(),
    };
    let mut current_cost = total_or_inf(&current, net, sfc, flow);
    let mut moves = 0usize;

    let rule_filter = RuleFilter::new(sfc);
    for _ in 0..config.max_rounds {
        let mut improved = false;
        for l in 0..sfc.depth() {
            let layer = layering::layer(sfc, l);
            for slot in 0..layer.slot_count() {
                let kind = layer.slot_kind(slot, &catalog);
                let original = assignments[l][slot];
                // Rule-constrained moves: with every *other* slot fixed,
                // `admits` against the rest of the assignment is exactly
                // the complete-assignment consistency condition for the
                // relocated slot — so the climber never walks a
                // rule-clean embedding into a violation.
                let mut others: Vec<(VnfTypeId, NodeId)> = Vec::new();
                if rule_filter.is_some() {
                    for ol in 0..sfc.depth() {
                        let olayer = layering::layer(sfc, ol);
                        for os in 0..olayer.slot_count() {
                            if (ol, os) != (l, slot) {
                                others.push((olayer.slot_kind(os, &catalog), assignments[ol][os]));
                            }
                        }
                    }
                }
                let mut best: Option<(f64, NodeId, Embedding)> = None;
                for &candidate in net.hosts_of(kind) {
                    if candidate == original {
                        continue;
                    }
                    if !net
                        .instance(candidate, kind)
                        .is_some_and(|i| i.capacity + CAP_EPS >= flow.rate)
                    {
                        continue;
                    }
                    if let Some(rf) = &rule_filter {
                        if !rf.admits(&others, kind, candidate) {
                            continue;
                        }
                    }
                    assignments[l][slot] = candidate;
                    if let Some(cand) = reroute(
                        ctx,
                        sfc,
                        flow,
                        &assignments,
                        &mut cache_hits,
                        &mut cache_misses,
                    ) {
                        // A candidate whose assignment references a
                        // non-deployed instance is infeasible, not a
                        // modelling bug — skip it instead of panicking.
                        let Ok(cost) = cand.try_cost(net, sfc, flow).map(|c| c.total()) else {
                            continue;
                        };
                        if cost + config.min_gain < current_cost
                            && best.as_ref().is_none_or(|(b, _, _)| cost < *b)
                            && crate::validate::validate(net, sfc, flow, &cand).is_ok()
                        {
                            best = Some((cost, candidate, cand));
                        }
                    }
                }
                match best {
                    Some((cost, node, cand)) => {
                        assignments[l][slot] = node;
                        current = cand;
                        current_cost = cost;
                        moves += 1;
                        improved = true;
                    }
                    None => assignments[l][slot] = original,
                }
            }
        }
        if !improved {
            break;
        }
    }

    Improvement {
        before,
        after: current_cost.min(before),
        embedding: if current_cost <= before {
            current
        } else {
            emb.clone()
        },
        moves,
        cache_hits,
        cache_misses,
    }
}

/// A wrapper solver: run `inner`, then polish with local search.
pub struct ImprovedSolver<S> {
    /// The wrapped solver.
    pub inner: S,
    /// Local-search configuration.
    pub config: LocalSearchConfig,
}

impl<S: Solver> ImprovedSolver<S> {
    /// Wraps `inner` with the default local-search configuration.
    pub fn new(inner: S) -> Self {
        ImprovedSolver {
            inner,
            config: LocalSearchConfig::default(),
        }
    }
}

impl<S: Solver> Solver for ImprovedSolver<S> {
    fn name(&self) -> &'static str {
        "LS"
    }

    fn solve_raw(
        &self,
        ctx: &SolveCtx<'_>,
        sfc: &DagSfc,
        flow: &Flow,
    ) -> Result<SolveOutcome, SolveError> {
        let start = Instant::now();
        let base = self.inner.solve_in(ctx, sfc, flow)?;
        let improved = improve_in(ctx, sfc, flow, &base.embedding, self.config);
        let cost = improved.embedding.try_cost(ctx.net, sfc, flow)?;
        let mut stats = base.stats.clone();
        stats.explored += improved.moves;
        stats.cache_hits += improved.cache_hits;
        stats.cache_misses += improved.cache_misses;
        stats.elapsed = start.elapsed();
        Ok(SolveOutcome {
            embedding: improved.embedding,
            cost,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solvers::{MbbeSolver, MinvSolver, RanvSolver};
    use crate::validate::validate;
    use crate::vnf::VnfCatalog;
    use dagsfc_net::{generator, NetGenConfig, VnfTypeId};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> Network {
        let cfg = NetGenConfig {
            nodes: 40,
            avg_degree: 5.0,
            vnf_kinds: 6,
            deploy_ratio: 0.5,
            vnf_price_fluctuation: 0.3,
            ..NetGenConfig::default()
        };
        generator::generate(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap()
    }

    fn sfc() -> DagSfc {
        DagSfc::new(
            vec![
                crate::chain::Layer::new(vec![VnfTypeId(0)]),
                crate::chain::Layer::new(vec![VnfTypeId(1), VnfTypeId(2)]),
            ],
            VnfCatalog::new(5),
        )
        .unwrap()
    }

    #[test]
    fn never_worsens_and_stays_valid() {
        for seed in [1u64, 2, 3, 4] {
            let g = net(seed);
            let flow = Flow::unit(NodeId(0), NodeId(39));
            for out in [
                MbbeSolver::new().solve(&g, &sfc(), &flow).unwrap(),
                MinvSolver::new().solve(&g, &sfc(), &flow).unwrap(),
                RanvSolver::new(seed).solve(&g, &sfc(), &flow).unwrap(),
            ] {
                let imp = improve(
                    &g,
                    &sfc(),
                    &flow,
                    &out.embedding,
                    LocalSearchConfig::default(),
                );
                assert!(
                    imp.after <= imp.before + 1e-9,
                    "seed {seed}: worsened {} → {}",
                    imp.before,
                    imp.after
                );
                validate(&g, &sfc(), &flow, &imp.embedding).unwrap();
                let reported = imp.embedding.try_cost(&g, &sfc(), &flow).unwrap().total();
                assert!((reported - imp.after).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn lifts_ranv_substantially() {
        // RANV places VNFs blindly; local search must claw back a big
        // chunk of the gap to MBBE, aggregated over seeds.
        let mut ranv_total = 0.0;
        let mut improved_total = 0.0;
        let mut mbbe_total = 0.0;
        for seed in 5u64..10 {
            let g = net(seed);
            let flow = Flow::unit(NodeId(1), NodeId(38));
            let ranv = RanvSolver::new(seed).solve(&g, &sfc(), &flow).unwrap();
            let imp = improve(
                &g,
                &sfc(),
                &flow,
                &ranv.embedding,
                LocalSearchConfig::default(),
            );
            let mbbe = MbbeSolver::new().solve(&g, &sfc(), &flow).unwrap();
            ranv_total += imp.before;
            improved_total += imp.after;
            mbbe_total += mbbe.cost.total();
        }
        assert!(
            improved_total < ranv_total * 0.9,
            "LS should cut RANV by >10%: {ranv_total} → {improved_total}"
        );
        // And land in MBBE's neighbourhood.
        assert!(
            improved_total <= mbbe_total * 1.3,
            "LS(RANV) {improved_total} far above MBBE {mbbe_total}"
        );
    }

    #[test]
    fn mbbe_is_near_its_local_optimum() {
        let mut gains = 0.0;
        for seed in 11u64..15 {
            let g = net(seed);
            let flow = Flow::unit(NodeId(2), NodeId(37));
            let mbbe = MbbeSolver::new().solve(&g, &sfc(), &flow).unwrap();
            let imp = improve(
                &g,
                &sfc(),
                &flow,
                &mbbe.embedding,
                LocalSearchConfig::default(),
            );
            gains += imp.gain();
        }
        assert!(
            gains / 4.0 < 0.08,
            "MBBE should be near-locally-optimal; mean LS gain {:.1}%",
            gains / 4.0 * 100.0
        );
    }

    #[test]
    fn wrapper_solver_works() {
        let g = net(20);
        let flow = Flow::unit(NodeId(0), NodeId(39));
        let wrapped = ImprovedSolver::new(RanvSolver::new(7));
        assert_eq!(wrapped.name(), "LS");
        let out = wrapped.solve(&g, &sfc(), &flow).unwrap();
        validate(&g, &sfc(), &flow, &out.embedding).unwrap();
        let plain = RanvSolver::new(7).solve(&g, &sfc(), &flow).unwrap();
        assert!(out.cost.total() <= plain.cost.total() + 1e-9);
    }

    #[test]
    fn zero_rounds_is_identity_cost() {
        let g = net(30);
        let flow = Flow::unit(NodeId(0), NodeId(39));
        let out = MinvSolver::new().solve(&g, &sfc(), &flow).unwrap();
        let imp = improve(
            &g,
            &sfc(),
            &flow,
            &out.embedding,
            LocalSearchConfig {
                max_rounds: 0,
                min_gain: 1e-9,
            },
        );
        // With zero rounds only the initial reroute may help; never hurt.
        assert!(imp.after <= imp.before + 1e-9);
        assert_eq!(imp.moves, 0);
    }
}
