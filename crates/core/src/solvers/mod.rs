//! Embedding solvers: BBE, MBBE, the RANV/MINV baselines, and an exact
//! branch-and-bound reference.
//!
//! All solvers implement [`Solver`]: given an immutable network, a
//! DAG-SFC, and a flow, they either return a complete [`Embedding`]
//! (with its objective cost and search statistics) or a typed failure.
//! Solvers never mutate the network; feasibility is checked against the
//! declared capacities and every returned embedding passes
//! [`crate::validate::validate`].

pub mod baseline;
pub mod bbe;
pub mod exact;
pub mod grasp;
pub mod instrument;
pub mod layering;
pub mod localsearch;

pub use baseline::{MinvSolver, RanvSolver};
pub use bbe::{BbeConfig, BbeSolver, DelayConstraint, MbbeSolver, MbbeStSolver};
pub use exact::ExactSolver;
pub use grasp::{GraspConfig, GraspSolver};
pub use instrument::{Counters, Instrument, NoInstrument};
pub use layering::verify_admissible;
pub use localsearch::{improve, ImprovedSolver, Improvement, LocalSearchConfig};

use crate::chain::DagSfc;
use crate::cost::CostBreakdown;
use crate::delay::DelayModel;
use crate::embedding::Embedding;
use crate::error::{deadline_infeasible_reason, rule_infeasible_reason, SolveError};
use crate::flow::{Flow, PlacementRules};
use dagsfc_net::{Network, CAP_EPS};
use dagsfc_net::{NodeId, Path, PathOracle};
use std::collections::BTreeMap;
use std::sync::OnceLock;
use std::time::Duration;

/// Search statistics reported by every solver.
///
/// `explored`/`kept`/`elapsed` are reported by every solver; the finer
/// counters are populated where they apply (FST/BST sizes only by the
/// BBE family, cache counters by every solver that routes through the
/// shared [`PathOracle`] or a private path memo) and stay zero
/// elsewhere.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolverStats {
    /// Candidate (sub-)solutions examined during the search.
    pub explored: usize,
    /// Candidates retained in the final decision set (e.g. sub-solution
    /// tree size for BBE/MBBE).
    pub kept: usize,
    /// Wall-clock time spent in `solve`.
    pub elapsed: Duration,
    /// Search-tree nodes expanded (BBE family: sub-solutions extended
    /// layer by layer; exact: branch-and-bound nodes).
    pub nodes_expanded: usize,
    /// Total forward-search-tree placements examined across layers.
    pub fst_nodes: usize,
    /// Total backward-search-tree placements examined across layers.
    pub bst_nodes: usize,
    /// Candidates produced before any truncation.
    pub candidates_generated: usize,
    /// Candidates discarded by `x_d`/level-width truncation; counted at
    /// every truncation point, so one candidate generated then dropped
    /// twice counts twice here.
    pub candidates_pruned: usize,
    /// Candidates discarded because their modeled end-to-end delay (or a
    /// per-layer lower bound on it) exceeded the delay budget. Rejections
    /// here are *deadline* failures, not capacity failures — serve-side
    /// statistics report the two separately.
    pub candidates_delay_rejected: usize,
    /// Candidates discarded during generation because they would break a
    /// placement rule (affinity / anti-affinity pair). Populated by the
    /// rule-aware searches (MINV/RANV, GRASP, EXACT); zero for solvers
    /// that rely on the central [`enforce_placement_rules`] gate alone.
    pub candidates_rule_rejected: usize,
    /// Shortest-path queries answered from a cache.
    pub cache_hits: u64,
    /// Shortest-path queries that ran a fresh search.
    pub cache_misses: u64,
    /// Wall-clock time per SFC layer (BBE family only; empty elsewhere).
    pub layer_wall: Vec<Duration>,
}

impl SolverStats {
    /// Fraction of path queries served from a cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Per-instance solve context shared by every run of every solver.
///
/// Owns the [`PathOracle`] so repeated solves on the same network reuse
/// each other's shortest-path trees. The context is `Sync`: the sim
/// runner builds one per instance and shares it across worker threads.
pub struct SolveCtx<'n> {
    /// The substrate network being embedded into.
    pub net: &'n Network,
    /// Memoized shortest-path trees over static link capacities.
    pub oracle: PathOracle<'n>,
    /// Whether [`Solver::solve_in`] re-validates every produced
    /// embedding against the model constraints and cross-checks the
    /// reported cost before returning it (the built-in audit gate).
    /// Defaults to on under `debug_assertions` — so every test run
    /// audits every solve — and off in release builds, where callers
    /// opt in via [`SolveCtx::with_audit`].
    pub audit: bool,
    /// Lazily-built canonical delay model for `net` (see
    /// [`DelayModel::for_network`]); shared by the delay gate and any
    /// solver that prunes on the flow's delay budget.
    canonical_delay: OnceLock<DelayModel>,
}

impl<'n> SolveCtx<'n> {
    /// A fresh context (and oracle) over `net`.
    pub fn new(net: &'n Network) -> Self {
        SolveCtx {
            net,
            oracle: PathOracle::new(net),
            audit: cfg!(debug_assertions),
            canonical_delay: OnceLock::new(),
        }
    }

    /// Same context with the audit gate forced on or off.
    pub fn with_audit(mut self, audit: bool) -> Self {
        self.audit = audit;
        self
    }

    /// The canonical substrate delay model (pure link-propagation), built
    /// on first use and shared by every solve through this context.
    pub fn delay_model(&self) -> &DelayModel {
        self.canonical_delay
            .get_or_init(|| DelayModel::for_network(self.net))
    }
}

/// Slack applied by the delay gate so float accumulation order cannot
/// flip a boundary decision.
pub const DELAY_GATE_EPS: f64 = 1e-9;

/// The central delay gate run by [`Solver::solve_in`] whenever the flow
/// carries a [`delay budget`](Flow::delay_budget_us): re-derives the
/// embedding's end-to-end delay under the canonical substrate model and
/// rejects it as *deadline infeasible* (a [`SolveError`] whose reason
/// carries [`crate::error::DEADLINE_INFEASIBLE_PREFIX`]) when it blows
/// the budget. Running after `solve_raw` makes every solver — including
/// the baselines and the exact reference, which do not search
/// delay-aware — respect the budget rather than silently returning a
/// late embedding.
pub fn enforce_delay_budget(
    solver: &'static str,
    ctx: &SolveCtx<'_>,
    sfc: &DagSfc,
    flow: &Flow,
    out: &SolveOutcome,
) -> Result<(), SolveError> {
    let Some(budget) = flow.delay_budget_us else {
        return Ok(());
    };
    let delay = ctx.delay_model().embedding_delay(sfc, &out.embedding, flow);
    if delay > budget + DELAY_GATE_EPS {
        return Err(SolveError::NoFeasibleEmbedding {
            solver,
            reason: deadline_infeasible_reason(delay, budget),
        });
    }
    Ok(())
}

/// The node set hosting each VNF kind in an embedding, keyed by kind —
/// the shared substrate of the placement-rule checks. Merger slots are
/// included (rules normally name regular kinds only, in which case the
/// merger entries are simply never consulted).
fn nodes_by_kind(sfc: &DagSfc, emb: &Embedding) -> BTreeMap<dagsfc_net::VnfTypeId, Vec<NodeId>> {
    let mut map: BTreeMap<dagsfc_net::VnfTypeId, Vec<NodeId>> = BTreeMap::new();
    for (l, slots) in emb.assignments().iter().enumerate() {
        let layer = layering::layer(sfc, l);
        for (s, &node) in slots.iter().enumerate() {
            let kind = layer.slot_kind(s, sfc.catalog());
            let nodes = map.entry(kind).or_default();
            if !nodes.contains(&node) {
                nodes.push(node);
            }
        }
    }
    map
}

/// Finds the first placement-rule violation in an embedding, if any:
/// an affinity pair split across nodes, or an anti-affinity pair
/// co-located. Returns a human-readable description of the offense.
pub fn first_rule_violation(
    rules: &PlacementRules,
    sfc: &DagSfc,
    emb: &Embedding,
) -> Option<String> {
    let by_kind = nodes_by_kind(sfc, emb);
    let empty: Vec<NodeId> = Vec::new();
    let nodes = |k: &dagsfc_net::VnfTypeId| by_kind.get(k).unwrap_or(&empty);
    for &(a, b) in &rules.affinity {
        let (na, nb) = (nodes(&a), nodes(&b));
        if na.is_empty() || nb.is_empty() {
            continue; // vacuous: one side of the pair is not embedded
        }
        let mut union: Vec<NodeId> = na.iter().chain(nb).copied().collect();
        union.sort_unstable();
        union.dedup();
        if union.len() > 1 {
            return Some(format!(
                "affinity ({a}, {b}) split across {} nodes",
                union.len()
            ));
        }
    }
    for &(a, b) in &rules.anti_affinity {
        let (na, nb) = (nodes(&a), nodes(&b));
        if let Some(shared) = na.iter().find(|n| nb.contains(n)) {
            return Some(format!("anti-affinity ({a}, {b}) co-located on {shared}"));
        }
    }
    None
}

/// Incremental placement-rule checker shared by the rule-aware searches
/// (MINV/RANV, GRASP, EXACT): given the `(kind, node)` slots placed so
/// far, decides whether one more placement can still satisfy every
/// rule. The check is prefix-monotone — every prefix of a rule-clean
/// complete assignment is admitted — so pruning on it preserves the
/// exact search's completeness.
pub(crate) struct RuleFilter<'a> {
    rules: &'a PlacementRules,
    /// Kinds occurring among the chain's slots, sorted: an affinity pair
    /// only constrains when both its kinds are actually embedded.
    present: Vec<dagsfc_net::VnfTypeId>,
}

impl<'a> RuleFilter<'a> {
    /// A filter for `sfc`'s rules, or `None` when the chain carries no
    /// rules (the common case, which must stay zero-cost).
    pub fn new(sfc: &'a DagSfc) -> Option<Self> {
        let rules = sfc.rules()?;
        let catalog = sfc.catalog();
        let mut present: Vec<dagsfc_net::VnfTypeId> = layering::layers(sfc)
            .iter()
            .flat_map(|l| l.required_kinds(catalog))
            .collect();
        present.sort_unstable();
        present.dedup();
        Some(RuleFilter { rules, present })
    }

    fn both_present(&self, a: dagsfc_net::VnfTypeId, b: dagsfc_net::VnfTypeId) -> bool {
        self.present.binary_search(&a).is_ok() && self.present.binary_search(&b).is_ok()
    }

    /// Whether placing `kind` on `node` is consistent with the
    /// already-placed slots.
    pub fn admits(
        &self,
        placed: &[(dagsfc_net::VnfTypeId, NodeId)],
        kind: dagsfc_net::VnfTypeId,
        node: NodeId,
    ) -> bool {
        for &(a, b) in &self.rules.affinity {
            if (kind == a || kind == b) && self.both_present(a, b) {
                // Every already-placed slot of either kind must share
                // the candidate node.
                if placed
                    .iter()
                    .any(|&(pk, pn)| (pk == a || pk == b) && pn != node)
                {
                    return false;
                }
            }
        }
        for &(a, b) in &self.rules.anti_affinity {
            if a == b {
                if kind == a {
                    // A reflexive anti-pair is unsatisfiable the moment
                    // its kind is embedded at all.
                    return false;
                }
                continue;
            }
            let partner = if kind == a {
                b
            } else if kind == b {
                a
            } else {
                continue;
            };
            if placed.iter().any(|&(pk, pn)| pk == partner && pn == node) {
                return false;
            }
        }
        true
    }
}

/// The central placement-rule gate run by [`Solver::solve_in`] whenever
/// the chain carries [`PlacementRules`]: re-derives the per-kind node
/// sets of the produced embedding and rejects it as *rule infeasible*
/// (a [`SolveError`] whose reason carries
/// [`crate::error::RULE_INFEASIBLE_PREFIX`]) on any affinity split or
/// anti-affinity co-location. Running after `solve_raw` makes every
/// solver — including the BBE family, which does not search rule-aware —
/// respect the rules rather than silently returning a violating
/// embedding.
pub fn enforce_placement_rules(
    solver: &'static str,
    sfc: &DagSfc,
    out: &SolveOutcome,
) -> Result<(), SolveError> {
    let Some(rules) = sfc.rules() else {
        return Ok(());
    };
    if let Some(offense) = first_rule_violation(rules, sfc, &out.embedding) {
        return Err(SolveError::NoFeasibleEmbedding {
            solver,
            reason: rule_infeasible_reason(&offense),
        });
    }
    Ok(())
}

/// Absolute tolerance of the audit gate's reported-vs-revalidated cost
/// comparison.
pub const AUDIT_COST_TOLERANCE: f64 = 1e-9;

/// The built-in audit gate run by [`Solver::solve_in`]: re-validates the
/// outcome's embedding against every model constraint
/// ([`crate::validate::validate`]) and cross-checks the cost the solver
/// reported against the re-derived objective. The full solver-independent
/// recomputation lives in the `dagsfc-audit` crate; this gate is the
/// in-crate guard every solve passes through when `ctx.audit` is set.
pub fn audit_outcome(
    solver: &'static str,
    net: &Network,
    sfc: &DagSfc,
    flow: &Flow,
    out: &SolveOutcome,
) -> Result<(), SolveError> {
    match crate::validate::validate(net, sfc, flow, &out.embedding) {
        Ok(cost) => {
            let drift = (cost.total() - out.cost.total()).abs();
            if drift > AUDIT_COST_TOLERANCE {
                return Err(SolveError::AuditFailed {
                    solver,
                    violations: vec![format!(
                        "reported cost {} deviates from revalidated cost {} by {drift:e}",
                        out.cost.total(),
                        cost.total()
                    )],
                });
            }
            Ok(())
        }
        Err(violations) => Err(SolveError::AuditFailed {
            solver,
            violations: violations.iter().map(|v| v.to_string()).collect(),
        }),
    }
}

/// Cheapest path over the static capacity filter (`capacity + CAP_EPS >=
/// rate`) via the shared oracle, bumping the caller's per-solve hit/miss
/// counters. Trivial `from == to` queries bypass the cache entirely.
pub(crate) fn oracle_min_cost_path(
    oracle: &PathOracle<'_>,
    from: NodeId,
    to: NodeId,
    rate: f64,
    hits: &mut u64,
    misses: &mut u64,
) -> Option<Path> {
    if from == to {
        return Some(Path::trivial(from));
    }
    let (tree, hit) = oracle.tree_tracked(from, rate);
    if hit {
        *hits += 1;
    } else {
        *misses += 1;
    }
    tree.path_to(to)
}

/// Static-capacity admission used by every oracle-backed solver.
#[allow(dead_code)]
pub(crate) fn link_admits(net: &Network, link: dagsfc_net::LinkId, rate: f64) -> bool {
    net.link(link).capacity + CAP_EPS >= rate
}

/// A successful embedding with its cost and statistics.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The embedding found.
    pub embedding: Embedding,
    /// Its objective value (eq. (1)).
    pub cost: CostBreakdown,
    /// Search statistics.
    pub stats: SolverStats,
}

/// Common interface of all embedding algorithms.
pub trait Solver {
    /// Short algorithm name as used in the paper ("BBE", "MBBE", "RANV",
    /// "MINV", …).
    fn name(&self) -> &'static str;

    /// The algorithm body: embeds `sfc` for `flow` without the audit
    /// gate. Implementations provide this; callers go through
    /// [`Solver::solve_in`] so the gate cannot be skipped by accident.
    fn solve_raw(
        &self,
        ctx: &SolveCtx<'_>,
        sfc: &DagSfc,
        flow: &Flow,
    ) -> Result<SolveOutcome, SolveError>;

    /// Embeds `sfc` for `flow` using a shared [`SolveCtx`], so repeated
    /// solves on one network reuse cached shortest-path trees. Before
    /// the search, the chain's carried precedence order is verified
    /// against its layered rendering ([`layering::verify_admissible`]);
    /// after it, the delay and placement-rule gates run. When
    /// `ctx.audit` is set (the default under `debug_assertions`), every
    /// produced embedding is re-validated against the model constraints
    /// and its reported cost cross-checked before being returned —
    /// failures surface as [`SolveError::AuditFailed`], never as a
    /// silently wrong embedding.
    fn solve_in(
        &self,
        ctx: &SolveCtx<'_>,
        sfc: &DagSfc,
        flow: &Flow,
    ) -> Result<SolveOutcome, SolveError> {
        layering::verify_admissible(sfc)?;
        let out = self.solve_raw(ctx, sfc, flow)?;
        enforce_delay_budget(self.name(), ctx, sfc, flow, &out)?;
        enforce_placement_rules(self.name(), sfc, &out)?;
        if ctx.audit {
            audit_outcome(self.name(), ctx.net, sfc, flow, &out)?;
        }
        Ok(out)
    }

    /// Embeds `sfc` for `flow` into `net` with a fresh private context.
    fn solve(&self, net: &Network, sfc: &DagSfc, flow: &Flow) -> Result<SolveOutcome, SolveError> {
        self.solve_in(&SolveCtx::new(net), sfc, flow)
    }
}

/// Builds a solver from its lowercase CLI/config name. RANV and GRASP
/// take `seed`; deterministic solvers ignore it. Returns `None` for an
/// unknown name.
///
/// Known names: `bbe`, `mbbe`, `mbbe-st`, `minv`, `ranv`, `exact`,
/// `grasp`.
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn Solver>> {
    Some(match name {
        "bbe" => Box::new(BbeSolver::new()),
        "mbbe" => Box::new(MbbeSolver::new()),
        "mbbe-st" => Box::new(MbbeStSolver::new()),
        "minv" => Box::new(MinvSolver::new()),
        "ranv" => Box::new(RanvSolver::new(seed)),
        "exact" => Box::new(ExactSolver::new()),
        "grasp" => Box::new(grasp::GraspSolver::new(seed)),
        _ => return None,
    })
}

/// Fast infeasibility screen shared by all solvers: every required VNF
/// kind (mergers included) must be hosted somewhere, and the flow
/// endpoints must exist.
///
/// Public so serving-layer admission control can turn requests away
/// before they ever occupy a queue slot, with the exact same
/// feasibility judgement the solvers apply.
pub fn precheck(net: &Network, sfc: &DagSfc, flow: &Flow) -> Result<(), SolveError> {
    if flow.src.index() >= net.node_count() || flow.dst.index() >= net.node_count() {
        return Err(SolveError::Infeasible(
            "flow endpoints outside the network".into(),
        ));
    }
    for layer in layering::layers(sfc) {
        for kind in layer.required_kinds(sfc.catalog()) {
            if net.hosts_of(kind).is_empty() {
                return Err(SolveError::Infeasible(format!(
                    "no node hosts required kind {kind}"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Layer;
    use crate::vnf::VnfCatalog;
    use dagsfc_net::{NodeId, VnfTypeId};

    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(2);
        g.add_link(NodeId(0), NodeId(1), 1.0, 1.0).unwrap();
        g.deploy_vnf(NodeId(0), VnfTypeId(0), 1.0, 1.0).unwrap();
        g
    }

    #[test]
    fn precheck_accepts_feasible() {
        let g = net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
        assert!(precheck(&g, &sfc, &Flow::unit(NodeId(0), NodeId(1))).is_ok());
    }

    #[test]
    fn precheck_rejects_missing_kind() {
        let g = net();
        let c = VnfCatalog::new(2);
        let sfc = DagSfc::sequential(&[VnfTypeId(1)], c).unwrap();
        assert!(matches!(
            precheck(&g, &sfc, &Flow::unit(NodeId(0), NodeId(1))),
            Err(SolveError::Infeasible(_))
        ));
    }

    #[test]
    fn precheck_rejects_missing_merger() {
        let g = net(); // hosts f0 but no merger
        let c = VnfCatalog::new(1);
        let sfc = DagSfc::new(vec![Layer::new(vec![VnfTypeId(0), VnfTypeId(0)])], c).unwrap();
        assert!(precheck(&g, &sfc, &Flow::unit(NodeId(0), NodeId(1))).is_err());
    }

    #[test]
    fn registry_covers_every_solver() {
        for (name, display) in [
            ("bbe", "BBE"),
            ("mbbe", "MBBE"),
            ("mbbe-st", "MBBE-ST"),
            ("minv", "MINV"),
            ("ranv", "RANV"),
            ("exact", "EXACT"),
            ("grasp", "GRASP"),
        ] {
            let s = by_name(name, 7).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(s.name(), display);
        }
        assert!(by_name("quantum", 0).is_none());
    }

    #[test]
    fn precheck_rejects_bad_endpoints() {
        let g = net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
        assert!(precheck(&g, &sfc, &Flow::unit(NodeId(0), NodeId(9))).is_err());
    }
}
