//! Embedding solvers: BBE, MBBE, the RANV/MINV baselines, and an exact
//! branch-and-bound reference.
//!
//! All solvers implement [`Solver`]: given an immutable network, a
//! DAG-SFC, and a flow, they either return a complete [`Embedding`]
//! (with its objective cost and search statistics) or a typed failure.
//! Solvers never mutate the network; feasibility is checked against the
//! declared capacities and every returned embedding passes
//! [`crate::validate::validate`].

pub mod baseline;
pub mod bbe;
pub mod exact;
pub mod grasp;
pub mod localsearch;

pub use baseline::{MinvSolver, RanvSolver};
pub use bbe::{BbeConfig, BbeSolver, DelayConstraint, MbbeSolver, MbbeStSolver};
pub use exact::ExactSolver;
pub use grasp::{GraspConfig, GraspSolver};
pub use localsearch::{improve, ImprovedSolver, Improvement, LocalSearchConfig};

use crate::chain::DagSfc;
use crate::cost::CostBreakdown;
use crate::embedding::Embedding;
use crate::error::SolveError;
use crate::flow::Flow;
use dagsfc_net::Network;
use std::time::Duration;

/// Search statistics reported by every solver.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolverStats {
    /// Candidate (sub-)solutions examined during the search.
    pub explored: usize,
    /// Candidates retained in the final decision set (e.g. sub-solution
    /// tree size for BBE/MBBE).
    pub kept: usize,
    /// Wall-clock time spent in `solve`.
    pub elapsed: Duration,
}

/// A successful embedding with its cost and statistics.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The embedding found.
    pub embedding: Embedding,
    /// Its objective value (eq. (1)).
    pub cost: CostBreakdown,
    /// Search statistics.
    pub stats: SolverStats,
}

/// Common interface of all embedding algorithms.
pub trait Solver {
    /// Short algorithm name as used in the paper ("BBE", "MBBE", "RANV",
    /// "MINV", …).
    fn name(&self) -> &'static str;

    /// Embeds `sfc` for `flow` into `net`.
    fn solve(&self, net: &Network, sfc: &DagSfc, flow: &Flow)
        -> Result<SolveOutcome, SolveError>;
}

/// Builds a solver from its lowercase CLI/config name. RANV and GRASP
/// take `seed`; deterministic solvers ignore it. Returns `None` for an
/// unknown name.
///
/// Known names: `bbe`, `mbbe`, `mbbe-st`, `minv`, `ranv`, `exact`,
/// `grasp`.
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn Solver>> {
    Some(match name {
        "bbe" => Box::new(BbeSolver::new()),
        "mbbe" => Box::new(MbbeSolver::new()),
        "mbbe-st" => Box::new(MbbeStSolver::new()),
        "minv" => Box::new(MinvSolver::new()),
        "ranv" => Box::new(RanvSolver::new(seed)),
        "exact" => Box::new(ExactSolver::new()),
        "grasp" => Box::new(grasp::GraspSolver::new(seed)),
        _ => return None,
    })
}

/// Fast infeasibility screen shared by all solvers: every required VNF
/// kind (mergers included) must be hosted somewhere, and the flow
/// endpoints must exist.
pub(crate) fn precheck(net: &Network, sfc: &DagSfc, flow: &Flow) -> Result<(), SolveError> {
    if flow.src.index() >= net.node_count() || flow.dst.index() >= net.node_count() {
        return Err(SolveError::Infeasible(
            "flow endpoints outside the network".into(),
        ));
    }
    for layer in sfc.layers() {
        for kind in layer.required_kinds(sfc.catalog()) {
            if net.hosts_of(kind).is_empty() {
                return Err(SolveError::Infeasible(format!(
                    "no node hosts required kind {kind}"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Layer;
    use crate::vnf::VnfCatalog;
    use dagsfc_net::{NodeId, VnfTypeId};

    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(2);
        g.add_link(NodeId(0), NodeId(1), 1.0, 1.0).unwrap();
        g.deploy_vnf(NodeId(0), VnfTypeId(0), 1.0, 1.0).unwrap();
        g
    }

    #[test]
    fn precheck_accepts_feasible() {
        let g = net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
        assert!(precheck(&g, &sfc, &Flow::unit(NodeId(0), NodeId(1))).is_ok());
    }

    #[test]
    fn precheck_rejects_missing_kind() {
        let g = net();
        let c = VnfCatalog::new(2);
        let sfc = DagSfc::sequential(&[VnfTypeId(1)], c).unwrap();
        assert!(matches!(
            precheck(&g, &sfc, &Flow::unit(NodeId(0), NodeId(1))),
            Err(SolveError::Infeasible(_))
        ));
    }

    #[test]
    fn precheck_rejects_missing_merger() {
        let g = net(); // hosts f0 but no merger
        let c = VnfCatalog::new(1);
        let sfc = DagSfc::new(
            vec![Layer::new(vec![VnfTypeId(0), VnfTypeId(0)])],
            c,
        )
        .unwrap();
        assert!(precheck(&g, &sfc, &Flow::unit(NodeId(0), NodeId(1))).is_err());
    }

    #[test]
    fn registry_covers_every_solver() {
        for (name, display) in [
            ("bbe", "BBE"),
            ("mbbe", "MBBE"),
            ("mbbe-st", "MBBE-ST"),
            ("minv", "MINV"),
            ("ranv", "RANV"),
            ("exact", "EXACT"),
            ("grasp", "GRASP"),
        ] {
            let s = by_name(name, 7).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(s.name(), display);
        }
        assert!(by_name("quantum", 0).is_none());
    }

    #[test]
    fn precheck_rejects_bad_endpoints() {
        let g = net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(1)).unwrap();
        assert!(precheck(&g, &sfc, &Flow::unit(NodeId(0), NodeId(9))).is_err());
    }
}
