//! GRASP — Greedy Randomized Adaptive Search Procedure — an extension
//! metaheuristic built from the workspace's own pieces.
//!
//! Each start draws a *randomized-greedy* assignment (every slot picks
//! uniformly among the α-cheapest feasible hosts rather than strictly
//! the cheapest), routes it with min-cost paths, polishes it with the
//! [`super::localsearch`] hill climber, and the best of `starts`
//! restarts wins. GRASP brackets the design space between MINV (pure
//! greedy, α = 1 equivalent) and RANV (pure random, α = ∞), showing how
//! much of BBE/MBBE's advantage a generic metaheuristic can recover
//! without the paper's structured search.

use super::localsearch::{improve_in, LocalSearchConfig};
use super::{
    first_rule_violation, layering, oracle_min_cost_path, precheck, RuleFilter, SolveCtx,
    SolveOutcome, Solver, SolverStats,
};
use crate::chain::DagSfc;
use crate::embedding::Embedding;
use crate::error::{rule_infeasible_reason, SolveError};
use crate::flow::Flow;
use crate::metapath::{meta_paths, Endpoint};
use dagsfc_net::VnfTypeId;
use dagsfc_net::{NodeId, CAP_EPS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;
use std::time::Instant;

/// GRASP configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraspConfig {
    /// Number of randomized restarts.
    pub starts: usize,
    /// Restricted-candidate-list size: each slot draws uniformly from
    /// its `alpha` cheapest feasible hosts.
    pub alpha: usize,
    /// Local-search settings applied to every start.
    pub local_search: LocalSearchConfig,
}

impl Default for GraspConfig {
    fn default() -> Self {
        GraspConfig {
            starts: 8,
            alpha: 3,
            local_search: LocalSearchConfig::default(),
        }
    }
}

/// The GRASP solver.
#[derive(Debug)]
pub struct GraspSolver {
    /// Configuration.
    pub config: GraspConfig,
    rng: Mutex<StdRng>,
}

impl GraspSolver {
    /// GRASP with a deterministic seed and default configuration.
    pub fn new(seed: u64) -> Self {
        GraspSolver {
            config: GraspConfig::default(),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// GRASP with explicit restarts and candidate-list size.
    pub fn with_config(seed: u64, config: GraspConfig) -> Self {
        GraspSolver {
            config,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }
}

impl Solver for GraspSolver {
    fn name(&self) -> &'static str {
        "GRASP"
    }

    fn solve_raw(
        &self,
        ctx: &SolveCtx<'_>,
        sfc: &DagSfc,
        flow: &Flow,
    ) -> Result<SolveOutcome, SolveError> {
        let start = Instant::now();
        let net = ctx.net;
        precheck(net, sfc, flow)?;
        let catalog = sfc.catalog();
        let mut rng = self
            .rng
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);

        // Pre-sort each slot's feasible hosts by rental price.
        let mut slot_candidates: Vec<Vec<NodeId>> = Vec::new();
        let mut slot_kinds: Vec<VnfTypeId> = Vec::new();
        for layer in layering::layers(sfc) {
            for slot in 0..layer.slot_count() {
                let kind = layer.slot_kind(slot, catalog);
                slot_kinds.push(kind);
                let mut hosts: Vec<NodeId> = net
                    .hosts_of(kind)
                    .iter()
                    .copied()
                    .filter(|&v| {
                        net.instance(v, kind)
                            .is_some_and(|i| i.capacity + CAP_EPS >= flow.rate)
                    })
                    .collect();
                if hosts.is_empty() {
                    return Err(SolveError::NoFeasibleEmbedding {
                        solver: "GRASP",
                        reason: format!("no capacity-feasible host for {kind}"),
                    });
                }
                hosts.sort_by(|&a, &b| {
                    let pa = net.vnf_price(a, kind).unwrap_or(f64::INFINITY);
                    let pb = net.vnf_price(b, kind).unwrap_or(f64::INFINITY);
                    pa.total_cmp(&pb).then(a.cmp(&b))
                });
                slot_candidates.push(hosts);
            }
        }

        let rate = flow.rate;
        let rule_filter = RuleFilter::new(sfc);
        let mut rule_rejected = 0usize;
        let mut rule_dead_starts = 0usize;
        let starts = self.config.starts.max(1);
        let mut best: Option<(f64, Embedding)> = None;
        let mut explored = 0usize;
        let (mut cache_hits, mut cache_misses) = (0u64, 0u64);

        'starts: for _ in 0..starts {
            // Randomized-greedy assignment over the RCL. With rules, the
            // RCL is drawn from the admissible prefix only: each slot's
            // hosts are filtered against the placements made so far, so
            // a rule conflict kills the start instead of the solve.
            let mut assignments: Vec<Vec<NodeId>> = Vec::with_capacity(sfc.depth());
            let mut placed: Vec<(VnfTypeId, NodeId)> = Vec::new();
            let mut flat = slot_candidates.iter().zip(slot_kinds.iter());
            for layer in layering::layers(sfc) {
                let mut slots = Vec::with_capacity(layer.slot_count());
                for _ in 0..layer.slot_count() {
                    // lint:allow(expect) — invariant: pre-sorted per slot
                    let (hosts, &kind) = flat.next().expect("pre-sorted per slot");
                    let node = match &rule_filter {
                        Some(rf) => {
                            let admissible: Vec<NodeId> = hosts
                                .iter()
                                .copied()
                                .filter(|&n| rf.admits(&placed, kind, n))
                                .collect();
                            rule_rejected += hosts.len() - admissible.len();
                            if admissible.is_empty() {
                                rule_dead_starts += 1;
                                continue 'starts;
                            }
                            let rcl = self.config.alpha.max(1).min(admissible.len());
                            let node = admissible[rng.gen_range(0..rcl)];
                            placed.push((kind, node));
                            node
                        }
                        None => {
                            let rcl = self.config.alpha.max(1).min(hosts.len());
                            hosts[rng.gen_range(0..rcl)]
                        }
                    };
                    slots.push(node);
                }
                assignments.push(slots);
            }
            // Min-cost routing; a disconnected draw is just skipped.
            let node_of = |ep: Endpoint| match ep {
                Endpoint::Source => flow.src,
                Endpoint::Destination => flow.dst,
                Endpoint::Slot { layer, slot } => assignments[layer][slot],
            };
            let mut paths = Vec::new();
            let mut routable = true;
            for mp in meta_paths(sfc) {
                match oracle_min_cost_path(
                    &ctx.oracle,
                    node_of(mp.from),
                    node_of(mp.to),
                    rate,
                    &mut cache_hits,
                    &mut cache_misses,
                ) {
                    Some(p) => paths.push(p),
                    None => {
                        routable = false;
                        break;
                    }
                }
            }
            if !routable {
                continue;
            }
            let Ok(embedding) = Embedding::new(sfc, assignments, paths) else {
                continue;
            };
            let Ok(pre_cost) = crate::validate::validate(net, sfc, flow, &embedding) else {
                continue;
            };
            // Polish. The hill climber is rule-blind, so when rules are
            // present a polished embedding that re-violates them is
            // discarded in favor of the rule-clean construction.
            let polished = improve_in(ctx, sfc, flow, &embedding, self.config.local_search);
            explored += 1 + polished.moves;
            cache_hits += polished.cache_hits;
            cache_misses += polished.cache_misses;
            let polish_broke_rules = sfc
                .rules()
                .is_some_and(|r| first_rule_violation(r, sfc, &polished.embedding).is_some());
            let (cost, chosen) = if polish_broke_rules {
                (pre_cost.total(), embedding)
            } else {
                (polished.after, polished.embedding)
            };
            if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                best = Some((cost, chosen));
            }
        }

        let Some((_, embedding)) = best else {
            if rule_dead_starts == starts {
                return Err(SolveError::NoFeasibleEmbedding {
                    solver: "GRASP",
                    reason: rule_infeasible_reason(
                        "placement rules emptied the candidate list in every start",
                    ),
                });
            }
            return Err(SolveError::NoFeasibleEmbedding {
                solver: "GRASP",
                reason: "no randomized start produced a feasible embedding".into(),
            });
        };
        let cost = embedding.try_cost(net, sfc, flow)?;
        Ok(SolveOutcome {
            embedding,
            cost,
            stats: SolverStats {
                explored,
                kept: 1,
                elapsed: start.elapsed(),
                cache_hits,
                cache_misses,
                candidates_rule_rejected: rule_rejected,
                ..SolverStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Layer;
    use crate::solvers::{MbbeSolver, MinvSolver};
    use crate::validate::validate;
    use crate::vnf::VnfCatalog;
    use dagsfc_net::Network;
    use dagsfc_net::{generator, NetGenConfig, VnfTypeId};

    fn net(seed: u64) -> Network {
        let cfg = NetGenConfig {
            nodes: 40,
            avg_degree: 5.0,
            vnf_kinds: 6,
            deploy_ratio: 0.5,
            vnf_price_fluctuation: 0.3,
            ..NetGenConfig::default()
        };
        generator::generate(&cfg, &mut StdRng::seed_from_u64(seed)).unwrap()
    }

    fn sfc() -> DagSfc {
        DagSfc::new(
            vec![
                Layer::new(vec![VnfTypeId(0)]),
                Layer::new(vec![VnfTypeId(1), VnfTypeId(2)]),
            ],
            VnfCatalog::new(5),
        )
        .unwrap()
    }

    #[test]
    fn produces_valid_embeddings() {
        for seed in [1u64, 2, 3] {
            let g = net(seed);
            let flow = Flow::unit(NodeId(0), NodeId(39));
            let out = GraspSolver::new(seed).solve(&g, &sfc(), &flow).unwrap();
            let cost = validate(&g, &sfc(), &flow, &out.embedding).unwrap();
            assert!((cost.total() - out.cost.total()).abs() < 1e-9);
        }
    }

    #[test]
    fn beats_minv_on_average() {
        let mut grasp_total = 0.0;
        let mut minv_total = 0.0;
        for seed in 4u64..9 {
            let g = net(seed);
            let flow = Flow::unit(NodeId(1), NodeId(38));
            grasp_total += GraspSolver::new(seed)
                .solve(&g, &sfc(), &flow)
                .unwrap()
                .cost
                .total();
            minv_total += MinvSolver::new()
                .solve(&g, &sfc(), &flow)
                .unwrap()
                .cost
                .total();
        }
        assert!(
            grasp_total < minv_total,
            "GRASP {grasp_total} should beat MINV {minv_total}"
        );
    }

    #[test]
    fn competitive_with_mbbe() {
        // A generic metaheuristic with LS lands near the structured
        // search — within a modest factor, aggregated over seeds.
        let mut grasp_total = 0.0;
        let mut mbbe_total = 0.0;
        for seed in 10u64..14 {
            let g = net(seed);
            let flow = Flow::unit(NodeId(2), NodeId(37));
            grasp_total += GraspSolver::new(seed)
                .solve(&g, &sfc(), &flow)
                .unwrap()
                .cost
                .total();
            mbbe_total += MbbeSolver::new()
                .solve(&g, &sfc(), &flow)
                .unwrap()
                .cost
                .total();
        }
        assert!(
            grasp_total <= mbbe_total * 1.25,
            "GRASP {grasp_total} far above MBBE {mbbe_total}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let g = net(20);
        let flow = Flow::unit(NodeId(0), NodeId(39));
        let a = GraspSolver::new(5).solve(&g, &sfc(), &flow).unwrap();
        let b = GraspSolver::new(5).solve(&g, &sfc(), &flow).unwrap();
        assert_eq!(a.embedding, b.embedding);
    }

    #[test]
    fn more_starts_never_hurt() {
        let g = net(21);
        let flow = Flow::unit(NodeId(0), NodeId(39));
        let few = GraspSolver::with_config(
            7,
            GraspConfig {
                starts: 1,
                ..GraspConfig::default()
            },
        )
        .solve(&g, &sfc(), &flow)
        .unwrap();
        let many = GraspSolver::with_config(
            7,
            GraspConfig {
                starts: 12,
                ..GraspConfig::default()
            },
        )
        .solve(&g, &sfc(), &flow)
        .unwrap();
        // Same seed: the first start coincides, so the 12-start run can
        // only match or improve it.
        assert!(many.cost.total() <= few.cost.total() + 1e-9);
    }

    #[test]
    fn missing_kind_fails_cleanly() {
        let g = net(22);
        let wide = DagSfc::sequential(&[VnfTypeId(0)], VnfCatalog::new(30)).unwrap();
        let missing = DagSfc::sequential(&[VnfTypeId(20)], VnfCatalog::new(30)).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(39));
        assert!(GraspSolver::new(1).solve(&g, &wide, &flow).is_ok());
        assert!(GraspSolver::new(1).solve(&g, &missing, &flow).is_err());
    }
}
