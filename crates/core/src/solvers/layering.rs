//! The designated layered-access compatibility module.
//!
//! Solvers consume chains through this module instead of iterating
//! [`DagSfc::layers`] directly: the layered rendering is *one*
//! admissible linear extension of the chain's partial order, and
//! funnelling every candidate-generation walk through a single seam is
//! what lets the workspace swap or re-derive that rendering without
//! touching solver internals. The `raw-layer-access` lint rule denies
//! direct `.layers()` / `.layer(...)` calls in solver code outside this
//! file, so the seam cannot erode by accident.
//!
//! The module also hosts [`verify_admissible`]: the pre-solve check
//! that a chain's carried [`PrecedenceOrder`] is actually honored by
//! its layered rendering. Chains built by
//! [`DagSfc::from_partial_order`] satisfy it by construction; a
//! hand-built or wire-supplied chain can claim any order, and must be
//! rejected before a solver embeds it in the wrong sequence.

use crate::chain::{DagSfc, Layer};
use crate::error::{rule_infeasible_reason, SolveError};

/// The chain's layers, via the designated seam.
#[inline]
pub(crate) fn layers(sfc: &DagSfc) -> &[Layer] {
    sfc.layers()
}

/// One layer of the chain, via the designated seam.
#[inline]
pub(crate) fn layer(sfc: &DagSfc, l: usize) -> &Layer {
    sfc.layer(l)
}

/// The layer index of every flattened regular-slot position: position
/// `p` is the `p`-th non-merger VNF slot reading the layers in order.
/// This is the coordinate system [`crate::flow::PrecedenceOrder`] edges
/// are expressed in.
pub(crate) fn position_layers(sfc: &DagSfc) -> Vec<usize> {
    let mut out = Vec::with_capacity(sfc.size());
    for (l, layer) in layers(sfc).iter().enumerate() {
        out.extend(std::iter::repeat(l).take(layer.width()));
    }
    out
}

/// Verifies that the chain's layered rendering is an admissible linear
/// extension of the [`PrecedenceOrder`](crate::flow::PrecedenceOrder)
/// it carries: every edge `(i, j)` must cross strictly forward between
/// layers, and every position must exist. Chains without an order pass
/// trivially.
///
/// Run by [`Solver::solve_in`](super::Solver::solve_in) before the
/// search, so no solver can embed a wire-supplied layering that
/// contradicts its own declared partial order; failures classify as
/// rule-infeasible ([`crate::error::RULE_INFEASIBLE_PREFIX`]).
pub fn verify_admissible(sfc: &DagSfc) -> Result<(), SolveError> {
    let Some(order) = sfc.order() else {
        return Ok(());
    };
    let pos_layers = position_layers(sfc);
    for &(i, j) in &order.edges {
        let (i, j) = (i as usize, j as usize);
        if i >= pos_layers.len() || j >= pos_layers.len() {
            return Err(SolveError::Infeasible(rule_infeasible_reason(&format!(
                "precedence edge ({i}, {j}) names a position outside the chain's {} slots",
                pos_layers.len()
            ))));
        }
        if pos_layers[i] >= pos_layers[j] {
            return Err(SolveError::Infeasible(rule_infeasible_reason(&format!(
                "precedence edge ({i}, {j}) is not honored: layer {} !< layer {}",
                pos_layers[i], pos_layers[j]
            ))));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::PrecedenceOrder;
    use crate::vnf::VnfCatalog;
    use dagsfc_net::VnfTypeId;

    fn sfc() -> DagSfc {
        // Two layers: [f0] then [f1, f2] — positions 0 | 1, 2.
        DagSfc::new(
            vec![
                Layer::new(vec![VnfTypeId(0)]),
                Layer::new(vec![VnfTypeId(1), VnfTypeId(2)]),
            ],
            VnfCatalog::new(4),
        )
        .unwrap()
    }

    #[test]
    fn position_layers_flatten_regular_slots() {
        assert_eq!(position_layers(&sfc()), vec![0, 1, 1]);
    }

    #[test]
    fn no_order_is_trivially_admissible() {
        assert!(verify_admissible(&sfc()).is_ok());
    }

    #[test]
    fn honored_order_passes() {
        let s = sfc().with_order(PrecedenceOrder {
            edges: vec![(0, 1), (0, 2)],
        });
        assert!(verify_admissible(&s).is_ok());
    }

    #[test]
    fn same_layer_edge_is_rejected_as_rule_infeasible() {
        // Positions 1 and 2 share a layer, so an edge between them
        // contradicts the layering.
        let s = sfc().with_order(PrecedenceOrder {
            edges: vec![(1, 2)],
        });
        let e = verify_admissible(&s).unwrap_err();
        assert!(e.to_string().contains("not honored"), "{e}");
    }

    #[test]
    fn backward_edge_is_rejected() {
        let s = sfc().with_order(PrecedenceOrder {
            edges: vec![(2, 0)],
        });
        assert!(verify_admissible(&s).is_err());
    }

    #[test]
    fn out_of_range_position_is_rejected() {
        let s = sfc().with_order(PrecedenceOrder {
            edges: vec![(0, 9)],
        });
        let e = verify_admissible(&s).unwrap_err();
        assert!(e.to_string().contains("outside the chain"), "{e}");
    }
}
