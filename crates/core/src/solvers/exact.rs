//! Exact reference solver for small instances.
//!
//! The paper formulates DAG-SFC embedding as an integer program and
//! proves it NP-hard; it never solves the IP at evaluation scale. For
//! *testing* the heuristics we still want certified optima on small
//! instances, so this module implements branch-and-bound over
//!
//! * every feasible slot→node assignment (depth-first, pruned by the
//!   accumulated VNF cost), and
//! * every combination of the `k` cheapest loopless real-paths per
//!   meta-path (depth-first, pruned by the accumulated total cost),
//!
//! with the full multicast-aware link accounting of eqs. (8)–(10) and
//! both capacity constraint families enforced exactly.
//!
//! The optimum is exact *within the k-cheapest-path universe per
//! meta-path*; on the small dense test networks we use it with `k` large
//! enough to enumerate every loopless path, making it exact outright.
//! Runtime is exponential — guard rails reject oversized instances.

use super::{layering, precheck, RuleFilter, SolveCtx, SolveOutcome, Solver, SolverStats};
use crate::chain::DagSfc;
use crate::embedding::Embedding;
use crate::error::{rule_infeasible_reason, SolveError};
use crate::flow::Flow;
use crate::metapath::{meta_paths, Endpoint, MetaPath, MetaPathKind};
use dagsfc_net::routing::k_shortest_paths;
use dagsfc_net::{LinkId, Network, NodeId, Path, VnfTypeId, CAP_EPS};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// Configuration of the exact solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExactConfig {
    /// Real-path alternatives per meta-path (Yen's k).
    pub k_paths: usize,
    /// Hard cap on assignment combinations; larger instances are
    /// rejected instead of running forever.
    pub max_assignments: u64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            k_paths: 6,
            max_assignments: 200_000,
        }
    }
}

/// Branch-and-bound optimal embedder for small instances.
#[derive(Debug, Clone, Default)]
pub struct ExactSolver {
    /// Solver configuration.
    pub config: ExactConfig,
}

impl ExactSolver {
    /// Exact solver with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Exact solver with a custom path universe size.
    pub fn with_k(k_paths: usize) -> Self {
        ExactSolver {
            config: ExactConfig {
                k_paths,
                ..ExactConfig::default()
            },
        }
    }
}

impl Solver for ExactSolver {
    fn name(&self) -> &'static str {
        "EXACT"
    }

    fn solve_raw(
        &self,
        ctx: &SolveCtx<'_>,
        sfc: &DagSfc,
        flow: &Flow,
    ) -> Result<SolveOutcome, SolveError> {
        // The shared oracle serves single-source shortest-path trees; the
        // exact solver needs k-shortest *alternatives* per endpoint pair,
        // so it keeps its own private Yen memo and only reports its
        // hit/miss counts through the common stats channel.
        let net = ctx.net;
        let start = Instant::now();
        precheck(net, sfc, flow)?;
        let catalog = sfc.catalog();

        // Flatten slots and their candidate hosts.
        let mut slots: Vec<(usize, usize, VnfTypeId)> = Vec::new();
        for (l, layer) in layering::layers(sfc).iter().enumerate() {
            for s in 0..layer.slot_count() {
                slots.push((l, s, layer.slot_kind(s, catalog)));
            }
        }
        let candidates: Vec<Vec<NodeId>> = slots
            .iter()
            .map(|&(_, _, kind)| {
                net.hosts_of(kind)
                    .iter()
                    .copied()
                    .filter(|&n| {
                        net.instance(n, kind)
                            .is_some_and(|i| i.capacity + CAP_EPS >= flow.rate)
                    })
                    .collect()
            })
            .collect();
        let combos: u64 = candidates
            .iter()
            .map(|c| c.len() as u64)
            .try_fold(1u64, u64::checked_mul)
            .unwrap_or(u64::MAX);
        if combos > self.config.max_assignments {
            return Err(SolveError::Infeasible(format!(
                "instance too large for the exact solver ({combos} assignments)"
            )));
        }
        if candidates.iter().any(Vec::is_empty) {
            return Err(SolveError::NoFeasibleEmbedding {
                solver: "EXACT",
                reason: "a slot has no capacity-feasible host".into(),
            });
        }

        let mps = meta_paths(sfc);
        let rule_filter = RuleFilter::new(sfc);
        let mut search = Search {
            net,
            flow,
            cfg: &self.config,
            slots: &slots,
            candidates: &candidates,
            mps: &mps,
            rules: rule_filter.as_ref(),
            placed: Vec::with_capacity(slots.len()),
            rule_rejected: 0,
            best: None,
            explored: 0,
            path_cache: HashMap::new(),
            cache_hits: 0,
            cache_misses: 0,
        };
        let mut assignment: Vec<NodeId> = Vec::with_capacity(slots.len());
        let mut vnf_count: HashMap<(NodeId, VnfTypeId), u32> = HashMap::new();
        search.assign(0, 0.0, &mut assignment, &mut vnf_count);

        let explored = search.explored;
        let rule_rejected = search.rule_rejected;
        let (cache_hits, cache_misses) = (search.cache_hits, search.cache_misses);
        let Some((_, assignment, paths)) = search.best else {
            // The rule pruning is prefix-monotone, so this search is
            // complete under the rules. To report a *certified* cause,
            // re-run rule-blind: if that finds an embedding, the rules —
            // not capacity — made the instance infeasible.
            if rule_rejected > 0 {
                let mut unfiltered = Search {
                    net,
                    flow,
                    cfg: &self.config,
                    slots: &slots,
                    candidates: &candidates,
                    mps: &mps,
                    rules: None,
                    placed: Vec::new(),
                    rule_rejected: 0,
                    best: None,
                    explored: 0,
                    path_cache: HashMap::new(),
                    cache_hits: 0,
                    cache_misses: 0,
                };
                let mut a = Vec::with_capacity(slots.len());
                let mut vc = HashMap::new();
                unfiltered.assign(0, 0.0, &mut a, &mut vc);
                if unfiltered.best.is_some() {
                    return Err(SolveError::NoFeasibleEmbedding {
                        solver: "EXACT",
                        reason: rule_infeasible_reason(
                            "placement rules exclude every feasible assignment \
                             (an unconstrained embedding exists)",
                        ),
                    });
                }
            }
            return Err(SolveError::NoFeasibleEmbedding {
                solver: "EXACT",
                reason: "no assignment admits a capacity-feasible routing".into(),
            });
        };
        // Reshape the flat assignment back into layers.
        let mut shaped: Vec<Vec<NodeId>> = layering::layers(sfc)
            .iter()
            .map(|l| Vec::with_capacity(l.slot_count()))
            .collect();
        for (&(l, _, _), &n) in slots.iter().zip(&assignment) {
            shaped[l].push(n);
        }
        let embedding = Embedding::new(sfc, shaped, paths)?;
        let cost = embedding.try_cost(net, sfc, flow)?;
        Ok(SolveOutcome {
            embedding,
            cost,
            stats: SolverStats {
                explored,
                kept: 1,
                elapsed: start.elapsed(),
                cache_hits,
                cache_misses,
                candidates_rule_rejected: rule_rejected,
                ..SolverStats::default()
            },
        })
    }
}

/// Mutable search state of the branch and bound.
struct Search<'a> {
    net: &'a Network,
    flow: &'a Flow,
    cfg: &'a ExactConfig,
    slots: &'a [(usize, usize, VnfTypeId)],
    candidates: &'a [Vec<NodeId>],
    mps: &'a [MetaPath],
    /// Placement-rule filter, when the chain carries rules. Pruning on
    /// it in [`Search::assign`] keeps the search complete (the check is
    /// prefix-monotone), so the optimum stays certified under rules.
    rules: Option<&'a RuleFilter<'a>>,
    /// `(kind, node)` of each slot assigned so far, kept in lockstep
    /// with the DFS assignment for rule-consistency checks.
    placed: Vec<(VnfTypeId, NodeId)>,
    /// Candidates pruned by the rule filter.
    rule_rejected: usize,
    /// Best (total cost, flat assignment, paths) found so far.
    best: Option<(f64, Vec<NodeId>, Vec<Path>)>,
    explored: usize,
    /// Memoized k-cheapest paths per (from, to).
    path_cache: HashMap<(NodeId, NodeId), Vec<Path>>,
    /// Yen-memo lookups answered from `path_cache`.
    cache_hits: u64,
    /// Yen-memo lookups that had to run the k-shortest-path search.
    cache_misses: u64,
}

impl Search<'_> {
    fn best_cost(&self) -> f64 {
        self.best.as_ref().map(|b| b.0).unwrap_or(f64::INFINITY)
    }

    /// DFS over slot assignments with VNF-cost and capability pruning.
    fn assign(
        &mut self,
        slot: usize,
        vnf_cost: f64,
        assignment: &mut Vec<NodeId>,
        vnf_count: &mut HashMap<(NodeId, VnfTypeId), u32>,
    ) {
        if vnf_cost >= self.best_cost() {
            return; // link costs are non-negative
        }
        if slot == self.slots.len() {
            self.route(assignment.clone(), vnf_cost);
            return;
        }
        let (_, _, kind) = self.slots[slot];
        for i in 0..self.candidates[slot].len() {
            let node = self.candidates[slot][i];
            if let Some(rf) = self.rules {
                if !rf.admits(&self.placed, kind, node) {
                    self.rule_rejected += 1;
                    continue;
                }
            }
            let count = vnf_count.entry((node, kind)).or_insert(0);
            // lint:allow(expect) — invariant: candidate hosts kind
            let inst = self.net.instance(node, kind).expect("candidate hosts kind");
            // Constraint (2): cumulative instance load.
            if (*count + 1) as f64 * self.flow.rate > inst.capacity + CAP_EPS {
                continue;
            }
            *count += 1;
            assignment.push(node);
            self.placed.push((kind, node));
            let add = inst.price * self.flow.size;
            self.assign(slot + 1, vnf_cost + add, assignment, vnf_count);
            self.placed.pop();
            assignment.pop();
            // lint:allow(expect) — invariant: just inserted
            *vnf_count.get_mut(&(node, kind)).expect("just inserted") -= 1;
        }
    }

    fn endpoint(&self, assignment: &[NodeId], ep: Endpoint) -> NodeId {
        match ep {
            Endpoint::Source => self.flow.src,
            Endpoint::Destination => self.flow.dst,
            Endpoint::Slot { layer, slot } => {
                let flat = self
                    .slots
                    .iter()
                    .position(|&(l, s, _)| l == layer && s == slot)
                    // lint:allow(expect) — invariant: slot exists
                    .expect("slot exists");
                assignment[flat]
            }
        }
    }

    /// DFS over path choices for a fixed assignment, with exact
    /// multicast-aware cost and bandwidth accounting.
    fn route(&mut self, assignment: Vec<NodeId>, vnf_cost: f64) {
        self.explored += 1;
        // Path universes per meta-path.
        let mut universes: Vec<Vec<Path>> = Vec::with_capacity(self.mps.len());
        for mp in self.mps {
            let from = self.endpoint(&assignment, mp.from);
            let to = self.endpoint(&assignment, mp.to);
            let rate = self.flow.rate;
            let net = self.net;
            let k = self.cfg.k_paths;
            let paths = match self.path_cache.get(&(from, to)) {
                Some(cached) => {
                    self.cache_hits += 1;
                    cached.clone()
                }
                None => {
                    self.cache_misses += 1;
                    let fresh = k_shortest_paths(net, from, to, k, &|l: LinkId| {
                        net.link(l).capacity + CAP_EPS >= rate
                    });
                    self.path_cache.insert((from, to), fresh.clone());
                    fresh
                }
            };
            if paths.is_empty() {
                return; // unroutable assignment
            }
            universes.push(paths);
        }

        // DFS with group-dedup cost and per-link load accounting.
        struct Frame {
            chosen: Vec<Path>,
        }
        let mut frame = Frame { chosen: Vec::new() };
        let mut link_load: HashMap<LinkId, f64> = HashMap::new();
        // group → link → multiplicity within that inter-layer group
        let mut group_used: HashMap<(usize, LinkId), u32> = HashMap::new();
        self.route_dfs(
            0,
            vnf_cost,
            &assignment,
            &universes,
            &mut frame.chosen,
            &mut link_load,
            &mut group_used,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn route_dfs(
        &mut self,
        idx: usize,
        cost: f64,
        assignment: &[NodeId],
        universes: &[Vec<Path>],
        chosen: &mut Vec<Path>,
        link_load: &mut HashMap<LinkId, f64>,
        group_used: &mut HashMap<(usize, LinkId), u32>,
    ) {
        if cost >= self.best_cost() {
            return;
        }
        if idx == self.mps.len() {
            self.best = Some((cost, assignment.to_vec(), chosen.clone()));
            return;
        }
        let mp = self.mps[idx];
        for p in &universes[idx] {
            // Tentatively account this path.
            let mut added_cost = 0.0;
            let mut touched: Vec<LinkId> = Vec::new();
            let mut feasible = true;
            for &l in p.links() {
                let newly_charged = match mp.kind {
                    MetaPathKind::InterLayer => {
                        let m = group_used.entry((mp.group, l)).or_insert(0);
                        *m += 1;
                        touched.push(l);
                        *m == 1
                    }
                    MetaPathKind::InnerLayer => {
                        touched.push(l);
                        true
                    }
                };
                if newly_charged {
                    added_cost += self.net.link(l).price * self.flow.size;
                    let load = link_load.entry(l).or_insert(0.0);
                    *load += self.flow.rate;
                    if *load > self.net.link(l).capacity + CAP_EPS {
                        feasible = false;
                    }
                }
            }
            if feasible {
                chosen.push(p.clone());
                self.route_dfs(
                    idx + 1,
                    cost + added_cost,
                    assignment,
                    universes,
                    chosen,
                    link_load,
                    group_used,
                );
                chosen.pop();
            }
            // Undo the tentative accounting.
            for &l in touched.iter().rev() {
                match mp.kind {
                    MetaPathKind::InterLayer => {
                        // lint:allow(expect) — invariant: accounted
                        let m = group_used.get_mut(&(mp.group, l)).expect("accounted");
                        *m -= 1;
                        if *m == 0 {
                            // lint:allow(expect) — invariant: loaded
                            *link_load.get_mut(&l).expect("loaded") -= self.flow.rate;
                        }
                    }
                    MetaPathKind::InnerLayer => {
                        // lint:allow(expect) — invariant: loaded
                        *link_load.get_mut(&l).expect("loaded") -= self.flow.rate;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::Layer;
    use crate::solvers::bbe::BbeSolver;
    use crate::validate::validate;
    use crate::vnf::VnfCatalog;

    /// Small diamond network with asymmetric prices.
    fn net() -> Network {
        let mut g = Network::new();
        g.add_nodes(4);
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(3), 1.0, 10.0).unwrap();
        g.add_link(NodeId(0), NodeId(2), 2.0, 10.0).unwrap();
        g.add_link(NodeId(2), NodeId(3), 2.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 3.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(0), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(1), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(1), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(3), VnfTypeId(2), 0.5, 10.0).unwrap(); // merger
        g
    }

    fn catalog() -> VnfCatalog {
        VnfCatalog::new(2)
    }

    #[test]
    fn finds_global_optimum_balancing_vnf_and_link_cost() {
        // f0 is cheap on v2 (1.0) but v2's links are pricey; the optimum
        // must weigh both terms, exactly the paper's motivation.
        let g = net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], catalog()).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(3));
        let out = ExactSolver::with_k(8).solve(&g, &sfc, &flow).unwrap();
        validate(&g, &sfc, &flow, &out.embedding).unwrap();
        // Via v2: vnf 1 + links 2+2 = 5. Via v1: vnf 3 + links 1+1 = 5.
        // Both optimal at 5.0.
        assert!((out.cost.total() - 5.0).abs() < 1e-9, "{}", out.cost);
    }

    #[test]
    fn optimal_parallel_embedding() {
        let g = net();
        let sfc = DagSfc::new(
            vec![Layer::new(vec![VnfTypeId(0), VnfTypeId(1)])],
            catalog(),
        )
        .unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(3));
        let out = ExactSolver::with_k(8).solve(&g, &sfc, &flow).unwrap();
        validate(&g, &sfc, &flow, &out.embedding).unwrap();
        // Optimal: f0@v2? vnf(f0@v2)=1, f1@v1=1, merger@v3=0.5.
        // inter: v0→v2 (2), v0→v1 (1); inner: v2→v3 (2), v1→v3 (1);
        // final: trivial. total = 2.5 + 3 + 3 = 8.5.
        // Alternative f0@v1 (3): vnf 4.5, inter v0→v1 (1, shared),
        // inner v1→v3 ×2 = 2 → 1+2+4.5 = 7.5! Cheaper.
        assert!((out.cost.total() - 7.5).abs() < 1e-9, "{}", out.cost);
        // Exact exploits colocation: both parallel VNFs on v1.
        assert_eq!(out.embedding.node_of(0, 0), NodeId(1));
        assert_eq!(out.embedding.node_of(0, 1), NodeId(1));
    }

    #[test]
    fn exact_never_worse_than_bbe() {
        let g = net();
        let flow = Flow::unit(NodeId(0), NodeId(3));
        for sfc in [
            DagSfc::sequential(&[VnfTypeId(0), VnfTypeId(1)], catalog()).unwrap(),
            DagSfc::new(
                vec![Layer::new(vec![VnfTypeId(0), VnfTypeId(1)])],
                catalog(),
            )
            .unwrap(),
        ] {
            let exact = ExactSolver::with_k(8).solve(&g, &sfc, &flow).unwrap();
            let bbe = BbeSolver::new().solve(&g, &sfc, &flow).unwrap();
            assert!(
                exact.cost.total() <= bbe.cost.total() + 1e-9,
                "exact {} > bbe {}",
                exact.cost,
                bbe.cost
            );
        }
    }

    #[test]
    fn rejects_oversized_instances() {
        let g = net();
        let sfc = DagSfc::sequential(&[VnfTypeId(0)], catalog()).unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(3));
        let solver = ExactSolver {
            config: ExactConfig {
                k_paths: 2,
                max_assignments: 1,
            },
        };
        assert!(matches!(
            solver.solve(&g, &sfc, &flow),
            Err(SolveError::Infeasible(_))
        ));
    }

    #[test]
    fn respects_link_capacity_exactly() {
        // Two inner-layer paths forced over one link of capacity 1.5
        // must be rejected (loads add); an alternative assignment wins.
        let mut g = Network::new();
        g.add_nodes(3);
        g.add_link(NodeId(0), NodeId(1), 1.0, 10.0).unwrap();
        g.add_link(NodeId(1), NodeId(2), 1.0, 1.5).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(0), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(1), VnfTypeId(1), 1.0, 10.0).unwrap();
        g.deploy_vnf(NodeId(2), VnfTypeId(2), 1.0, 10.0).unwrap(); // merger only on v2
        let sfc = DagSfc::new(
            vec![Layer::new(vec![VnfTypeId(0), VnfTypeId(1)])],
            catalog(),
        )
        .unwrap();
        let flow = Flow::unit(NodeId(0), NodeId(2));
        // Both inner paths v1→v2 need 2.0 > 1.5 → infeasible everywhere.
        assert!(matches!(
            ExactSolver::with_k(4).solve(&g, &sfc, &flow),
            Err(SolveError::NoFeasibleEmbedding { .. })
        ));
    }

    #[test]
    fn solver_name() {
        assert_eq!(ExactSolver::new().name(), "EXACT");
    }
}
