//! Zero-cost-when-disabled solver instrumentation.
//!
//! The BBE search core is generic over an [`Instrument`] sink: with
//! [`NoInstrument`] every recording call is an empty inlined body and
//! `ENABLED` is `false`, so timing code behind `if I::ENABLED` compiles
//! out entirely; with [`Counters`] the same calls accumulate into a
//! [`SolverStats`].

use super::SolverStats;
use std::time::Duration;

/// Sink for fine-grained search counters.
///
/// Every method has a no-op default so implementations record only what
/// they care about. `ENABLED` gates work that is expensive even to
/// *measure* (per-layer `Instant::now()` pairs): search code wraps such
/// probes in `if I::ENABLED { .. }`, which the optimizer removes when
/// the constant is `false`.
pub trait Instrument {
    /// Whether this sink records anything at all.
    const ENABLED: bool;

    /// `n` search-tree nodes were expanded.
    #[inline]
    fn nodes_expanded(&mut self, n: usize) {
        let _ = n;
    }

    /// `n` forward-search-tree placements were examined.
    #[inline]
    fn fst_nodes(&mut self, n: usize) {
        let _ = n;
    }

    /// `n` backward-search-tree placements were examined.
    #[inline]
    fn bst_nodes(&mut self, n: usize) {
        let _ = n;
    }

    /// `n` candidates were produced (before truncation).
    #[inline]
    fn candidates_generated(&mut self, n: usize) {
        let _ = n;
    }

    /// `n` candidates were discarded by a truncation point.
    #[inline]
    fn candidates_pruned(&mut self, n: usize) {
        let _ = n;
    }

    /// `n` candidates were rejected for blowing the delay budget
    /// (early tree pruning or the finals SLA filter) — the deadline
    /// half of the deadline-vs-capacity rejection split.
    #[inline]
    fn candidates_delay_rejected(&mut self, n: usize) {
        let _ = n;
    }

    /// One SFC layer finished after `wall` of work.
    #[inline]
    fn layer_wall(&mut self, wall: Duration) {
        let _ = wall;
    }

    /// Path-cache traffic: `hits` served from cache, `misses` computed.
    #[inline]
    fn cache(&mut self, hits: u64, misses: u64) {
        let _ = (hits, misses);
    }
}

/// The disabled sink: all methods no-ops, `ENABLED = false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoInstrument;

impl Instrument for NoInstrument {
    const ENABLED: bool = false;
}

/// The recording sink: accumulates every event into [`SolverStats`].
#[derive(Debug, Clone, Default)]
pub struct Counters {
    /// The accumulated statistics.
    pub stats: SolverStats,
}

impl Instrument for Counters {
    const ENABLED: bool = true;

    #[inline]
    fn nodes_expanded(&mut self, n: usize) {
        self.stats.nodes_expanded += n;
    }

    #[inline]
    fn fst_nodes(&mut self, n: usize) {
        self.stats.fst_nodes += n;
    }

    #[inline]
    fn bst_nodes(&mut self, n: usize) {
        self.stats.bst_nodes += n;
    }

    #[inline]
    fn candidates_generated(&mut self, n: usize) {
        self.stats.candidates_generated += n;
    }

    #[inline]
    fn candidates_pruned(&mut self, n: usize) {
        self.stats.candidates_pruned += n;
    }

    #[inline]
    fn candidates_delay_rejected(&mut self, n: usize) {
        self.stats.candidates_delay_rejected += n;
    }

    #[inline]
    fn layer_wall(&mut self, wall: Duration) {
        self.stats.layer_wall.push(wall);
    }

    #[inline]
    fn cache(&mut self, hits: u64, misses: u64) {
        self.stats.cache_hits += hits;
        self.stats.cache_misses += misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::default();
        c.nodes_expanded(2);
        c.nodes_expanded(3);
        c.fst_nodes(4);
        c.bst_nodes(5);
        c.candidates_generated(10);
        c.candidates_pruned(6);
        c.candidates_delay_rejected(2);
        c.layer_wall(Duration::from_micros(7));
        c.cache(8, 9);
        assert_eq!(c.stats.nodes_expanded, 5);
        assert_eq!(c.stats.fst_nodes, 4);
        assert_eq!(c.stats.bst_nodes, 5);
        assert_eq!(c.stats.candidates_generated, 10);
        assert_eq!(c.stats.candidates_pruned, 6);
        assert_eq!(c.stats.candidates_delay_rejected, 2);
        assert_eq!(c.stats.layer_wall, vec![Duration::from_micros(7)]);
        assert_eq!((c.stats.cache_hits, c.stats.cache_misses), (8, 9));
        assert!(c.stats.cache_hit_rate() > 0.0);
    }

    #[test]
    fn no_instrument_is_disabled() {
        const {
            assert!(!NoInstrument::ENABLED);
            assert!(Counters::ENABLED);
        }
        let mut n = NoInstrument;
        n.nodes_expanded(100); // compiles to nothing; must not panic
        n.cache(1, 1);
    }
}
